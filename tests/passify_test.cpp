//===- passify_test.cpp - Passified pVC mode (ablation) ---------------------===//

#include "cfg/Lower.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "smt/Z3Solver.h"
#include "workload/Chain.h"
#include "workload/RandomProg.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

struct Fixture {
  AstContext Ctx;
  CfgProgram Cfg;

  explicit Fixture(const char *Src) {
    DiagEngine Diags;
    auto P = parseAndCheck(Src, Ctx, Diags);
    EXPECT_TRUE(P) << Diags.str();
    if (P)
      Cfg = lowerToCfg(Ctx, *P);
  }
};

const char *StraightLine = R"(
  var g: int;
  procedure main() {
    g := 1;
    g := g + 2;
    g := g * 3;
  }
)";

} // namespace

TEST(Passify, StraightLineMintsFarFewerConstants) {
  Fixture F(StraightLine);
  TermArena PaperArena, PassArena;
  VcContext Paper(F.Ctx, F.Cfg, PaperArena, {}, PvcMode::Paper);
  VcContext Pass(F.Ctx, F.Cfg, PassArena, {}, PvcMode::Passified);
  Paper.genPvc(0);
  Pass.genPvc(0);
  // Paper mode: 2 consts per (label, var) plus BS and Out.
  // Passified: only the entry incarnation, BS, and Out.
  EXPECT_GT(PaperArena.numConsts(), 2 * PassArena.numConsts());
}

TEST(Passify, SameModelsOnStraightLine) {
  for (PvcMode Mode : {PvcMode::Paper, PvcMode::Passified}) {
    Fixture F(StraightLine);
    TermArena Arena;
    auto S = createZ3Solver(Arena);
    VcContext Vc(F.Ctx, F.Cfg, Arena, [&](TermRef T) { S->assertTerm(T); },
                 Mode);
    NodeId Root = Vc.genPvc(0);
    S->assertTerm(Vc.node(Root).Control);
    // (1 + 2) * 3 == 9 is forced.
    S->assertTerm(
        Arena.mkNot(Arena.mkEq(Vc.node(Root).Out[0], Arena.intLit(9))));
    EXPECT_EQ(S->check(), SolveResult::Unsat)
        << (Mode == PvcMode::Paper ? "paper" : "passified");
  }
}

TEST(Passify, JoinsIntroduceIncarnations) {
  Fixture F(R"(
    var g: int;
    procedure main() {
      if (*) { g := 1; } else { g := 2; }
      g := g + 1;
    }
  )");
  TermArena Arena;
  auto S = createZ3Solver(Arena);
  VcContext Vc(F.Ctx, F.Cfg, Arena, [&](TermRef T) { S->assertTerm(T); },
               PvcMode::Passified);
  NodeId Root = Vc.genPvc(0);
  S->assertTerm(Vc.node(Root).Control);
  TermRef G = Vc.node(Root).Out[0];
  // g ends as 2 or 3...
  S->push();
  S->assertTerm(Arena.mkEq(G, Arena.intLit(2)));
  EXPECT_EQ(S->check(), SolveResult::Sat);
  S->pop();
  S->push();
  S->assertTerm(Arena.mkEq(G, Arena.intLit(3)));
  EXPECT_EQ(S->check(), SolveResult::Sat);
  S->pop();
  // ...and nothing else.
  S->assertTerm(Arena.mkNot(Arena.mkEq(G, Arena.intLit(2))));
  S->assertTerm(Arena.mkNot(Arena.mkEq(G, Arena.intLit(3))));
  EXPECT_EQ(S->check(), SolveResult::Unsat);
}

TEST(Passify, ChainVerdictsAndSizes) {
  for (bool Buggy : {false, true}) {
    AstContext Ctx;
    Program P = makeChainProgram(Ctx, 7, Buggy);
    VerifierOptions Opts;
    Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
    Opts.Engine.Pvc = PvcMode::Passified;
    Opts.Engine.TimeoutSeconds = 60;
    auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Result.Outcome, Buggy ? Verdict::Bug : Verdict::Safe);
    EXPECT_EQ(R.Result.NumInlined, 9u); // DAG size unchanged by pVC mode
  }
}

TEST(Passify, TraceStillReconstructs) {
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(R"(
    var g: int;
    procedure inner() { g := 5; assert g == 6; }
    procedure main() { call inner(); }
  )",
                         Ctx, Diags);
  ASSERT_TRUE(P) << Diags.str();
  VerifierOptions Opts;
  Opts.Engine.Pvc = PvcMode::Passified;
  Opts.Engine.TimeoutSeconds = 30;
  auto R = verifyProgram(Ctx, *P, Ctx.sym("main"), Opts);
  ASSERT_EQ(R.Result.Outcome, Verdict::Bug);
  EXPECT_NE(R.TraceText.find("inner"), std::string::npos);
}

class PassifyAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PassifyAgreement, ModesAgreeOnRandomPrograms) {
  RandomProgParams Params;
  Params.Seed = GetParam() + 4000;
  Params.NumProcs = 5;
  Params.MaxStmts = 4;
  Params.AllowLoops = GetParam() % 2 == 0;
  Params.AllowArrays = GetParam() % 3 == 0;

  std::optional<Verdict> Reference;
  for (PvcMode Mode : {PvcMode::Paper, PvcMode::Passified}) {
    AstContext Ctx;
    Program P = makeRandomProgram(Ctx, Params);
    VerifierOptions Opts;
    Opts.Bound = 3;
    Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
    Opts.Engine.Pvc = Mode;
    Opts.Engine.TimeoutSeconds = 60;
    auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
    ASSERT_TRUE(R.Result.Outcome == Verdict::Bug ||
                R.Result.Outcome == Verdict::Safe);
    if (!Reference)
      Reference = R.Result.Outcome;
    EXPECT_EQ(R.Result.Outcome, *Reference) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassifyAgreement,
                         ::testing::Range<uint64_t>(1, 21));
