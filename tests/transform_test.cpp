//===- transform_test.cpp - Unit tests for src/transform --------------------===//

#include "ast/AstPrinter.h"
#include "ast/Eval.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

std::optional<Program> parseOk(const char *Src, AstContext &Ctx) {
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

bool hasLoops(const std::vector<const Stmt *> &Block) {
  for (const Stmt *S : Block) {
    switch (S->kind()) {
    case StmtKind::While:
      return true;
    case StmtKind::If:
      if (hasLoops(S->thenBlock()) || hasLoops(S->elseBlock()))
        return true;
      break;
    default:
      break;
    }
  }
  return false;
}

bool hasAsserts(const std::vector<const Stmt *> &Block) {
  for (const Stmt *S : Block) {
    switch (S->kind()) {
    case StmtKind::Assert:
      return true;
    case StmtKind::If:
      if (hasAsserts(S->thenBlock()) || hasAsserts(S->elseBlock()))
        return true;
      break;
    case StmtKind::While:
      if (hasAsserts(S->loopBody()))
        return true;
      break;
    default:
      break;
    }
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Loop unrolling
//===----------------------------------------------------------------------===//

TEST(UnrollLoops, RemovesAllLoops) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure main() {
      var i: int;
      while (i < 3) { i := i + 1; while (*) { i := i + 2; } }
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unrollLoops(Ctx, *P, 4);
  for (const Procedure &Proc : U.Procedures)
    EXPECT_FALSE(hasLoops(Proc.Body));
}

TEST(UnrollLoops, PreservesBehaviourWithinBound) {
  // A loop that runs exactly 3 iterations and then asserts.
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      var i: int;
      i := 0;
      g := 0;
      while (i < 3) { i := i + 1; g := g + 2; }
      assert g == 6;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unrollLoops(Ctx, *P, 3);
  EvalResult R = evaluate(Ctx, U, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(UnrollLoops, BlocksBeyondBoundForDeterministicGuards) {
  // With bound 2 the loop above cannot finish: the residual guard check
  // blocks every execution (under-approximation).
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      var i: int;
      i := 0;
      while (i < 3) { i := i + 1; }
      g := 1;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unrollLoops(Ctx, *P, 2);
  EvalResult R = evaluate(Ctx, U, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Blocked);
}

TEST(UnrollLoops, NondetGuardSimplyStops) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      g := 0;
      while (*) { g := g + 1; }
      assert g <= 2;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  // Bound 2: at most 2 iterations exist, so the assert can never fail and
  // no execution blocks.
  Program U = unrollLoops(Ctx, *P, 2);
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    EvalOptions Opts;
    Opts.Seed = Seed;
    EvalResult R = evaluate(Ctx, U, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
  }
}

TEST(UnrollLoops, NoLoopNoChange) {
  AstContext Ctx;
  auto P = parseOk("procedure main() { var x: int; x := 1; }", Ctx);
  ASSERT_TRUE(P);
  Program U = unrollLoops(Ctx, *P, 5);
  // Statement pointers are shared when nothing changes.
  EXPECT_EQ(U.Procedures[0].Body[0], P->Procedures[0].Body[0]);
}

//===----------------------------------------------------------------------===//
// Recursion unfolding
//===----------------------------------------------------------------------===//

TEST(UnfoldRecursion, AcyclicProgramsUntouched) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure f() { }
    procedure main() { call f(); }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unfoldRecursion(Ctx, *P, 3);
  EXPECT_EQ(U.Procedures.size(), 2u);
}

TEST(UnfoldRecursion, ClonesCyclicProcedures) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure rec(d: int) { if (d > 0) { call rec(d - 1); } }
    procedure helper() { }
    procedure main() { call rec(5); call helper(); }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unfoldRecursion(Ctx, *P, 3);
  // rec gets 3 copies; helper and main stay single.
  EXPECT_EQ(U.Procedures.size(), 5u);
  EXPECT_TRUE(U.findProc(Ctx.sym("rec")));
  EXPECT_TRUE(U.findProc(Ctx.sym("rec.d2")));
  EXPECT_TRUE(U.findProc(Ctx.sym("rec.d3")));
  EXPECT_FALSE(U.findProc(Ctx.sym("rec.d4")));
}

TEST(UnfoldRecursion, MutualRecursionHandled) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure even(n: int) returns (r: bool) {
      if (n == 0) { r := true; } else { call r := odd(n - 1); }
    }
    procedure odd(n: int) returns (r: bool) {
      if (n == 0) { r := false; } else { call r := even(n - 1); }
    }
    procedure main() {
      var b: bool;
      call b := even(4);
      assert b;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unfoldRecursion(Ctx, *P, 6);
  // even and odd each get 6 copies, main stays.
  EXPECT_EQ(U.Procedures.size(), 13u);
  // Semantics preserved within the bound: even(4) is true (needs depth 5).
  EvalResult R = evaluate(Ctx, U, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(UnfoldRecursion, BeyondBoundBlocks) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure down(d: int) { if (d > 0) { call down(d - 1); } }
    procedure main() { call down(10); }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  Program U = unfoldRecursion(Ctx, *P, 3);
  // Depth 11 needed but only 3 available: the run hits `assume false`.
  EvalResult R = evaluate(Ctx, U, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Blocked);
}

//===----------------------------------------------------------------------===//
// Assertion instrumentation
//===----------------------------------------------------------------------===//

TEST(Instrument, RemovesAssertsAddsErrBit) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure f() { assert g > 0; }
    procedure main() { g := 1; call f(); assert g == 1; }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  InstrumentedProgram I = instrumentAsserts(Ctx, *P, Ctx.sym("main"));
  EXPECT_EQ(I.NumAsserts, 2u);
  EXPECT_EQ(I.Prog.Globals.size(), 2u);
  EXPECT_EQ(Ctx.name(I.ErrVar), "$err");
  for (const Procedure &Proc : I.Prog.Procedures)
    EXPECT_FALSE(hasAsserts(Proc.Body));
}

TEST(Instrument, ErrNameAvoidsCollision) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var $err: bool;
    procedure main() { assert $err; }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  InstrumentedProgram I = instrumentAsserts(Ctx, *P, Ctx.sym("main"));
  EXPECT_EQ(Ctx.name(I.ErrVar), "$err_");
}

TEST(Instrument, ErrBitSemanticsViaEvaluator) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure f() { assert g == 0; g := 7; }
    procedure main() { g := 1; call f(); g := 5; }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  InstrumentedProgram I = instrumentAsserts(Ctx, *P, Ctx.sym("main"));
  // In the instrumented program no assert remains; the failing run sets
  // $err and bails out, leaving g at 1 (the write after the failing assert
  // and the caller's continuation are skipped).
  EvalResult R = evaluate(Ctx, I.Prog, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(Instrument, EntryClearsErrFirst) {
  AstContext Ctx;
  auto P = parseOk("procedure main() { assert true; }", Ctx);
  ASSERT_TRUE(P);
  InstrumentedProgram I = instrumentAsserts(Ctx, *P, Ctx.sym("main"));
  const Procedure *Main = I.Prog.findProc(Ctx.sym("main"));
  ASSERT_TRUE(Main);
  ASSERT_FALSE(Main->Body.empty());
  EXPECT_EQ(Main->Body[0]->kind(), StmtKind::Assign);
  EXPECT_EQ(Main->Body[0]->assignTarget(), I.ErrVar);
}

//===----------------------------------------------------------------------===//
// prepareBounded composition
//===----------------------------------------------------------------------===//

TEST(PrepareBounded, FullPipeline) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure rec(d: int) {
      if (d > 0) { call rec(d - 1); }
    }
    procedure main() {
      var i: int;
      i := 0;
      while (i < 2) { i := i + 1; }
      call rec(1);
      assert i == 2;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  BoundedInstance B = prepareBounded(Ctx, *P, Ctx.sym("main"), 3);
  EXPECT_EQ(B.NumAsserts, 1u);
  for (const Procedure &Proc : B.Prog.Procedures) {
    EXPECT_FALSE(hasLoops(Proc.Body));
    EXPECT_FALSE(hasAsserts(Proc.Body));
  }
  // rec cloned 3 times + main = 4 procedures.
  EXPECT_EQ(B.Prog.Procedures.size(), 4u);
}
