//===- analysis_test.cpp - Interval domain and invariant injection ----------===//

#include "analysis/Interval.h"
#include "analysis/InvariantGen.h"
#include "cfg/Lower.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"
#include "workload/Chain.h"

#include <gtest/gtest.h>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Interval domain algebra
//===----------------------------------------------------------------------===//

TEST(Interval, Constructors) {
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_TRUE(Interval::bottom().isBottom());
  EXPECT_TRUE(Interval::constant(5).isConstant());
  EXPECT_TRUE(Interval::bounded(3, 2).isBottom()); // inverted
  EXPECT_TRUE(Interval::atLeast(0).hasLo());
  EXPECT_FALSE(Interval::atLeast(0).hasHi());
}

TEST(Interval, JoinAndMeet) {
  Interval A = Interval::bounded(0, 5);
  Interval B = Interval::bounded(3, 9);
  Interval J = A.join(B);
  EXPECT_EQ(J, Interval::bounded(0, 9));
  Interval M = A.meet(B);
  EXPECT_EQ(M, Interval::bounded(3, 5));
  EXPECT_TRUE(A.meet(Interval::bounded(6, 7)).isBottom());
  EXPECT_EQ(A.join(Interval::bottom()), A);
  EXPECT_EQ(A.meet(Interval::top()), A);
  EXPECT_TRUE(A.join(Interval::atLeast(-3)).hasLo());
  EXPECT_FALSE(A.join(Interval::atLeast(-3)).hasHi());
}

TEST(Interval, Arithmetic) {
  Interval A = Interval::bounded(1, 3);
  Interval B = Interval::bounded(-2, 4);
  EXPECT_EQ(A.add(B), Interval::bounded(-1, 7));
  EXPECT_EQ(A.sub(B), Interval::bounded(-3, 5));
  EXPECT_EQ(A.neg(), Interval::bounded(-3, -1));
  EXPECT_EQ(A.mul(B), Interval::bounded(-6, 12));
  // Unbounded operands degrade gracefully.
  EXPECT_TRUE(A.add(Interval::atLeast(0)).hasLo());
  EXPECT_FALSE(A.add(Interval::atLeast(0)).hasHi());
  EXPECT_TRUE(A.mul(Interval::top()).isTop());
}

TEST(Interval, OverflowWidensInsteadOfWrapping) {
  Interval Huge = Interval::constant(INT64_MAX);
  Interval Sum = Huge.add(Interval::constant(1));
  EXPECT_FALSE(Sum.hasHi());
  Interval Prod = Huge.mul(Interval::constant(2));
  EXPECT_TRUE(Prod.isTop());
}

TEST(Interval, Comparisons) {
  Interval Low = Interval::bounded(0, 3);
  Interval High = Interval::bounded(5, 9);
  EXPECT_EQ(Low.ltCmp(High), Interval::constant(1));
  EXPECT_EQ(High.ltCmp(Low), Interval::constant(0));
  EXPECT_EQ(Low.ltCmp(Low), Interval::boolTop());
  EXPECT_EQ(Interval::constant(4).eqCmp(Interval::constant(4)),
            Interval::constant(1));
  EXPECT_EQ(Low.eqCmp(High), Interval::constant(0));
  // [0,3] <= 3 holds for every member: definitely true.
  EXPECT_EQ(Low.leCmp(Interval::constant(3)), Interval::constant(1));
  // [0,3] < 3 is undecided (0 < 3 but 3 < 3 fails).
  EXPECT_EQ(Low.ltCmp(Interval::constant(3)), Interval::boolTop());
}

TEST(AbsEnvTest, JoinDropsOneSidedKeys) {
  StringInterner I;
  Symbol X = I.intern("x"), Y = I.intern("y");
  AbsEnv A, B;
  A.set(X, Interval::constant(1));
  A.set(Y, Interval::constant(2));
  B.set(X, Interval::constant(3));
  A.joinWith(B);
  EXPECT_EQ(A.get(X), Interval::bounded(1, 3));
  EXPECT_TRUE(A.get(Y).isTop()); // missing in B => top
  AbsEnv Bot = AbsEnv::bottomEnv();
  Bot.joinWith(A);
  EXPECT_EQ(Bot.get(X), Interval::bounded(1, 3));
}

TEST(AbsEnvTest, BottomPropagation) {
  StringInterner I;
  AbsEnv E;
  E.set(I.intern("x"), Interval::bottom());
  EXPECT_TRUE(E.isBottom());
  EXPECT_TRUE(E.get(I.intern("y")).isBottom());
}

//===----------------------------------------------------------------------===//
// Whole-program analysis
//===----------------------------------------------------------------------===//

namespace {

struct Analyzed {
  AstContext Ctx;
  CfgProgram Cfg;
  std::unique_ptr<IntervalAnalysis> Analysis;

  explicit Analyzed(const char *Src) {
    DiagEngine Diags;
    auto P = parseAndCheck(Src, Ctx, Diags);
    EXPECT_TRUE(P) << Diags.str();
    Cfg = lowerToCfg(Ctx, *P);
    Analysis = std::make_unique<IntervalAnalysis>(
        Cfg, Cfg.findProc(Ctx.sym("main")));
  }
  ProcId proc(const char *Name) { return Cfg.findProc(Ctx.sym(Name)); }
};

} // namespace

TEST(IntervalAnalysis, ConstantPropagationThroughCalls) {
  Analyzed A(R"(
    var g: int;
    procedure callee() { }
    procedure main() {
      g := 7;
      call callee();
    }
  )");
  const AbsEnv &E = A.Analysis->entryEnv(A.proc("callee"));
  EXPECT_EQ(E.get(A.Ctx.sym("g")), Interval::constant(7));
}

TEST(IntervalAnalysis, JoinOverCallContexts) {
  Analyzed A(R"(
    var g: int;
    procedure callee() { }
    procedure main() {
      if (*) { g := 1; call callee(); }
      else   { g := 5; call callee(); }
    }
  )");
  const AbsEnv &E = A.Analysis->entryEnv(A.proc("callee"));
  EXPECT_EQ(E.get(A.Ctx.sym("g")), Interval::bounded(1, 5));
}

TEST(IntervalAnalysis, ParameterIntervals) {
  Analyzed A(R"(
    procedure callee(x: int) { }
    procedure main() {
      if (*) { call callee(2); } else { call callee(9); }
    }
  )");
  const AbsEnv &E = A.Analysis->entryEnv(A.proc("callee"));
  EXPECT_EQ(E.get(A.Ctx.sym("x")), Interval::bounded(2, 9));
}

TEST(IntervalAnalysis, AssumeRefinement) {
  Analyzed A(R"(
    var g: int;
    procedure callee() { }
    procedure main() {
      havoc g;
      assume g >= 0 && g < 10;
      call callee();
    }
  )");
  const AbsEnv &E = A.Analysis->entryEnv(A.proc("callee"));
  EXPECT_EQ(E.get(A.Ctx.sym("g")), Interval::bounded(0, 9));
}

TEST(IntervalAnalysis, ExitSummaries) {
  Analyzed A(R"(
    var g: int;
    procedure setter() returns (r: int) { g := 3; r := 4; }
    procedure main() {
      var x: int;
      call x := setter();
      call probe();
    }
    procedure probe() { }
  )");
  const AbsEnv &Summary = A.Analysis->exitSummary(A.proc("setter"));
  EXPECT_EQ(Summary.get(A.Ctx.sym("g")), Interval::constant(3));
  EXPECT_EQ(Summary.get(A.Ctx.sym("r")), Interval::constant(4));
  // And the caller's post-call state reflects the summary.
  const AbsEnv &E = A.Analysis->entryEnv(A.proc("probe"));
  EXPECT_EQ(E.get(A.Ctx.sym("g")), Interval::constant(3));
}

TEST(IntervalAnalysis, UnreachableProcIsBottom) {
  Analyzed A(R"(
    procedure orphan() { }
    procedure main() { }
  )");
  EXPECT_TRUE(A.Analysis->entryEnv(A.proc("orphan")).isBottom());
  EXPECT_FALSE(A.Analysis->entryEnv(A.proc("main")).isBottom());
}

TEST(IntervalAnalysis, ChainInvariantGEqualsI) {
  // The paper's chain program: the invariant at Pi's entry is g == i
  // (Section 1: "the invariant at the beginning of procedure Pi is that
  // g == i").
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 4);
  BoundedInstance B = prepareBounded(Ctx, P, Ctx.sym("main"), 1);
  CfgProgram Cfg = lowerToCfg(Ctx, B.Prog);
  IntervalAnalysis Analysis(Cfg, Cfg.findProc(Ctx.sym("main")));
  for (unsigned I = 0; I <= 4; ++I) {
    ProcId Pi = Cfg.findProc(Ctx.sym("P" + std::to_string(I)));
    ASSERT_NE(Pi, InvalidProc);
    EXPECT_EQ(Analysis.entryEnv(Pi).get(Ctx.sym("g")),
              Interval::constant(I))
        << "P" << I;
  }
  // The contextual exit summary of every Pi pins g to N and the error bit
  // to false — the summaries that let "+Inv" prune open calls.
  ProcId P0 = Cfg.findProc(Ctx.sym("P0"));
  EXPECT_EQ(Analysis.contextExitSummary(P0).get(Ctx.sym("g")),
            Interval::constant(4));
  EXPECT_EQ(Analysis.contextExitSummary(P0).get(B.ErrVar),
            Interval::constant(0));
}

TEST(IntervalAnalysis, SequentialCallFixpoint) {
  // Regression for the entry↔exit cycle: a later call's context flows
  // through an earlier call's summary. Both call sites see g == 0, and the
  // callee's pass-through exit keeps it.
  Analyzed A(R"(
    var g: int;
    procedure idle() { }
    procedure main() {
      g := 0;
      call idle();
      call idle();
      call probe();
    }
    procedure probe() { }
  )");
  EXPECT_EQ(A.Analysis->entryEnv(A.proc("idle")).get(A.Ctx.sym("g")),
            Interval::constant(0));
  EXPECT_EQ(A.Analysis->contextExitSummary(A.proc("idle"))
                .get(A.Ctx.sym("g")),
            Interval::constant(0));
  EXPECT_EQ(A.Analysis->entryEnv(A.proc("probe")).get(A.Ctx.sym("g")),
            Interval::constant(0));
}

TEST(IntervalAnalysis, WideningForcesConvergence) {
  // A counter bumped across repeated sequential calls: the upper bound
  // would climb forever; widening must drop it while keeping the stable
  // lower bound. (Soundness: [0, +inf] over-approximates every context.)
  Analyzed A(R"(
    var g: int;
    procedure bump() { g := g + 1; }
    procedure main() {
      g := 0;
      call bump();
      call bump();
      call bump();
      call bump();
      call bump();
      call bump();
      call probe();
    }
    procedure probe() { }
  )");
  Interval AtProbe = A.Analysis->entryEnv(A.proc("probe"))
                         .get(A.Ctx.sym("g"));
  EXPECT_FALSE(AtProbe.isBottom());
  EXPECT_TRUE(AtProbe.contains(6)); // the concrete value must be inside
  Interval AtBump = A.Analysis->entryEnv(A.proc("bump"))
                        .get(A.Ctx.sym("g"));
  for (int64_t V = 0; V <= 5; ++V)
    EXPECT_TRUE(AtBump.contains(V)) << V; // all six contexts covered
}

TEST(IntervalAnalysis, DiamondSummariesJoin) {
  Analyzed A(R"(
    var g: int;
    procedure setlow() { g := 1; }
    procedure sethigh() { g := 9; }
    procedure main() {
      if (*) { call setlow(); } else { call sethigh(); }
      call probe();
    }
    procedure probe() { }
  )");
  EXPECT_EQ(A.Analysis->entryEnv(A.proc("probe")).get(A.Ctx.sym("g")),
            Interval::bounded(1, 9));
}

//===----------------------------------------------------------------------===//
// Injection
//===----------------------------------------------------------------------===//

TEST(InjectInvariants, SplicesAssumeLabels) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 3);
  BoundedInstance B = prepareBounded(Ctx, P, Ctx.sym("main"), 1);
  CfgProgram Cfg = lowerToCfg(Ctx, B.Prog);
  ProcId Main = Cfg.findProc(Ctx.sym("main"));
  size_t LabelsBefore = Cfg.Labels.size();
  InvariantReport R = injectInvariants(Ctx, Cfg, Main);
  EXPECT_GT(R.ProcsAnnotated, 0u);
  EXPECT_GT(R.Conjuncts, 0u);
  EXPECT_GT(Cfg.Labels.size(), LabelsBefore);
  // Each annotated procedure's new entry is an assume.
  ProcId P1 = Cfg.findProc(Ctx.sym("P1"));
  EXPECT_EQ(Cfg.label(Cfg.proc(P1).Entry).Stmt.Kind, CfgStmtKind::Assume);
  // The program still lowers/checks as hierarchical.
  EXPECT_TRUE(Cfg.isHierarchical());
}

TEST(InjectInvariants, SoundnessVerdictUnchanged) {
  // Safe and buggy chain instances must keep their verdicts under +Inv.
  for (bool Buggy : {false, true}) {
    AstContext Ctx;
    Program P = makeChainProgram(Ctx, 5, Buggy);
    VerifierOptions Opts;
    Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
    Opts.Engine.TimeoutSeconds = 60;
    Opts.UseInvariants = false;
    auto Plain = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
    Opts.UseInvariants = true;
    auto WithInv = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_EQ(Plain.Result.Outcome, WithInv.Result.Outcome)
        << "buggy=" << Buggy;
    EXPECT_EQ(WithInv.Result.Outcome,
              Buggy ? Verdict::Bug : Verdict::Safe);
    EXPECT_GT(WithInv.InvariantConjuncts, 0u);
  }
}

TEST(InjectInvariants, InvariantsPruneSearch) {
  // On the safe chain, entry invariants make the over-approximate check
  // conclude immediately: strictly fewer procedures inlined.
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 8);
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.TimeoutSeconds = 60;
  auto Plain = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  Opts.UseInvariants = true;
  auto WithInv = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  ASSERT_EQ(Plain.Result.Outcome, Verdict::Safe);
  ASSERT_EQ(WithInv.Result.Outcome, Verdict::Safe);
  // The call-site summaries pin $err to false after main's one call, so
  // the over-approximate check concludes after inlining main alone.
  EXPECT_EQ(WithInv.Result.NumInlined, 1u);
  EXPECT_LT(WithInv.Result.NumInlined, Plain.Result.NumInlined);
}
