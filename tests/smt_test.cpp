//===- smt_test.cpp - Unit tests for src/smt --------------------------------===//

#include "ast/AstContext.h"
#include "smt/SmtLibPrinter.h"
#include "smt/Solver.h"
#include "smt/Term.h"
#include "smt/Translate.h"
#include "smt/Z3Solver.h"

#include <z3.h>

#include <gtest/gtest.h>

using namespace rmt;

//===----------------------------------------------------------------------===//
// TermArena
//===----------------------------------------------------------------------===//

TEST(TermArena, LiteralsAreConsed) {
  TermArena A;
  EXPECT_EQ(A.intLit(7), A.intLit(7));
  EXPECT_NE(A.intLit(7), A.intLit(8));
  EXPECT_EQ(A.boolLit(true), A.mkTrue());
}

TEST(TermArena, ApplicationsAreConsed) {
  AstContext Ctx;
  TermArena A;
  TermRef X = A.freshConst(Ctx.intType(), "x");
  TermRef S1 = A.mkAdd(X, A.intLit(1));
  TermRef S2 = A.mkAdd(X, A.intLit(1));
  EXPECT_EQ(S1, S2);
  EXPECT_NE(S1, A.mkAdd(X, A.intLit(2)));
}

TEST(TermArena, FreshConstsAreNotConsed) {
  AstContext Ctx;
  TermArena A;
  TermRef X = A.freshConst(Ctx.intType(), "x");
  TermRef Y = A.freshConst(Ctx.intType(), "x");
  EXPECT_NE(X, Y);
  EXPECT_NE(A.constName(X), A.constName(Y));
}

TEST(TermArena, BooleanSimplifications) {
  AstContext Ctx;
  TermArena A;
  TermRef P = A.freshConst(Ctx.boolType(), "p");
  EXPECT_EQ(A.mkAnd(A.mkTrue(), P), P);
  EXPECT_EQ(A.mkAnd(P, A.mkFalse()), A.mkFalse());
  EXPECT_EQ(A.mkOr(A.mkFalse(), P), P);
  EXPECT_EQ(A.mkOr(P, A.mkTrue()), A.mkTrue());
  EXPECT_EQ(A.mkNot(A.mkNot(P)), P);
  EXPECT_EQ(A.mkImplies(A.mkTrue(), P), P);
  EXPECT_EQ(A.mkImplies(A.mkFalse(), P), A.mkTrue());
  EXPECT_EQ(A.mkImplies(P, A.mkFalse()), A.mkNot(P));
  EXPECT_EQ(A.mkAnd(P, P), P);
}

TEST(TermArena, ConstantFolding) {
  TermArena A;
  EXPECT_TRUE(A.isTrue(A.mkEq(A.intLit(3), A.intLit(3))));
  EXPECT_TRUE(A.isFalse(A.mkEq(A.intLit(3), A.intLit(4))));
  EXPECT_TRUE(A.isTrue(A.mkLt(A.intLit(3), A.intLit(4))));
  EXPECT_TRUE(A.isFalse(A.mkLe(A.intLit(5), A.intLit(4))));
  EXPECT_EQ(A.mkNeg(A.intLit(3)), A.intLit(-3));
}

TEST(TermArena, AndManyOrMany) {
  AstContext Ctx;
  TermArena A;
  TermRef P = A.freshConst(Ctx.boolType(), "p");
  TermRef Q = A.freshConst(Ctx.boolType(), "q");
  EXPECT_TRUE(A.isTrue(A.mkAndMany({})));
  EXPECT_TRUE(A.isFalse(A.mkOrMany({})));
  EXPECT_EQ(A.mkAndMany({P}), P);
  TermRef Both = A.mkAndMany({P, Q});
  EXPECT_EQ(A.op(Both), TermOp::And);
}

TEST(TermArena, DagSizeCountsSharedOnce) {
  AstContext Ctx;
  TermArena A;
  TermRef X = A.freshConst(Ctx.intType(), "x");
  TermRef Sum = A.mkAdd(X, X); // shares X
  EXPECT_EQ(A.dagSize(Sum), 2u);
  TermRef Twice = A.mkMul(Sum, Sum);
  EXPECT_EQ(A.dagSize(Twice), 3u);
}

TEST(TermArena, SortsPropagateThroughArrays) {
  AstContext Ctx;
  TermArena A;
  const Type *ArrTy = Ctx.arrayType(Ctx.intType(), Ctx.intType());
  TermRef Arr = A.freshConst(ArrTy, "a");
  TermRef St = A.mkStore(Arr, A.intLit(0), A.intLit(5));
  EXPECT_EQ(A.sort(St), ArrTy);
  TermRef Sel = A.mkSelect(St, A.intLit(0));
  EXPECT_EQ(A.sort(Sel), Ctx.intType());
}

//===----------------------------------------------------------------------===//
// Expression translation
//===----------------------------------------------------------------------===//

TEST(Translate, CanonicalizesComparisons) {
  AstContext Ctx;
  TermArena A;
  const Expr *X = Ctx.tVar(Ctx.sym("x"), Ctx.intType());
  const Expr *Y = Ctx.tVar(Ctx.sym("y"), Ctx.intType());
  VarTermMap Map;
  TermRef TX = A.freshConst(Ctx.intType(), "x");
  TermRef TY = A.freshConst(Ctx.intType(), "y");
  Map[Ctx.sym("x")] = TX;
  Map[Ctx.sym("y")] = TY;

  TermRef Gt = translateExpr(A, Ctx.tBinary(BinOp::Gt, X, Y), Map);
  EXPECT_EQ(Gt, A.mkLt(TY, TX));
  TermRef Ge = translateExpr(A, Ctx.tBinary(BinOp::Ge, X, Y), Map);
  EXPECT_EQ(Ge, A.mkLe(TY, TX));
  TermRef Ne = translateExpr(A, Ctx.tBinary(BinOp::Ne, X, Y), Map);
  EXPECT_EQ(Ne, A.mkNot(A.mkEq(TX, TY)));
}

TEST(Translate, SubstitutionApplies) {
  AstContext Ctx;
  TermArena A;
  const Expr *X = Ctx.tVar(Ctx.sym("x"), Ctx.intType());
  const Expr *E = Ctx.tBinary(BinOp::Add, X, Ctx.tInt(1));
  VarTermMap Map;
  Map[Ctx.sym("x")] = A.intLit(41);
  TermRef T = translateExpr(A, E, Map);
  EXPECT_EQ(T, A.mkAdd(A.intLit(41), A.intLit(1)));
}

//===----------------------------------------------------------------------===//
// SMT-LIB printer
//===----------------------------------------------------------------------===//

TEST(SmtLib, TermRendering) {
  AstContext Ctx;
  TermArena A;
  TermRef X = A.freshConst(Ctx.intType(), "x");
  TermRef T = A.mkLe(A.mkAdd(X, A.intLit(-2)), A.intLit(3));
  std::string S = printTerm(A, T);
  EXPECT_EQ(S, "(<= (+ x!0 (- 2)) 3)");
}

TEST(SmtLib, ScriptDeclaresConstants) {
  AstContext Ctx;
  TermArena A;
  TermRef P = A.freshConst(Ctx.boolType(), "p");
  TermRef X = A.freshConst(Ctx.intType(), "x");
  const Type *ArrTy = Ctx.arrayType(Ctx.intType(), Ctx.boolType());
  TermRef Arr = A.freshConst(ArrTy, "m");
  std::string S = printScript(
      A, {A.mkImplies(P, A.mkEq(X, A.intLit(1))),
          A.mkEq(A.mkSelect(Arr, X), P)});
  EXPECT_NE(S.find("(declare-const p!0 Bool)"), std::string::npos);
  EXPECT_NE(S.find("(declare-const x!1 Int)"), std::string::npos);
  EXPECT_NE(S.find("(declare-const m!2 (Array Int Bool))"),
            std::string::npos);
  EXPECT_NE(S.find("(check-sat)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Z3 backend
//===----------------------------------------------------------------------===//

TEST(Z3, SatAndUnsat) {
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  TermRef X = A.freshConst(Ctx.intType(), "x");
  S->assertTerm(A.mkLt(A.intLit(0), X));
  EXPECT_EQ(S->check(), SolveResult::Sat);
  EXPECT_GT(S->modelInt(X), 0);
  S->assertTerm(A.mkLt(X, A.intLit(0)));
  EXPECT_EQ(S->check(), SolveResult::Unsat);
}

TEST(Z3, PushPopRestoresState) {
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  TermRef X = A.freshConst(Ctx.intType(), "x");
  S->assertTerm(A.mkEq(X, A.intLit(5)));
  S->push();
  S->assertTerm(A.mkEq(X, A.intLit(6)));
  EXPECT_EQ(S->check(), SolveResult::Unsat);
  S->pop();
  EXPECT_EQ(S->check(), SolveResult::Sat);
  EXPECT_EQ(S->modelInt(X), 5);
}

TEST(Z3, CheckUnderAssumptions) {
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  TermRef P = A.freshConst(Ctx.boolType(), "p");
  TermRef X = A.freshConst(Ctx.intType(), "x");
  S->assertTerm(A.mkImplies(P, A.mkEq(X, A.intLit(1))));
  S->assertTerm(A.mkEq(X, A.intLit(2)));
  // Permanent state stays satisfiable...
  EXPECT_EQ(S->check(), SolveResult::Sat);
  // ...but assuming P contradicts it, without polluting the state.
  EXPECT_EQ(S->check({P}, 0), SolveResult::Unsat);
  EXPECT_EQ(S->check({A.mkNot(P)}, 0), SolveResult::Sat);
  EXPECT_TRUE(!S->modelBool(P));
}

TEST(Z3, BoolModels) {
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  TermRef P = A.freshConst(Ctx.boolType(), "p");
  TermRef Q = A.freshConst(Ctx.boolType(), "q");
  S->assertTerm(P);
  S->assertTerm(A.mkNot(Q));
  ASSERT_EQ(S->check(), SolveResult::Sat);
  EXPECT_TRUE(S->modelBool(P));
  EXPECT_FALSE(S->modelBool(Q));
}

TEST(Z3, ArraysDecided) {
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  const Type *ArrTy = Ctx.arrayType(Ctx.intType(), Ctx.intType());
  TermRef Arr = A.freshConst(ArrTy, "a");
  TermRef I = A.freshConst(Ctx.intType(), "i");
  // select(store(a, i, 7), i) == 7 is valid: its negation is unsat.
  TermRef Sel = A.mkSelect(A.mkStore(Arr, I, A.intLit(7)), I);
  S->assertTerm(A.mkNot(A.mkEq(Sel, A.intLit(7))));
  EXPECT_EQ(S->check(), SolveResult::Unsat);
}

TEST(Z3, EuclideanDivModSemantics) {
  // Z3's div/mod must match the evaluator's Euclidean convention.
  TermArena A;
  auto S = createZ3Solver(A);
  S->assertTerm(A.mkEq(A.mkDiv(A.intLit(-7), A.intLit(2)), A.intLit(-4)));
  S->assertTerm(A.mkEq(A.mkMod(A.intLit(-7), A.intLit(2)), A.intLit(1)));
  S->assertTerm(A.mkEq(A.mkDiv(A.intLit(7), A.intLit(-2)), A.intLit(-3)));
  S->assertTerm(A.mkEq(A.mkMod(A.intLit(7), A.intLit(-2)), A.intLit(1)));
  EXPECT_EQ(S->check(), SolveResult::Sat);
}

TEST(Z3, DeepTermTranslationIsIterative) {
  // A deep left-leaning sum; recursive translation would overflow the
  // stack around 1e5 nodes.
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  TermRef X = A.freshConst(Ctx.intType(), "x");
  TermRef Sum = X;
  for (int I = 0; I < 200000; ++I)
    Sum = A.mkAdd(Sum, A.intLit(1));
  S->assertTerm(A.mkEq(Sum, A.intLit(200000)));
  ASSERT_EQ(S->check(), SolveResult::Sat);
  EXPECT_EQ(S->modelInt(X), 0);
}

TEST(Z3, TimeoutParameterDoesNotBreakEasyChecks) {
  // The timeout parameter is plumbed per check; a tiny-but-sufficient
  // budget must still answer easy queries correctly, and a subsequent
  // unlimited check must be unaffected. (Z3's timeout is best-effort inside
  // its nonlinear core, so engine-level deadlines — tested in engine_test —
  // are the wall-clock authority; here we only verify the plumbing.)
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  TermRef X = A.freshConst(Ctx.intType(), "x");
  S->assertTerm(A.mkEq(X, A.intLit(9)));
  EXPECT_EQ(S->check({}, 5.0), SolveResult::Sat);
  EXPECT_EQ(S->modelInt(X), 9);
  S->assertTerm(A.mkLt(X, A.intLit(0)));
  EXPECT_EQ(S->check({}, 0), SolveResult::Unsat);
}

TEST(SmtLib, ScriptsReparseUnderZ3WithSameVerdict) {
  // Cross-check the SMT-LIB printer against the direct Z3 translation:
  // every printed script must parse under Z3's own SMT-LIB reader and give
  // the same sat/unsat answer as asserting the terms natively.
  AstContext Ctx;
  const Type *ArrTy = Ctx.arrayType(Ctx.intType(), Ctx.intType());

  auto CrossCheck = [&](const std::vector<TermRef> &Assertions,
                        TermArena &A) {
    // Native result.
    auto Native = createZ3Solver(A);
    for (TermRef T : Assertions)
      Native->assertTerm(T);
    SolveResult Direct = Native->check();

    // Parse the printed script in a raw Z3 context.
    std::string Script = printScript(A, Assertions);
    Z3_config Config = Z3_mk_config();
    Z3_context Z = Z3_mk_context(Config);
    Z3_del_config(Config);
    Z3_ast_vector Parsed =
        Z3_parse_smtlib2_string(Z, Script.c_str(), 0, nullptr, nullptr, 0,
                                nullptr, nullptr);
    ASSERT_NE(Parsed, nullptr) << Script;
    Z3_ast_vector_inc_ref(Z, Parsed);
    Z3_solver S = Z3_mk_solver(Z);
    Z3_solver_inc_ref(Z, S);
    for (unsigned I = 0; I < Z3_ast_vector_size(Z, Parsed); ++I)
      Z3_solver_assert(Z, S, Z3_ast_vector_get(Z, Parsed, I));
    Z3_lbool R = Z3_solver_check(Z, S);
    SolveResult Reparsed = R == Z3_L_TRUE    ? SolveResult::Sat
                           : R == Z3_L_FALSE ? SolveResult::Unsat
                                             : SolveResult::Unknown;
    EXPECT_EQ(Direct, Reparsed) << Script;
    Z3_solver_dec_ref(Z, S);
    Z3_ast_vector_dec_ref(Z, Parsed);
    Z3_del_context(Z);
  };

  {
    // Mixed int/bool/array, satisfiable.
    TermArena A;
    TermRef X = A.freshConst(Ctx.intType(), "x");
    TermRef P = A.freshConst(Ctx.boolType(), "p");
    TermRef Arr = A.freshConst(ArrTy, "m");
    CrossCheck({A.mkImplies(P, A.mkLt(A.intLit(0), X)),
                A.mkEq(A.mkSelect(Arr, X), A.mkAdd(X, A.intLit(-3))), P},
               A);
  }
  {
    // Unsatisfiable int constraints with div/mod.
    TermArena A;
    TermRef X = A.freshConst(Ctx.intType(), "x");
    CrossCheck({A.mkEq(A.mkMod(X, A.intLit(2)), A.intLit(1)),
                A.mkEq(A.mkMul(A.intLit(2), A.mkDiv(X, A.intLit(2))), X)},
               A);
  }
  {
    // Bitvectors, satisfiable only via wraparound.
    TermArena A;
    const Type *Bv8 = Ctx.bvType(8);
    TermRef W = A.freshConst(Bv8, "w");
    CrossCheck({A.mkEq(A.mkAdd(W, A.bvLit(1, Bv8)), A.bvLit(0, Bv8)),
                A.mkLt(A.bvLit(100, Bv8), W)},
               A);
  }
}

TEST(Z3, NumChecksCounted) {
  TermArena A;
  auto S = createZ3Solver(A);
  EXPECT_EQ(S->numChecks(), 0u);
  S->check();
  S->check();
  EXPECT_EQ(S->numChecks(), 2u);
}
