//===- consistency_test.cpp - Def. 2 / Alg. 1 / incremental Fig. 10 ---------===//

#include "cfg/Lower.h"
#include "core/Consistency.h"
#include "parser/Parser.h"
#include "support/Rng.h"
#include "workload/RandomProg.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

struct Fixture {
  AstContext Ctx;
  CfgProgram Cfg;

  explicit Fixture(const char *Src) {
    DiagEngine Diags;
    auto P = parseAndCheck(Src, Ctx, Diags);
    EXPECT_TRUE(P) << Diags.str();
    if (P)
      Cfg = lowerToCfg(Ctx, *P);
  }
};

const char *DiamondSrc = R"(
  procedure g() { }
  procedure f() { call g(); }
  procedure e() { call g(); }
  procedure main() { if (*) { call f(); } else { call e(); } }
)";

const char *SequentialSrc = R"(
  procedure g() { }
  procedure main() { call g(); call g(); }
)";

} // namespace

TEST(Consistency, MergingDisjointBranchesAllowed) {
  Fixture F(DiamondSrc);
  TermArena Arena;
  VcContext Vc(F.Ctx, F.Cfg, Arena);
  DisjointAnalysis Disj(F.Cfg);
  ConsistencyChecker Check(Vc, Disj);

  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  Check.onNewNode(Root);
  ASSERT_EQ(Vc.openEdges().size(), 2u);
  EdgeId EF = Vc.openEdges()[0];
  EdgeId EE = Vc.openEdges()[1];

  NodeId NF = Vc.genPvc(Vc.edge(EF).Callee);
  Check.onNewNode(NF);
  Vc.bindEdge(EF, NF);
  Check.onBind(EF, NF);
  NodeId NE = Vc.genPvc(Vc.edge(EE).Callee);
  Check.onNewNode(NE);
  Vc.bindEdge(EE, NE);
  Check.onBind(EE, NE);

  // Now f and e each expose a call to g; the two instances may share one g
  // node because the branches are disjoint.
  ASSERT_EQ(Vc.openEdges().size(), 2u);
  EdgeId GF = Vc.openEdges()[0];
  EdgeId GE = Vc.openEdges()[1];
  NodeId NG = Vc.genPvc(Vc.edge(GF).Callee);
  Check.onNewNode(NG);
  Vc.bindEdge(GF, NG);
  Check.onBind(GF, NG);

  EXPECT_TRUE(Check.canBind(GE, NG));
  Vc.bindEdge(GE, NG);
  Check.onBind(GE, NG);
  EXPECT_TRUE(Check.isConsistentFull());
  // The merged node now represents two configurations, both enumerable.
  EXPECT_EQ(allConfigsOf(Vc, NG).size(), 2u);
}

TEST(Consistency, MergingSequentialCallsRejected) {
  Fixture F(SequentialSrc);
  TermArena Arena;
  VcContext Vc(F.Ctx, F.Cfg, Arena);
  DisjointAnalysis Disj(F.Cfg);
  ConsistencyChecker Check(Vc, Disj);

  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  Check.onNewNode(Root);
  ASSERT_EQ(Vc.openEdges().size(), 2u);
  EdgeId E1 = Vc.openEdges()[0];
  EdgeId E2 = Vc.openEdges()[1];
  NodeId NG = Vc.genPvc(Vc.edge(E1).Callee);
  Check.onNewNode(NG);
  Vc.bindEdge(E1, NG);
  Check.onBind(E1, NG);

  // The second sequential call may NOT merge into the same instance: both
  // calls happen on every execution.
  EXPECT_FALSE(Check.canBind(E2, NG));
}

TEST(Consistency, TransitiveConflictThroughSharedChild) {
  // main calls f twice sequentially; f calls g. Merging the two f's is
  // illegal, and merging the two g's under *separate* f's is also illegal
  // (their configurations diverge at the sequential call sites).
  Fixture F(R"(
    procedure g() { }
    procedure f() { call g(); }
    procedure main() { call f(); call f(); }
  )");
  TermArena Arena;
  VcContext Vc(F.Ctx, F.Cfg, Arena);
  DisjointAnalysis Disj(F.Cfg);
  ConsistencyChecker Check(Vc, Disj);

  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  Check.onNewNode(Root);
  EdgeId F1 = Vc.openEdges()[0];
  EdgeId F2 = Vc.openEdges()[1];
  NodeId NF1 = Vc.genPvc(Vc.edge(F1).Callee);
  Check.onNewNode(NF1);
  Vc.bindEdge(F1, NF1);
  Check.onBind(F1, NF1);
  EXPECT_FALSE(Check.canBind(F2, NF1));
  NodeId NF2 = Vc.genPvc(Vc.edge(F2).Callee);
  Check.onNewNode(NF2);
  Vc.bindEdge(F2, NF2);
  Check.onBind(F2, NF2);

  // Inline g under f1.
  ASSERT_EQ(Vc.openEdges().size(), 2u);
  EdgeId G1 = Vc.openEdges()[0];
  EdgeId G2 = Vc.openEdges()[1];
  NodeId NG = Vc.genPvc(Vc.edge(G1).Callee);
  Check.onNewNode(NG);
  Vc.bindEdge(G1, NG);
  Check.onBind(G1, NG);

  // Merging f2's g into f1's g would give NG two non-disjoint
  // configurations (one through each sequential call).
  EXPECT_FALSE(Check.canBind(G2, NG));
}

TEST(Consistency, ParallelEdgesSameTargetNeedDisjointSites) {
  // f calls g twice: once in each branch arm (mergeable) — but a procedure
  // calling g twice sequentially cannot point both edges at one node.
  Fixture F(R"(
    procedure g() { }
    procedure branchy() { if (*) { call g(); } else { call g(); } }
    procedure seq() { call g(); call g(); }
    procedure main() { if (*) { call branchy(); } else { call seq(); } }
  )");
  TermArena Arena;
  VcContext Vc(F.Ctx, F.Cfg, Arena);
  DisjointAnalysis Disj(F.Cfg);
  ConsistencyChecker Check(Vc, Disj);

  auto InlineFresh = [&](EdgeId E) {
    NodeId N = Vc.genPvc(Vc.edge(E).Callee);
    Check.onNewNode(N);
    Vc.bindEdge(E, N);
    Check.onBind(E, N);
    return N;
  };

  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  Check.onNewNode(Root);
  // Resolve branchy and seq.
  ProcId BranchyId = F.Cfg.findProc(F.Ctx.sym("branchy"));
  std::vector<EdgeId> Open = Vc.openEdges();
  for (EdgeId E : Open)
    InlineFresh(E);

  // branchy's two g edges: parallel merge OK.
  std::vector<EdgeId> GEdges;
  for (EdgeId E = 0; E < Vc.numEdges(); ++E)
    if (Vc.edge(E).isOpen())
      GEdges.push_back(E);
  ASSERT_EQ(GEdges.size(), 4u);

  auto FromProc = [&](EdgeId E) { return Vc.node(Vc.edge(E).Src).Proc; };
  std::vector<EdgeId> BranchyEdges, SeqEdges;
  for (EdgeId E : GEdges)
    (FromProc(E) == BranchyId ? BranchyEdges : SeqEdges).push_back(E);
  ASSERT_EQ(BranchyEdges.size(), 2u);
  ASSERT_EQ(SeqEdges.size(), 2u);

  NodeId GB = InlineFresh(BranchyEdges[0]);
  EXPECT_TRUE(Check.canBind(BranchyEdges[1], GB));
  Vc.bindEdge(BranchyEdges[1], GB);
  Check.onBind(BranchyEdges[1], GB);
  EXPECT_TRUE(Check.isConsistentFull());

  NodeId GS = InlineFresh(SeqEdges[0]);
  EXPECT_FALSE(Check.canBind(SeqEdges[1], GS));
  // Merging seq's second g into *branchy's* shared g is fine, though: the
  // new configuration diverges from GB's existing ones at main's dispatch
  // branch, which is disjoint. Only co-residence with seq's own first call
  // is illegal.
  EXPECT_TRUE(Check.canBind(SeqEdges[1], GB));
  Vc.bindEdge(SeqEdges[1], GB);
  Check.onBind(SeqEdges[1], GB);
  EXPECT_TRUE(Check.isConsistentFull());
  EXPECT_EQ(allConfigsOf(Vc, GB).size(), 3u);
  (void)GS;
}

//===----------------------------------------------------------------------===//
// Property: incremental canBind ⟺ Def. 2 over enumerated configurations
//===----------------------------------------------------------------------===//

namespace {

/// Definition 2 checked literally: every pair of distinct configurations of
/// every node must be disjoint (via the exact Lemma 1 decision).
bool def2Consistent(const VcContext &Vc, const DisjointAnalysis &Disj) {
  for (NodeId N = 0; N < Vc.numNodes(); ++N) {
    std::vector<std::vector<LabelId>> Configs = allConfigsOf(Vc, N);
    for (size_t I = 0; I < Configs.size(); ++I)
      for (size_t J = I + 1; J < Configs.size(); ++J)
        if (!Disj.disjointConfigs(Configs[I], Configs[J]))
          return false;
  }
  return true;
}

} // namespace

namespace {

/// One recorded Gen_VC action, replayable into a fresh VcContext (node and
/// edge ids are deterministic in creation order).
struct Op {
  enum { Gen, Bind } Kind;
  ProcId Callee = InvalidProc; // Gen
  EdgeId Edge = InvalidEdge;   // Bind
  NodeId Target = InvalidNode; // Bind
};

void replay(VcContext &Vc, const std::vector<Op> &Ops) {
  for (const Op &O : Ops) {
    if (O.Kind == Op::Gen)
      Vc.genPvc(O.Callee);
    else
      Vc.bindEdge(O.Edge, O.Target);
  }
}

} // namespace

class ConsistencyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyProperty, IncrementalMatchesDefinition2) {
  AstContext Ctx;
  RandomProgParams Params;
  Params.Seed = GetParam();
  Params.NumProcs = 5;
  Params.MaxStmts = 4;
  Params.MaxNesting = 2;
  Program P = makeRandomProgram(Ctx, Params);
  CfgProgram Cfg = lowerToCfg(Ctx, P);
  ASSERT_TRUE(Cfg.isHierarchical());

  TermArena Arena;
  VcContext Vc(Ctx, Cfg, Arena);
  DisjointAnalysis Disj(Cfg);
  ConsistencyChecker Check(Vc, Disj);
  Rng Gen(GetParam() * 7919 + 1);

  std::vector<Op> Log;
  auto GenFresh = [&](ProcId Q) {
    NodeId N = Vc.genPvc(Q);
    Check.onNewNode(N);
    Log.push_back({Op::Gen, Q, InvalidEdge, InvalidNode});
    return N;
  };
  auto Commit = [&](EdgeId E, NodeId N) {
    Vc.bindEdge(E, N);
    Check.onBind(E, N);
    Log.push_back({Op::Bind, InvalidProc, E, N});
  };

  GenFresh(Cfg.findProc(Ctx.sym("main")));

  // Drive a random inlining. For every attempted merge, validate the
  // incremental verdict against Definition 2 evaluated on the hypothetical
  // DAG (a replayed copy with the merge forced in).
  unsigned Steps = 0;
  while (!Vc.openEdges().empty() && Steps++ < 50) {
    EdgeId E = Vc.openEdges()[Gen.below(Vc.openEdges().size())];
    const std::vector<NodeId> &Candidates = Vc.instancesOf(Vc.edge(E).Callee);
    NodeId Pick = InvalidNode;
    if (!Candidates.empty() && Gen.chance(3, 4))
      Pick = Candidates[Gen.below(Candidates.size())];

    if (Pick != InvalidNode) {
      bool Incremental = Check.canBind(E, Pick);

      // Ground truth: replay the construction into a scratch context,
      // force the merge, and evaluate Definition 2 literally.
      TermArena ScratchArena;
      VcContext Scratch(Ctx, Cfg, ScratchArena);
      replay(Scratch, Log);
      Scratch.bindEdge(E, Pick);
      bool GroundTruth = def2Consistent(Scratch, Disj);

      EXPECT_EQ(Incremental, GroundTruth)
          << "seed " << GetParam() << " step " << Steps;

      if (Incremental) {
        Commit(E, Pick);
        EXPECT_TRUE(Check.isConsistentFull());
        continue;
      }
    }
    NodeId Fresh = GenFresh(Vc.edge(E).Callee);
    Commit(E, Fresh);
    EXPECT_TRUE(Check.isConsistentFull());
    EXPECT_TRUE(def2Consistent(Vc, Disj));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyProperty,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Completeness of rejection: when canBind says no, committing the merge
// must actually violate Def. 2 (checked on small fixed programs where we
// can rebuild the context from scratch).
//===----------------------------------------------------------------------===//

TEST(Consistency, RejectionIsJustifiedOnSequentialProgram) {
  Fixture F(SequentialSrc);
  DisjointAnalysis Disj(F.Cfg);

  // Build once, merge by force, and confirm Def. 2 breaks.
  TermArena Arena;
  VcContext Vc(F.Ctx, F.Cfg, Arena);
  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  (void)Root;
  EdgeId E1 = Vc.openEdges()[0];
  EdgeId E2 = Vc.openEdges()[1];
  NodeId NG = Vc.genPvc(Vc.edge(E1).Callee);
  Vc.bindEdge(E1, NG);
  Vc.bindEdge(E2, NG); // force the illegal merge behind the checker's back
  bool AnyNonDisjoint = false;
  std::vector<std::vector<LabelId>> Configs = allConfigsOf(Vc, NG);
  ASSERT_EQ(Configs.size(), 2u);
  if (!Disj.disjointConfigs(Configs[0], Configs[1]))
    AnyNonDisjoint = true;
  EXPECT_TRUE(AnyNonDisjoint);
}
