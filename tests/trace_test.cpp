//===- trace_test.cpp - Counterexample trace validity ------------------------===//
//
// Traces are reconstructed from the solver model by walking the inlining
// DAG (Engine::extractTrace). These properties check, over random buggy
// programs, that every reported trace is *structurally real*: steps follow
// flow edges or call/return boundaries, the trace starts at the entry, and
// it witnesses the error bit being set. Plus a VC-level cross-check: the
// printed SMT-LIB script of a whole random VC reparses under Z3 with the
// same verdict as the native translation.
//
//===----------------------------------------------------------------------===//

#include "cfg/Lower.h"
#include "core/VcGen.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "smt/SmtLibPrinter.h"
#include "smt/Z3Solver.h"
#include "transform/Transforms.h"
#include "workload/RandomProg.h"

#include <z3.h>

#include <gtest/gtest.h>

using namespace rmt;

namespace {

/// Structural validity of a trace against the lowered program: each
/// consecutive pair of steps must be one of
///   (a) a flow edge within one procedure,
///   (b) a call step: caller's call label -> callee's entry label,
///   (c) a return step: callee exit label (no targets) -> the pending call
///       label's successor... which Engine reports as the *call label
///       itself* continuing (the call label appears before descending and
///       its successor appears after the callee segment).
/// We check (a), (b) and the return discipline with an explicit stack.
void checkTraceStructure(const CfgProgram &Cfg,
                         const std::vector<TraceStep> &Trace) {
  ASSERT_FALSE(Trace.empty());
  std::vector<LabelId> CallStack; // call labels awaiting return
  for (size_t I = 0; I + 1 < Trace.size(); ++I) {
    LabelId Cur = Trace[I].Label;
    LabelId Next = Trace[I + 1].Label;
    const CfgLabel &CurLbl = Cfg.label(Cur);

    // (b) descend into a callee.
    if (CurLbl.Stmt.Kind == CfgStmtKind::Call &&
        Next == Cfg.proc(CurLbl.Stmt.Callee).Entry) {
      CallStack.push_back(Cur);
      continue;
    }
    // (a) intraprocedural step.
    bool FlowEdge = false;
    for (LabelId T : CurLbl.Targets)
      if (T == Next)
        FlowEdge = true;
    if (FlowEdge)
      continue;
    // (c) return: Cur must be an exit label, and Next a successor of the
    // call label on top of the stack.
    ASSERT_TRUE(CurLbl.Targets.empty())
        << "step " << I << ": L" << Cur << " -> L" << Next
        << " is neither flow edge, call, nor return";
    bool Matched = false;
    while (!CallStack.empty() && !Matched) {
      LabelId CallSite = CallStack.back();
      CallStack.pop_back();
      for (LabelId T : Cfg.label(CallSite).Targets)
        if (T == Next)
          Matched = true;
    }
    EXPECT_TRUE(Matched) << "return step " << I << " does not resume at a "
                            "pending call site's successor";
  }
}

} // namespace

class TraceValidity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceValidity, BuggyTracesAreStructurallyReal) {
  RandomProgParams Params;
  Params.Seed = GetParam() + 9000;
  Params.NumProcs = 5;
  Params.MaxStmts = 4;
  Params.AssertChance = 80;

  AstContext Ctx;
  Program P = makeRandomProgram(Ctx, Params);
  BoundedInstance B = prepareBounded(Ctx, P, Ctx.sym("main"), 2);
  CfgProgram Cfg = lowerToCfg(Ctx, B.Prog);
  ProcId Entry = Cfg.findProc(B.Entry);

  for (PvcMode Mode : {PvcMode::Paper, PvcMode::Passified}) {
    EngineOptions Opts;
    Opts.Strategy.Kind = MergeStrategyKind::First;
    Opts.Pvc = Mode;
    Opts.TimeoutSeconds = 60;
    VerifyResult R = solveReachability(Ctx, Cfg, Entry, B.ErrVar, Opts);
    if (R.Outcome != Verdict::Bug)
      continue; // only buggy instances produce traces
    ASSERT_FALSE(R.Trace.empty());
    // Starts at the root procedure's entry.
    EXPECT_EQ(R.Trace.front().Label, Cfg.proc(Entry).Entry);
    checkTraceStructure(Cfg, R.Trace);
    // The model values include the error bit; it must end up set somewhere.
    bool ErrSeen = false;
    size_t ErrIndex = 0;
    for (size_t I = 0; I < Cfg.Globals.size(); ++I)
      if (Cfg.Globals[I].Name == B.ErrVar)
        ErrIndex = I;
    for (const TraceStep &Step : R.Trace)
      if (!Step.GlobalValues.empty() && Step.GlobalValues[ErrIndex])
        ErrSeen = true;
    EXPECT_TRUE(ErrSeen) << "trace never observes the error bit";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceValidity,
                         ::testing::Range<uint64_t>(1, 31));

//===----------------------------------------------------------------------===//
// Whole-VC SMT-LIB round trip under Z3's own parser
//===----------------------------------------------------------------------===//

class VcScriptRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VcScriptRoundTrip, PrintedVcHasSameVerdictUnderZ3Parser) {
  RandomProgParams Params;
  Params.Seed = GetParam() + 700;
  Params.NumProcs = 4;
  Params.MaxStmts = 3;
  Params.AllowBitvectors = GetParam() % 2 == 0;
  Params.AllowArrays = GetParam() % 3 == 0;

  AstContext Ctx;
  Program P = makeRandomProgram(Ctx, Params);
  BoundedInstance B = prepareBounded(Ctx, P, Ctx.sym("main"), 2);
  CfgProgram Cfg = lowerToCfg(Ctx, B.Prog);
  ProcId Entry = Cfg.findProc(B.Entry);

  // Build the fully tree-inlined VC with the error-bit query.
  TermArena Arena;
  VcContext Vc(Ctx, Cfg, Arena);
  NodeId Root = Vc.genPvc(Entry);
  while (!Vc.openEdges().empty()) {
    EdgeId E = Vc.openEdges().front();
    Vc.bindEdge(E, Vc.genPvc(Vc.edge(E).Callee));
    if (Vc.numNodes() > 300)
      GTEST_SKIP() << "tree too large for the round-trip check";
  }
  std::vector<TermRef> Assertions = Vc.allClauses();
  Assertions.push_back(Vc.node(Root).Control);
  size_t ErrIndex = 0;
  for (size_t I = 0; I < Cfg.Globals.size(); ++I)
    if (Cfg.Globals[I].Name == B.ErrVar)
      ErrIndex = I;
  Assertions.push_back(Vc.node(Root).Out[ErrIndex]);

  // Native verdict.
  auto Native = createZ3Solver(Arena);
  for (TermRef T : Assertions)
    Native->assertTerm(T);
  SolveResult Direct = Native->check();

  // Reparse the printed script with Z3's reader.
  std::string Script = printScript(Arena, Assertions);
  Z3_config Config = Z3_mk_config();
  Z3_context Z = Z3_mk_context(Config);
  Z3_del_config(Config);
  Z3_ast_vector Parsed = Z3_parse_smtlib2_string(
      Z, Script.c_str(), 0, nullptr, nullptr, 0, nullptr, nullptr);
  ASSERT_NE(Parsed, nullptr);
  Z3_ast_vector_inc_ref(Z, Parsed);
  Z3_solver S = Z3_mk_solver(Z);
  Z3_solver_inc_ref(Z, S);
  for (unsigned I = 0; I < Z3_ast_vector_size(Z, Parsed); ++I)
    Z3_solver_assert(Z, S, Z3_ast_vector_get(Z, Parsed, I));
  Z3_lbool R = Z3_solver_check(Z, S);
  SolveResult Reparsed = R == Z3_L_TRUE    ? SolveResult::Sat
                         : R == Z3_L_FALSE ? SolveResult::Unsat
                                           : SolveResult::Unknown;
  EXPECT_EQ(Direct, Reparsed) << "seed " << GetParam();
  Z3_solver_dec_ref(Z, S);
  Z3_ast_vector_dec_ref(Z, Parsed);
  Z3_del_context(Z);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcScriptRoundTrip,
                         ::testing::Range<uint64_t>(1, 16));
