//===- ast_test.cpp - Unit tests for src/ast -------------------------------===//

#include "ast/AstContext.h"
#include "ast/AstPrinter.h"
#include "ast/Eval.h"
#include "parser/Parser.h"
#include "workload/Chain.h"
#include "workload/RandomProg.h"

#include <gtest/gtest.h>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(Types, SingletonsAndUniquing) {
  AstContext Ctx;
  EXPECT_TRUE(Ctx.intType()->isInt());
  EXPECT_TRUE(Ctx.boolType()->isBool());
  const Type *A = Ctx.arrayType(Ctx.intType(), Ctx.boolType());
  const Type *B = Ctx.arrayType(Ctx.intType(), Ctx.boolType());
  EXPECT_EQ(A, B);
  EXPECT_TRUE(A->isArray());
  EXPECT_EQ(A->indexType(), Ctx.intType());
  EXPECT_EQ(A->elementType(), Ctx.boolType());
  const Type *Nested = Ctx.arrayType(Ctx.intType(), A);
  EXPECT_NE(Nested, A);
  EXPECT_EQ(Nested->str(), "[int][int]bool");
}

TEST(Types, Rendering) {
  AstContext Ctx;
  EXPECT_EQ(Ctx.intType()->str(), "int");
  EXPECT_EQ(Ctx.boolType()->str(), "bool");
  EXPECT_EQ(Ctx.arrayType(Ctx.intType(), Ctx.intType())->str(), "[int]int");
}

//===----------------------------------------------------------------------===//
// Typed builders
//===----------------------------------------------------------------------===//

TEST(Builders, TypedExprsCarryTypes) {
  AstContext Ctx;
  const Expr *I = Ctx.tInt(5);
  const Expr *B = Ctx.tBool(true);
  EXPECT_EQ(I->type(), Ctx.intType());
  EXPECT_EQ(B->type(), Ctx.boolType());
  const Expr *Sum = Ctx.tBinary(BinOp::Add, I, Ctx.tInt(2));
  EXPECT_EQ(Sum->type(), Ctx.intType());
  const Expr *Cmp = Ctx.tBinary(BinOp::Lt, I, Sum);
  EXPECT_EQ(Cmp->type(), Ctx.boolType());
  const Expr *Ite = Ctx.tIte(Cmp, I, Sum);
  EXPECT_EQ(Ite->type(), Ctx.intType());
}

TEST(Builders, ArraysSelectStore) {
  AstContext Ctx;
  const Type *ArrTy = Ctx.arrayType(Ctx.intType(), Ctx.intType());
  const Expr *A = Ctx.tVar(Ctx.sym("a"), ArrTy);
  const Expr *Stored = Ctx.tStore(A, Ctx.tInt(1), Ctx.tInt(9));
  EXPECT_EQ(Stored->type(), ArrTy);
  const Expr *Sel = Ctx.tSelect(Stored, Ctx.tInt(1));
  EXPECT_EQ(Sel->type(), Ctx.intType());
}

TEST(Builders, AndOfEmptyListIsTrue) {
  AstContext Ctx;
  const Expr *T = Ctx.tAnd({});
  EXPECT_EQ(T->kind(), ExprKind::BoolLit);
  EXPECT_TRUE(T->boolValue());
}

//===----------------------------------------------------------------------===//
// Printer round-trips
//===----------------------------------------------------------------------===//

namespace {

/// Print -> parse -> print must be a fixpoint.
void expectRoundTrip(const Program &Prog, AstContext &Ctx) {
  std::string Once = printProgram(Ctx, Prog);
  AstContext Ctx2;
  DiagEngine Diags;
  std::optional<Program> Reparsed = parseAndCheck(Once, Ctx2, Diags);
  ASSERT_TRUE(Reparsed) << Diags.str() << "\nsource:\n" << Once;
  std::string Twice = printProgram(Ctx2, *Reparsed);
  EXPECT_EQ(Once, Twice);
}

} // namespace

TEST(Printer, RoundTripChain) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 3);
  expectRoundTrip(P, Ctx);
}

TEST(Printer, RoundTripRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    AstContext Ctx;
    RandomProgParams Params;
    Params.Seed = Seed;
    Params.AllowLoops = Seed % 2 == 0;
    Params.AllowArrays = Seed % 3 == 0;
    Params.AllowBitvectors = Seed % 4 == 0;
    Program P = makeRandomProgram(Ctx, Params);
    expectRoundTrip(P, Ctx);
  }
}

TEST(Printer, PrecedenceMinimalParens) {
  AstContext Ctx;
  const Expr *X = Ctx.tVar(Ctx.sym("x"), Ctx.intType());
  // x + 1 * 2  must print without parens around the product.
  const Expr *E = Ctx.tBinary(
      BinOp::Add, X, Ctx.tBinary(BinOp::Mul, Ctx.tInt(1), Ctx.tInt(2)));
  EXPECT_EQ(printExpr(Ctx, E), "x + 1 * 2");
  // (x + 1) * 2 must keep parens.
  const Expr *F = Ctx.tBinary(
      BinOp::Mul, Ctx.tBinary(BinOp::Add, X, Ctx.tInt(1)), Ctx.tInt(2));
  EXPECT_EQ(printExpr(Ctx, F), "(x + 1) * 2");
}

TEST(Printer, NegativeLiterals) {
  AstContext Ctx;
  EXPECT_EQ(printExpr(Ctx, Ctx.tInt(-3)), "(-3)");
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

namespace {

std::optional<Program> parseOk(const char *Src, AstContext &Ctx) {
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

} // namespace

TEST(Eval, StraightLineArithmetic) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      g := 3;
      g := g * 2 + 1;
      assert g == 7;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(Eval, AssertFailureDetected) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      g := 1;
      assert g == 2;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::AssertFailed);
  EXPECT_TRUE(R.FailedAssertLoc.isValid());
}

TEST(Eval, AssumeBlocks) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure main() {
      assume false;
      assert false;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Blocked);
}

TEST(Eval, CallsPassParamsAndReturns) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure inc(a: int) returns (b: int) { b := a + 1; }
    procedure main() {
      var x: int;
      call x := inc(41);
      assert x == 42;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(Eval, LoopCountsIterations) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure main() {
      var i: int;
      i := 0;
      while (i < 5) { i := i + 1; }
      assert i == 5;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
  EXPECT_EQ(R.MaxLoopIterations, 5u);
}

TEST(Eval, RecursionDepthTracked) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure down(d: int) {
      if (d > 0) { call down(d - 1); }
    }
    procedure main() { call down(4); }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
  EXPECT_EQ(R.MaxRecursionDepth, 5u); // down(4)..down(0)
}

TEST(Eval, FuelLimitsRunawayLoops) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      while (true) { g := g + 1; }
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalOptions Opts;
  Opts.MaxSteps = 1000;
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Outcome, EvalOutcome::OutOfFuel);
}

TEST(Eval, EuclideanDivMod) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure main() {
      assert 7 div 2 == 3;
      assert 7 mod 2 == 1;
      assert (-7) div 2 == -4;
      assert (-7) mod 2 == 1;
      assert 7 div (-2) == -3;
      assert 7 mod (-2) == 1;
      assert (-7) div (-2) == 4;
      assert (-7) mod (-2) == 1;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(Eval, ArraysStoreSelect) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var a: [int]int;
    procedure main() {
      a[3] := 7;
      a[4] := 9;
      assert a[3] == 7;
      assert a[4] == 9;
      assert a[5] == a[6];   // both default
      a[3] := 0;
      assert a[3] == 0;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(Eval, ArrayEqualityIsExtensional) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var a: [int]int;
    var b: [int]int;
    procedure main() {
      a[1] := 5;
      b[1] := 5;
      assert a == b;
      b[1] := 0;      // pruned back to default
      a[1] := 0;
      assert a == b;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}

TEST(Eval, DeterministicPerSeed) {
  AstContext Ctx;
  RandomProgParams Params;
  Params.Seed = 9;
  Params.AllowLoops = true;
  Program P = makeRandomProgram(Ctx, Params);
  EvalOptions Opts;
  Opts.Seed = 123;
  EvalResult A = evaluate(Ctx, P, Ctx.sym("main"), Opts);
  EvalResult B = evaluate(Ctx, P, Ctx.sym("main"), Opts);
  EXPECT_EQ(A.Outcome, B.Outcome);
  EXPECT_EQ(A.MaxLoopIterations, B.MaxLoopIterations);
  EXPECT_EQ(A.MaxRecursionDepth, B.MaxRecursionDepth);
}

TEST(Eval, ShortCircuitSemantics) {
  AstContext Ctx;
  // Division by zero yields 0 in the oracle, but short-circuiting must
  // avoid evaluating the right side when the left decides.
  auto P = parseOk(R"(
    procedure main() {
      var x: int;
      x := 0;
      assert !(x != 0 && 10 div x > 0);
      assert x == 0 || 10 div x > 0;
      assert x != 0 ==> 10 div x >= 0;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EvalResult R = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
}
