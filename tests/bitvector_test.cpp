//===- bitvector_test.cpp - Bitvector types end to end ----------------------===//
//
// The paper: "Our implementation handles all types and expressions
// supported by existing satisfiability-modulo-theory solvers ... including
// bitvectors, integers, arrays, and datatypes." These tests cover the bv
// pipeline: parsing, typing, evaluation (wraparound / unsigned semantics),
// VC generation through Z3, and verdict agreement with the oracle.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "ast/Eval.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "smt/SmtLibPrinter.h"
#include "parser/TypeCheck.h"
#include "smt/Z3Solver.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

std::optional<Program> parseOk(const char *Src, AstContext &Ctx) {
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

VerifierRunResult run(const char *Src, MergeStrategyKind Kind,
                      PvcMode Pvc = PvcMode::Paper) {
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = Kind;
  Opts.Engine.Pvc = Pvc;
  Opts.Engine.TimeoutSeconds = 60;
  return verifyProgram(Ctx, *P, Ctx.sym("main"), Opts);
}

} // namespace

TEST(BvTypes, UniquedPerWidth) {
  AstContext Ctx;
  EXPECT_EQ(Ctx.bvType(8), Ctx.bvType(8));
  EXPECT_NE(Ctx.bvType(8), Ctx.bvType(16));
  EXPECT_EQ(Ctx.bvType(8)->bvWidth(), 8u);
  EXPECT_EQ(Ctx.bvType(32)->str(), "bv32");
}

TEST(BvTypes, LiteralBuilderMasks) {
  AstContext Ctx;
  const Expr *E = Ctx.tBv(0x1FF, 8); // 511 truncates to 255
  EXPECT_EQ(E->intValue(), 255);
  EXPECT_EQ(E->type(), Ctx.bvType(8));
}

TEST(BvParse, TypesLiteralsRoundTrip) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var x: bv8;
    procedure main() {
      var y: bv32;
      x := 200bv8;
      y := 70000bv32;
      assume x < 255bv8;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  std::string Printed = printProgram(Ctx, *P);
  EXPECT_NE(Printed.find("x: bv8"), std::string::npos);
  EXPECT_NE(Printed.find("200bv8"), std::string::npos);
  // Round-trip stability.
  AstContext Ctx2;
  DiagEngine Diags;
  auto P2 = parseAndCheck(Printed, Ctx2, Diags);
  ASSERT_TRUE(P2) << Diags.str();
  EXPECT_EQ(printProgram(Ctx2, *P2), Printed);
}

TEST(BvParse, TypeErrorsCaught) {
  AstContext Ctx;
  DiagEngine Diags;
  // Mixed widths.
  auto P = parseProgram(
      "procedure main() { var a: bv8; var b: bv16; assume a == b; }", Ctx,
      Diags);
  ASSERT_TRUE(P);
  EXPECT_FALSE(typecheck(Ctx, *P, Diags));
  // bv + int.
  AstContext Ctx2;
  DiagEngine Diags2;
  auto P2 = parseProgram(
      "procedure main() { var a: bv8; var b: int; b := a + 1; }", Ctx2,
      Diags2);
  ASSERT_TRUE(P2);
  EXPECT_FALSE(typecheck(Ctx2, *P2, Diags2));
}

TEST(BvParse, BadWidthRejected) {
  AstContext Ctx;
  DiagEngine Diags;
  EXPECT_FALSE(parseProgram("var x: bv0;", Ctx, Diags));
  AstContext Ctx2;
  DiagEngine Diags2;
  EXPECT_FALSE(parseProgram("var x: bv65;", Ctx2, Diags2));
  AstContext Ctx3;
  DiagEngine Diags3;
  EXPECT_FALSE(
      parseProgram("procedure main() { assume 1bv99 == 1bv99; }", Ctx3,
                   Diags3));
}

TEST(BvEval, WraparoundSemantics) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure main() {
      var x: bv8;
      x := 250bv8;
      x := x + 10bv8;
      assert x == 4bv8;          // 260 mod 256
      x := 3bv8 - 5bv8;
      assert x == 254bv8;        // two's complement
      x := 16bv8 * 32bv8;
      assert x == 0bv8;          // 512 mod 256
      x := -(1bv8);
      assert x == 255bv8;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EXPECT_EQ(evaluate(Ctx, *P, Ctx.sym("main"), {}).Outcome,
            EvalOutcome::Completed);
}

TEST(BvEval, UnsignedComparisonAndDivision) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure main() {
      var x: bv8;
      x := 255bv8;
      assert x > 1bv8;           // unsigned: 255 is large, not -1
      assert 7bv8 div 2bv8 == 3bv8;
      assert 7bv8 mod 2bv8 == 1bv8;
      assert 5bv8 div 0bv8 == 255bv8;  // SMT-LIB bvudiv by zero
      assert 5bv8 mod 0bv8 == 5bv8;    // SMT-LIB bvurem by zero
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  EXPECT_EQ(evaluate(Ctx, *P, Ctx.sym("main"), {}).Outcome,
            EvalOutcome::Completed);
}

TEST(BvSmt, TermsAndZ3Agree) {
  AstContext Ctx;
  TermArena A;
  auto S = createZ3Solver(A);
  const Type *Bv8 = Ctx.bvType(8);
  TermRef X = A.freshConst(Bv8, "x");
  // x + 10 == 4 has the unique solution x == 250 (mod 256).
  S->assertTerm(A.mkEq(A.mkAdd(X, A.bvLit(10, Bv8)), A.bvLit(4, Bv8)));
  ASSERT_EQ(S->check(), SolveResult::Sat);
  EXPECT_EQ(S->modelInt(X), 250);
  // And unsigned comparison: 250 > 100.
  S->assertTerm(A.mkLt(A.bvLit(100, Bv8), X));
  EXPECT_EQ(S->check(), SolveResult::Sat);
  S->assertTerm(A.mkLt(X, A.bvLit(100, Bv8)));
  EXPECT_EQ(S->check(), SolveResult::Unsat);
}

TEST(BvSmt, LiteralsOfDifferentSortsNotConfused) {
  AstContext Ctx;
  TermArena A;
  TermRef IntFive = A.intLit(5);
  TermRef BvFive = A.bvLit(5, Ctx.bvType(8));
  EXPECT_NE(IntFive, BvFive);
  TermRef BvFive16 = A.bvLit(5, Ctx.bvType(16));
  EXPECT_NE(BvFive, BvFive16);
  EXPECT_EQ(BvFive, A.bvLit(5 + 256, Ctx.bvType(8))); // masked consing
}

TEST(BvSmt, SmtLibRendering) {
  AstContext Ctx;
  TermArena A;
  const Type *Bv8 = Ctx.bvType(8);
  TermRef X = A.freshConst(Bv8, "x");
  TermRef T = A.mkLt(A.mkAdd(X, A.bvLit(1, Bv8)), A.bvLit(7, Bv8));
  EXPECT_EQ(printTerm(A, T), "(bvult (bvadd x!0 (_ bv1 8)) (_ bv7 8))");
  std::string Script = printScript(A, {T});
  EXPECT_NE(Script.find("(declare-const x!0 (_ BitVec 8))"),
            std::string::npos);
}

TEST(BvVerify, OverflowBugFoundOnlyBySolver) {
  // The assert holds over mathematical integers but fails at bv8 overflow;
  // the verifier must find the wraparound.
  const char *Src = R"(
    procedure main() {
      var x: bv8;
      havoc x;
      assume x >= 200bv8;
      assert x + 100bv8 >= 100bv8;
    }
  )";
  for (MergeStrategyKind Kind :
       {MergeStrategyKind::None, MergeStrategyKind::First}) {
    auto R = run(Src, Kind);
    EXPECT_EQ(R.Result.Outcome, Verdict::Bug) << strategyName(Kind);
  }
  // Passified mode agrees.
  EXPECT_EQ(run(Src, MergeStrategyKind::First, PvcMode::Passified)
                .Result.Outcome,
            Verdict::Bug);
}

TEST(BvVerify, SafeCheckedArithmeticThroughCalls) {
  const char *Src = R"(
    var acc: bv16;

    procedure add_checked(d: bv16) {
      assume acc <= 60000bv16 - d;   // caller-provided headroom
      acc := acc + d;
    }

    procedure main() {
      var d: bv16;
      acc := 0bv16;
      havoc d;
      assume d <= 1000bv16;
      if (*) { call add_checked(d); } else { call add_checked(500bv16); }
      assert acc <= 60000bv16;
    }
  )";
  auto R = run(Src, MergeStrategyKind::First);
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
  EXPECT_GT(R.Result.NumMerged, 0u); // the two branches share add_checked
}

TEST(BvVerify, InvariantPrepassStaysSound) {
  // Intervals cannot track bv values; +Inv must not change the verdict.
  const char *Src = R"(
    var w: bv8;
    procedure bump() { w := w + 1bv8; }
    procedure main() {
      w := 255bv8;
      call bump();
      assert w == 0bv8;
    }
  )";
  AstContext Ctx;
  auto P = parseOk(Src, Ctx);
  ASSERT_TRUE(P);
  for (bool Inv : {false, true}) {
    VerifierOptions Opts;
    Opts.UseInvariants = Inv;
    Opts.Engine.TimeoutSeconds = 30;
    AstContext C2;
    DiagEngine D2;
    auto P2 = parseAndCheck(Src, C2, D2);
    auto R = verifyProgram(C2, *P2, C2.sym("main"), Opts);
    EXPECT_EQ(R.Result.Outcome, Verdict::Safe) << "inv=" << Inv;
  }
}

TEST(BvVerify, OracleAgreesWithEngine) {
  // Differential check on a bv program with a reachable bug.
  const char *Src = R"(
    var ctr: bv4;
    procedure tick() { ctr := ctr + 1bv4; }
    procedure main() {
      ctr := 14bv4;
      call tick();
      call tick();
      assert ctr != 0bv4;    // wraps at 16
    }
  )";
  AstContext Ctx;
  auto P = parseOk(Src, Ctx);
  ASSERT_TRUE(P);
  EvalResult E = evaluate(Ctx, *P, Ctx.sym("main"), {});
  EXPECT_EQ(E.Outcome, EvalOutcome::AssertFailed);
  auto R = run(Src, MergeStrategyKind::First);
  EXPECT_EQ(R.Result.Outcome, Verdict::Bug);
}
