//===- vcgen_test.cpp - Gen_pVC / Gen_VC structure (Fig. 8, Fig. 9) ---------===//

#include "cfg/Lower.h"
#include "core/VcGen.h"
#include "parser/Parser.h"
#include "smt/SmtLibPrinter.h"
#include "smt/Z3Solver.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

struct Fixture {
  AstContext Ctx;
  CfgProgram Cfg;
  TermArena Arena;

  explicit Fixture(const char *Src) {
    DiagEngine Diags;
    auto P = parseAndCheck(Src, Ctx, Diags);
    EXPECT_TRUE(P) << Diags.str();
    if (P)
      Cfg = lowerToCfg(Ctx, *P);
  }
};

/// The paper's Fig. 6 program.
const char *Fig6 = R"(
  var g: int;
  procedure main(v1: int, v2: int) returns (r: int) {
    var c: bool;
    if (c) { call r := foo(v1); }
    else   { call r := foo(v2); }
  }
  procedure foo(a: int) returns (b: int) {
    b := a + 1;
  }
)";

} // namespace

TEST(GenPvc, NodeShapeForFig6) {
  Fixture F(Fig6);
  VcContext Vc(F.Ctx, F.Cfg, F.Arena);
  ProcId MainId = F.Cfg.findProc(F.Ctx.sym("main"));
  NodeId Root = Vc.genPvc(MainId);

  const VcNode &N = Vc.node(Root);
  EXPECT_EQ(N.Proc, MainId);
  EXPECT_EQ(N.Entry, F.Cfg.proc(MainId).Entry);
  // Interface: 1 global + 2 params in, 1 global + 1 return out.
  EXPECT_EQ(N.In.size(), 3u);
  EXPECT_EQ(N.Out.size(), 2u);
  // Two open call edges (the two branch arms).
  EXPECT_EQ(N.OutEdges.size(), 2u);
  EXPECT_EQ(Vc.openEdges().size(), 2u);
  // One BS constant per label of main.
  EXPECT_EQ(N.BlockConst.size(), F.Cfg.proc(MainId).Labels.size());
  // Every clause is an implication guarded by a BS constant.
  EXPECT_FALSE(N.Clauses.empty());
}

TEST(GenPvc, EdgesCarryCallInterfaces) {
  Fixture F(Fig6);
  VcContext Vc(F.Ctx, F.Cfg, F.Arena);
  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  for (EdgeId E : Vc.node(Root).OutEdges) {
    const VcEdge &Edge = Vc.edge(E);
    EXPECT_TRUE(Edge.isOpen());
    EXPECT_EQ(Edge.Src, Root);
    EXPECT_EQ(Edge.Callee, F.Cfg.findProc(F.Ctx.sym("foo")));
    EXPECT_EQ(Edge.In.size(), 2u);  // global g + actual v1/v2
    EXPECT_EQ(Edge.Out.size(), 2u); // global g + result r
    EXPECT_NE(Edge.CallSite, InvalidLabel);
  }
}

TEST(GenVc, Fig9ExecutionMergesFoo) {
  // Replays the execution of Fig. 9: inline main, inline foo for the first
  // edge, merge the second edge into the same node.
  Fixture F(Fig6);
  std::vector<TermRef> Pushed;
  VcContext Vc(F.Ctx, F.Cfg, F.Arena,
               [&](TermRef T) { Pushed.push_back(T); });
  NodeId N0 = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  ASSERT_EQ(Vc.openEdges().size(), 2u);
  EdgeId E0 = Vc.openEdges()[0];
  EdgeId E1 = Vc.openEdges()[1];

  NodeId N1 = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("foo")));
  Vc.bindEdge(E0, N1);
  EXPECT_EQ(Vc.edge(E0).Dest, N1);
  EXPECT_EQ(Vc.openEdges().size(), 1u);

  Vc.bindEdge(E1, N1); // the merge
  EXPECT_EQ(Vc.edge(E1).Dest, N1);
  EXPECT_TRUE(Vc.openEdges().empty());

  EXPECT_EQ(Vc.numInlined(), 2u); // main + one shared foo
  EXPECT_EQ(Vc.numEdges(), 2u);
  EXPECT_FALSE(Pushed.empty());
  EXPECT_EQ(Pushed.size(), Vc.allClauses().size());
}

TEST(GenVc, InstancesTrackedPerProcedure) {
  Fixture F(Fig6);
  VcContext Vc(F.Ctx, F.Cfg, F.Arena);
  ProcId FooId = F.Cfg.findProc(F.Ctx.sym("foo"));
  EXPECT_TRUE(Vc.instancesOf(FooId).empty());
  NodeId A = Vc.genPvc(FooId);
  NodeId B = Vc.genPvc(FooId);
  ASSERT_EQ(Vc.instancesOf(FooId).size(), 2u);
  EXPECT_EQ(Vc.instancesOf(FooId)[0], A);
  EXPECT_EQ(Vc.instancesOf(FooId)[1], B);
}

namespace {

/// Builds the complete VC for Fig. 6 (DAG version when Merge is set),
/// asserts Control[root], pins the inputs, and returns (solver, root) for
/// semantic probing.
struct SolvedFig6 {
  Fixture F{Fig6};
  std::unique_ptr<Solver> S;
  NodeId Root = InvalidNode;
  std::unique_ptr<VcContext> Vc;

  explicit SolvedFig6(bool Merge) {
    S = createZ3Solver(F.Arena);
    Vc = std::make_unique<VcContext>(
        F.Ctx, F.Cfg, F.Arena, [&](TermRef T) { S->assertTerm(T); });
    Root = Vc->genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
    EdgeId E0 = Vc->openEdges()[0];
    EdgeId E1 = Vc->openEdges()[1];
    ProcId Foo = F.Cfg.findProc(F.Ctx.sym("foo"));
    NodeId N1 = Vc->genPvc(Foo);
    Vc->bindEdge(E0, N1);
    Vc->bindEdge(E1, Merge ? N1 : Vc->genPvc(Foo));
    S->assertTerm(Vc->node(Root).Control);
  }

  /// In = [g, v1, v2], Out = [g, r].
  TermRef v1() { return Vc->node(Root).In[1]; }
  TermRef v2() { return Vc->node(Root).In[2]; }
  TermRef r() { return Vc->node(Root).Out[1]; }
};

} // namespace

TEST(GenVc, SemanticsOfFig6MatchesPaper) {
  // The VC constrains r to v1 + 1 or v2 + 1, nothing else — in both the
  // tree and the DAG version (Section 2's equivalence claim).
  for (bool Merge : {false, true}) {
    SolvedFig6 X(Merge);
    TermArena &A = X.F.Arena;
    // r can be v1 + 1 ...
    X.S->push();
    X.S->assertTerm(A.mkEq(X.v1(), A.intLit(10)));
    X.S->assertTerm(A.mkEq(X.v2(), A.intLit(20)));
    X.S->assertTerm(A.mkEq(X.r(), A.intLit(11)));
    EXPECT_EQ(X.S->check(), SolveResult::Sat) << "merge=" << Merge;
    X.S->pop();
    // ... or v2 + 1 ...
    X.S->push();
    X.S->assertTerm(A.mkEq(X.v1(), A.intLit(10)));
    X.S->assertTerm(A.mkEq(X.v2(), A.intLit(20)));
    X.S->assertTerm(A.mkEq(X.r(), A.intLit(21)));
    EXPECT_EQ(X.S->check(), SolveResult::Sat) << "merge=" << Merge;
    X.S->pop();
    // ... but nothing else.
    X.S->push();
    X.S->assertTerm(A.mkEq(X.v1(), A.intLit(10)));
    X.S->assertTerm(A.mkEq(X.v2(), A.intLit(20)));
    X.S->assertTerm(A.mkNot(A.mkEq(X.r(), A.intLit(11))));
    X.S->assertTerm(A.mkNot(A.mkEq(X.r(), A.intLit(21))));
    EXPECT_EQ(X.S->check(), SolveResult::Unsat) << "merge=" << Merge;
    X.S->pop();
  }
}

TEST(GenVc, DagVcIsSmallerThanTreeVc) {
  SolvedFig6 Tree(false), Dag(true);
  EXPECT_EQ(Tree.Vc->numInlined(), 3u);
  EXPECT_EQ(Dag.Vc->numInlined(), 2u);
  // Fewer constants minted in the merged version.
  EXPECT_LT(Dag.F.Arena.numConsts(), Tree.F.Arena.numConsts());
}

TEST(GenVc, OpenEdgesAreHavocSummaries) {
  // With both foo edges left open, r is unconstrained: the callee is
  // over-approximated by havoc (this is Proc'(n) of Section 3.2).
  Fixture F(Fig6);
  auto S = createZ3Solver(F.Arena);
  VcContext Vc(F.Ctx, F.Cfg, F.Arena, [&](TermRef T) { S->assertTerm(T); });
  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  S->assertTerm(Vc.node(Root).Control);
  TermArena &A = F.Arena;
  S->assertTerm(A.mkEq(Vc.node(Root).In[1], A.intLit(1)));
  S->assertTerm(A.mkEq(Vc.node(Root).In[2], A.intLit(1)));
  S->assertTerm(A.mkEq(Vc.node(Root).Out[1], A.intLit(12345)));
  EXPECT_EQ(S->check(), SolveResult::Sat);
  // But blocking both open edges kills every execution (both branches call
  // foo, and Control[edge] = BS of the call label).
  std::vector<TermRef> Blocked;
  for (EdgeId E : Vc.openEdges())
    Blocked.push_back(A.mkNot(Vc.edge(E).Control));
  EXPECT_EQ(S->check(Blocked, 0), SolveResult::Unsat);
}

TEST(GenVc, SmtLibDumpIsWellFormed) {
  Fixture F(Fig6);
  VcContext Vc(F.Ctx, F.Cfg, F.Arena);
  NodeId Root = Vc.genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  (void)Root;
  std::string Script = printScript(F.Arena, Vc.allClauses());
  EXPECT_NE(Script.find("(set-logic ALL)"), std::string::npos);
  EXPECT_NE(Script.find("(assert"), std::string::npos);
  // Balanced parentheses.
  int Depth = 0;
  for (char C : Script) {
    if (C == '(')
      ++Depth;
    if (C == ')')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(GenVc, HavocLeavesVariableUnconstrained) {
  Fixture F(R"(
    var g: int;
    var h: int;
    procedure main() {
      g := 1;
      havoc g;
      h := 2;
    }
  )");
  auto S = createZ3Solver(F.Arena);
  VcContext Vc(F.Ctx, F.Cfg, F.Arena, [&](TermRef T) { S->assertTerm(T); });
  NodeId Root = Vc.genPvc(0);
  S->assertTerm(Vc.node(Root).Control);
  TermArena &A = F.Arena;
  // g can end at any value; h must be 2.
  S->push();
  S->assertTerm(A.mkEq(Vc.node(Root).Out[0], A.intLit(-77)));
  EXPECT_EQ(S->check(), SolveResult::Sat);
  S->pop();
  S->assertTerm(A.mkNot(A.mkEq(Vc.node(Root).Out[1], A.intLit(2))));
  EXPECT_EQ(S->check(), SolveResult::Unsat);
}
