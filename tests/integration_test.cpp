//===- integration_test.cpp - Cross-module differential properties ----------===//
//
// The heavyweight guarantees:
//  1. Every engine/strategy combination agrees on the verdict (DI is sound
//     and complete relative to tree inlining — Theorem 1).
//  2. The concrete evaluator and the engines agree: a concretely failing
//     run within the bound forces Bug; a Safe verdict forbids failing runs.
//
//===----------------------------------------------------------------------===//

#include "ast/Eval.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "workload/Chain.h"
#include "workload/RandomProg.h"
#include "workload/SdvGen.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

VerifierOptions optsFor(MergeStrategyKind Kind, unsigned Bound) {
  VerifierOptions Opts;
  Opts.Bound = Bound;
  Opts.Engine.Strategy.Kind = Kind;
  Opts.Engine.Strategy.Seed = 17;
  Opts.Engine.TimeoutSeconds = 90;
  return Opts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine agreement sweep
//===----------------------------------------------------------------------===//

class EngineAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreement, AllStrategiesSameVerdict) {
  RandomProgParams Params;
  Params.Seed = GetParam();
  Params.NumProcs = 5;
  Params.MaxStmts = 4;
  Params.AllowLoops = GetParam() % 2 == 0;
  Params.AllowArrays = GetParam() % 3 == 0;
  Params.AllowBitvectors = GetParam() % 5 == 0;

  std::optional<Verdict> Reference;
  for (MergeStrategyKind Kind :
       {MergeStrategyKind::None, MergeStrategyKind::First,
        MergeStrategyKind::MaxC, MergeStrategyKind::RandomPick,
        MergeStrategyKind::Opt}) {
    AstContext Ctx;
    Program P = makeRandomProgram(Ctx, Params);
    auto R = verifyProgram(Ctx, P, Ctx.sym("main"), optsFor(Kind, 3));
    ASSERT_TRUE(R.Result.Outcome == Verdict::Bug ||
                R.Result.Outcome == Verdict::Safe)
        << "unexpected verdict " << verdictName(R.Result.Outcome)
        << " with " << strategyName(Kind) << " on seed " << GetParam();
    if (!Reference)
      Reference = R.Result.Outcome;
    EXPECT_EQ(R.Result.Outcome, *Reference)
        << strategyName(Kind) << " disagrees on seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         ::testing::Range<uint64_t>(1, 26));

//===----------------------------------------------------------------------===//
// Engine vs. eager agreement (smaller sweep: eager VCs grow fast)
//===----------------------------------------------------------------------===//

class EagerAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EagerAgreement, EagerMatchesStratified) {
  RandomProgParams Params;
  Params.Seed = GetParam() + 1000;
  Params.NumProcs = 4;
  Params.MaxStmts = 3;

  AstContext Ctx;
  Program P = makeRandomProgram(Ctx, Params);
  auto Lazy = verifyProgram(Ctx, P, Ctx.sym("main"),
                            optsFor(MergeStrategyKind::First, 2));
  VerifierOptions EagerOpts = optsFor(MergeStrategyKind::None, 2);
  EagerOpts.Engine.Eager = true;
  AstContext Ctx2;
  Program P2 = makeRandomProgram(Ctx2, Params);
  auto Eager = verifyProgram(Ctx2, P2, Ctx2.sym("main"), EagerOpts);
  EXPECT_EQ(Lazy.Result.Outcome, Eager.Result.Outcome)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EagerAgreement,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Evaluator vs. engine
//===----------------------------------------------------------------------===//

class OracleAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleAgreement, ConcreteBugForcesEngineBug) {
  RandomProgParams Params;
  Params.Seed = GetParam() + 500;
  Params.NumProcs = 5;
  Params.MaxStmts = 4;
  Params.AllowLoops = true;
  Params.AllowBitvectors = GetParam() % 4 == 0;
  Params.AssertChance = 70;

  AstContext Ctx;
  Program P = makeRandomProgram(Ctx, Params);

  // Fuzz the oracle. Track the bound profile of any failing run.
  bool FoundConcreteBug = false;
  unsigned NeededBound = 1;
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    EvalOptions EOpts;
    EOpts.Seed = Seed;
    EvalResult E = evaluate(Ctx, P, Ctx.sym("main"), EOpts);
    if (E.Outcome == EvalOutcome::AssertFailed) {
      FoundConcreteBug = true;
      unsigned B = std::max(E.MaxLoopIterations, E.MaxRecursionDepth);
      NeededBound = std::max(NeededBound, B);
    }
  }

  auto R = verifyProgram(Ctx, P, Ctx.sym("main"),
                         optsFor(MergeStrategyKind::First,
                                 std::max(NeededBound, 2u)));
  ASSERT_TRUE(R.Result.Outcome == Verdict::Bug ||
              R.Result.Outcome == Verdict::Safe);
  if (FoundConcreteBug) {
    // Completeness within the bound: the engine must find it.
    EXPECT_EQ(R.Result.Outcome, Verdict::Bug) << "seed " << GetParam();
  } else if (R.Result.Outcome == Verdict::Safe) {
    // Soundness spot check: no oracle run may contradict Safe.
    for (uint64_t Seed = 64; Seed < 96; ++Seed) {
      EvalOptions EOpts;
      EOpts.Seed = Seed;
      EvalResult E = evaluate(Ctx, P, Ctx.sym("main"), EOpts);
      EXPECT_NE(E.Outcome, EvalOutcome::AssertFailed)
          << "engine said Safe but oracle seed " << Seed << " fails";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement,
                         ::testing::Range<uint64_t>(1, 26));

//===----------------------------------------------------------------------===//
// +Inv must never change a verdict
//===----------------------------------------------------------------------===//

class InvariantSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantSoundness, VerdictStableUnderInjection) {
  RandomProgParams Params;
  Params.Seed = GetParam() + 2000;
  Params.NumProcs = 5;
  Params.MaxStmts = 4;

  AstContext Ctx;
  Program P = makeRandomProgram(Ctx, Params);
  auto Plain = verifyProgram(Ctx, P, Ctx.sym("main"),
                             optsFor(MergeStrategyKind::First, 2));
  VerifierOptions InvOpts = optsFor(MergeStrategyKind::First, 2);
  InvOpts.UseInvariants = true;
  AstContext Ctx2;
  Program P2 = makeRandomProgram(Ctx2, Params);
  auto WithInv = verifyProgram(Ctx2, P2, Ctx2.sym("main"), InvOpts);
  EXPECT_EQ(Plain.Result.Outcome, WithInv.Result.Outcome)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSoundness,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// End-to-end on a realistic parsed program
//===----------------------------------------------------------------------===//

TEST(EndToEnd, AccountStateMachine) {
  const char *Src = R"(
    var balance: int;
    var opened: bool;

    procedure open_account() {
      assert !opened;
      opened := true;
      balance := 0;
    }

    procedure close_account() {
      assert opened;
      opened := false;
    }

    procedure deposit(amount: int) {
      assert opened;
      assume amount > 0;
      balance := balance + amount;
    }

    procedure withdraw(amount: int) returns (ok: bool) {
      assert opened;
      if (amount > 0 && amount <= balance) {
        balance := balance - amount;
        ok := true;
      } else {
        ok := false;
      }
    }

    procedure main() {
      var a: int;
      var ok: bool;
      opened := false;
      call open_account();
      havoc a;
      if (*) { call deposit(5); } else { call deposit(50); }
      call ok := withdraw(a);
      assert balance >= 0;
      call close_account();
      assert !opened;
    }
  )";
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  ASSERT_TRUE(P) << Diags.str();
  auto R = verifyProgram(Ctx, *P, Ctx.sym("main"),
                         optsFor(MergeStrategyKind::First, 2));
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
}

TEST(EndToEnd, AccountDoubleOpenBug) {
  const char *Src = R"(
    var opened: bool;
    procedure open_account() { assert !opened; opened := true; }
    procedure handler() { call open_account(); }
    procedure main() {
      opened := false;
      call handler();
      if (*) { call handler(); }
    }
  )";
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  ASSERT_TRUE(P) << Diags.str();
  auto R = verifyProgram(Ctx, *P, Ctx.sym("main"),
                         optsFor(MergeStrategyKind::First, 2));
  EXPECT_EQ(R.Result.Outcome, Verdict::Bug);
  EXPECT_NE(R.TraceText.find("open_account"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Prepass differential: the sliced verdict must equal the unsliced verdict
//===----------------------------------------------------------------------===//

namespace {

void expectPrepassAgrees(AstContext &Ctx, const Program &P, unsigned Bound,
                         const std::string &What,
                         const std::string &Passes = "") {
  VerifierOptions On = optsFor(MergeStrategyKind::First, Bound);
  // Re-check the Fig. 7 structural invariants after every pass: any pipeline
  // configuration that corrupts the label form fails here, not downstream.
  On.Prepass.VerifyEach = true;
  On.Prepass.Passes = Passes;
  VerifierOptions Off = On;
  Off.UsePrepass = false;
  auto ROn = verifyProgram(Ctx, P, Ctx.sym("main"), On);
  auto ROff = verifyProgram(Ctx, P, Ctx.sym("main"), Off);
  ASSERT_TRUE(ROn.Prepass.ok())
      << "pipeline aborted on " << What << ": "
      << (ROn.Prepass.PipelineErrors.empty()
              ? std::string("<no diagnostics>")
              : ROn.Prepass.PipelineErrors.front());
  ASSERT_TRUE(ROff.Result.Outcome == Verdict::Safe ||
              ROff.Result.Outcome == Verdict::Bug)
      << "unexpected baseline verdict on " << What;
  EXPECT_EQ(ROn.Result.Outcome, ROff.Result.Outcome)
      << "prepass changed the verdict on " << What;
  // The prepass never grows the program, and a Bug verdict still comes with
  // a feasible rendered counterexample.
  EXPECT_LE(ROn.NumLabelsSolved, ROn.NumLabels);
  EXPECT_LE(ROn.NumProcsSolved, ROn.NumProcs);
  if (ROn.Result.Outcome == Verdict::Bug) {
    EXPECT_FALSE(ROn.TraceText.empty()) << What;
  }
}

} // namespace

class PrepassDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrepassDifferential, RandomProgramsAgree) {
  RandomProgParams Params;
  Params.Seed = GetParam() * 7919 + 3;
  Params.NumProcs = 5;
  Params.MaxStmts = 4;
  Params.AllowLoops = GetParam() % 2 == 0;
  Params.AllowArrays = GetParam() % 3 == 0;
  Params.AllowBitvectors = GetParam() % 5 == 0;

  AstContext Ctx;
  Program P = makeRandomProgram(Ctx, Params);
  expectPrepassAgrees(Ctx, P, 3, "random seed " + std::to_string(GetParam()));
}

// 150 random instances; with the SDV corpus and the chain family below the
// differential sweep covers 200+ generated programs.
INSTANTIATE_TEST_SUITE_P(Seeds, PrepassDifferential,
                         ::testing::Range<uint64_t>(1, 151));

TEST(PrepassDifferentialSdv, CorpusAgrees) {
  // Cap the corpus shape: the no-prepass baseline pays for the full utility
  // tree (which doubles per UtilDepth layer), and the largest stock
  // instances exceed the solver timeout. The capped instances still
  // exercise dispatch arms, shared utilities, and injected bugs.
  for (SdvInstance I : makeSdvCorpus(42, 40, 128)) {
    I.Params.NumHandlers = std::min(I.Params.NumHandlers, 4u);
    I.Params.NumUtils = std::min(I.Params.NumUtils, 5u);
    I.Params.UtilDepth = std::min(I.Params.UtilDepth, 3u);
    I.Params.CallsPerHandler = std::min(I.Params.CallsPerHandler, 2u);
    AstContext Ctx;
    Program P = makeSdvProgram(Ctx, I.Params);
    expectPrepassAgrees(Ctx, P, 2, I.Name);
  }
}

TEST(PrepassDifferentialChain, ChainFamilyAgrees) {
  for (unsigned N = 1; N <= 12; ++N)
    for (bool Buggy : {false, true}) {
      AstContext Ctx;
      Program P = makeChainProgram(Ctx, N, Buggy);
      expectPrepassAgrees(Ctx, P, 2,
                          "chain N=" + std::to_string(N) +
                              (Buggy ? " buggy" : " safe"));
    }
}

TEST(PrepassDifferentialPipelines, PermutationsAgreeUnderVerifyEach) {
  // Every pass is individually verdict-preserving, so any ordering (and any
  // repetition) must agree with the no-prepass baseline; --verify-each keeps
  // each step honest about the label-form invariants along the way.
  const char *Specs[] = {
      "gvn,assumeelim,splice,constprop,slice,deadproc", // gvn before constprop
      "slice,deadproc,constprop,gvn,assumeelim,splice", // slice first
      "assumeelim,gvn,assumeelim",                      // elim around gvn
      "constprop,constprop,gvn,gvn,splice,splice",      // idempotence
      "deadproc,splice",                                // reductions only
      "gvn",                                            // a single pass
  };
  for (const char *Spec : Specs) {
    for (unsigned N : {1u, 4u, 8u})
      for (bool Buggy : {false, true}) {
        AstContext Ctx;
        Program P = makeChainProgram(Ctx, N, Buggy);
        expectPrepassAgrees(Ctx, P, 2,
                            "chain N=" + std::to_string(N) +
                                (Buggy ? " buggy" : " safe") + " passes=" +
                                Spec,
                            Spec);
      }
    for (uint64_t Seed : {11u, 29u, 53u}) {
      RandomProgParams Params;
      Params.Seed = Seed * 7919 + 3;
      Params.NumProcs = 4;
      Params.MaxStmts = 4;
      Params.AllowLoops = Seed % 2 == 0;
      Params.AllowArrays = Seed % 3 == 0;
      AstContext Ctx;
      Program P = makeRandomProgram(Ctx, Params);
      expectPrepassAgrees(Ctx, P, 3,
                          "random seed " + std::to_string(Seed) +
                              " passes=" + Spec,
                          Spec);
    }
  }
}
