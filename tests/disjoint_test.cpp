//===- disjoint_test.cpp - Disj_blk, Lemma 1, brute-force oracle ------------===//

#include "cfg/Lower.h"
#include "core/Disjoint.h"
#include "parser/Parser.h"
#include "workload/RandomProg.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

struct Fixture {
  AstContext Ctx;
  CfgProgram Cfg;
};

std::unique_ptr<Fixture> lower(const char *Src) {
  auto F = std::make_unique<Fixture>();
  DiagEngine Diags;
  auto P = parseAndCheck(Src, F->Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  F->Cfg = lowerToCfg(F->Ctx, *P);
  return F;
}

/// Index-th call label inside procedure \p ProcName calling \p CalleeName.
LabelId callLabel(Fixture &F, const char *ProcName, const char *CalleeName,
                  unsigned Index = 0) {
  ProcId P = F.Cfg.findProc(F.Ctx.sym(ProcName));
  ProcId Callee = F.Cfg.findProc(F.Ctx.sym(CalleeName));
  unsigned Seen = 0;
  for (LabelId L : F.Cfg.proc(P).Labels) {
    const CfgStmt &S = F.Cfg.label(L).Stmt;
    if (S.Kind == CfgStmtKind::Call && S.Callee == Callee) {
      if (Seen == Index)
        return L;
      ++Seen;
    }
  }
  ADD_FAILURE() << "call label not found";
  return InvalidLabel;
}

LabelId entryOf(Fixture &F, const char *ProcName) {
  return F.Cfg.proc(F.Cfg.findProc(F.Ctx.sym(ProcName))).Entry;
}

} // namespace

TEST(DisjBlk, SequentialCallsAreNotDisjoint) {
  auto F = lower(R"(
    procedure f() { }
    procedure main() { call f(); call f(); }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  LabelId C1 = callLabel(*F, "main", "f", 0);
  LabelId C2 = callLabel(*F, "main", "f", 1);
  EXPECT_TRUE(D.reaches(C1, C2));
  EXPECT_FALSE(D.reaches(C2, C1));
  EXPECT_FALSE(D.disjointLabels(C1, C2));
}

TEST(DisjBlk, BranchArmsAreDisjoint) {
  auto F = lower(R"(
    procedure f() { }
    procedure main() { if (*) { call f(); } else { call f(); } }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  EXPECT_TRUE(D.disjointLabels(callLabel(*F, "main", "f", 0),
                               callLabel(*F, "main", "f", 1)));
}

TEST(DisjBlk, ReflexiveReachability) {
  auto F = lower(R"(
    procedure f() { }
    procedure main() { call f(); }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  LabelId C = callLabel(*F, "main", "f");
  EXPECT_TRUE(D.reaches(C, C));
  EXPECT_FALSE(D.disjointLabels(C, C));
}

TEST(DisjBlk, SwitchArmsPairwiseDisjoint) {
  auto F = lower(R"(
    var x: int;
    procedure f() { }
    procedure main() {
      if (x == 0) { call f(); }
      else if (x == 1) { call f(); }
      else { call f(); }
    }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  LabelId C0 = callLabel(*F, "main", "f", 0);
  LabelId C1 = callLabel(*F, "main", "f", 1);
  LabelId C2 = callLabel(*F, "main", "f", 2);
  EXPECT_TRUE(D.disjointLabels(C0, C1));
  EXPECT_TRUE(D.disjointLabels(C0, C2));
  EXPECT_TRUE(D.disjointLabels(C1, C2));
}

TEST(DisjBlk, CallBeforeBranchReachesBothArms) {
  auto F = lower(R"(
    procedure f() { }
    procedure main() {
      call f();
      if (*) { call f(); } else { call f(); }
    }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  LabelId Pre = callLabel(*F, "main", "f", 0);
  EXPECT_FALSE(D.disjointLabels(Pre, callLabel(*F, "main", "f", 1)));
  EXPECT_FALSE(D.disjointLabels(Pre, callLabel(*F, "main", "f", 2)));
}

TEST(DisjointConfigs, PrefixRelatedNeverDisjoint) {
  auto F = lower(R"(
    procedure g() { }
    procedure f() { call g(); }
    procedure main() { call f(); }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  LabelId CF = callLabel(*F, "main", "f");
  LabelId CG = callLabel(*F, "f", "g");
  std::vector<LabelId> CfgF = {entryOf(*F, "f"), CF};
  std::vector<LabelId> CfgG = {entryOf(*F, "g"), CG, CF};
  EXPECT_FALSE(D.disjointConfigs(CfgF, CfgG));
  EXPECT_FALSE(D.disjointConfigs(CfgG, CfgF));
  EXPECT_FALSE(D.disjointConfigs(CfgF, CfgF));
}

TEST(DisjointConfigs, DivergingBranchesDisjoint) {
  auto F = lower(R"(
    procedure g() { }
    procedure f() { call g(); }
    procedure e() { call g(); }
    procedure main() { if (*) { call f(); } else { call e(); } }
  )");
  ASSERT_TRUE(F);
  DisjointAnalysis D(F->Cfg);
  std::vector<LabelId> Via1 = {entryOf(*F, "g"), callLabel(*F, "f", "g"),
                               callLabel(*F, "main", "f")};
  std::vector<LabelId> Via2 = {entryOf(*F, "g"), callLabel(*F, "e", "g"),
                               callLabel(*F, "main", "e")};
  EXPECT_TRUE(D.disjointConfigs(Via1, Via2));
  EXPECT_TRUE(bruteForceDisjoint(F->Cfg, Via1, Via2, 100000));
}

TEST(BruteForce, SequentialConfigsReachable) {
  auto F = lower(R"(
    procedure g() { }
    procedure main() { call g(); call g(); }
  )");
  ASSERT_TRUE(F);
  std::vector<LabelId> First = {entryOf(*F, "g"),
                                callLabel(*F, "main", "g", 0)};
  std::vector<LabelId> Second = {entryOf(*F, "g"),
                                 callLabel(*F, "main", "g", 1)};
  EXPECT_FALSE(bruteForceDisjoint(F->Cfg, First, Second, 100000));
  DisjointAnalysis D(F->Cfg);
  EXPECT_FALSE(D.disjointConfigs(First, Second));
}

//===----------------------------------------------------------------------===//
// Property: Lemma 1 agrees with the pushdown oracle (Section 3.3's
// precision remark: for control-structure disjointness, both are exact)
//===----------------------------------------------------------------------===//

namespace {

/// All entry-rooted *valid* configurations of the program, capped: every
/// frame's label must be reachable from its procedure's entry (Lemma 1 and
/// the prefix rule are exact only over configurations that can actually
/// arise). A configuration is [label-in-current-proc, call-site, ...].
void enumerateConfigs(const CfgProgram &Cfg, const DisjointAnalysis &D,
                      ProcId Entry, std::vector<std::vector<LabelId>> &Out,
                      size_t MaxCount) {
  auto Live = [&](ProcId P, LabelId L) {
    return D.reaches(Cfg.proc(P).Entry, L);
  };
  std::vector<std::vector<LabelId>> Work;
  for (LabelId L : Cfg.proc(Entry).Labels)
    if (Live(Entry, L))
      Work.push_back({L});
  while (!Work.empty() && Out.size() < MaxCount) {
    std::vector<LabelId> C = std::move(Work.back());
    Work.pop_back();
    Out.push_back(C);
    const CfgLabel &Top = Cfg.label(C.front());
    if (Top.Stmt.Kind == CfgStmtKind::Call) {
      for (LabelId L : Cfg.proc(Top.Stmt.Callee).Labels) {
        if (!Live(Top.Stmt.Callee, L))
          continue;
        std::vector<LabelId> Next;
        Next.push_back(L);
        Next.insert(Next.end(), C.begin(), C.end());
        Work.push_back(std::move(Next));
      }
    }
  }
}

} // namespace

class Lemma1Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma1Property, AgreesWithBruteForceOnRandomPrograms) {
  AstContext Ctx;
  RandomProgParams Params;
  Params.Seed = GetParam();
  Params.NumProcs = 4;
  Params.MaxStmts = 3;
  Params.MaxNesting = 1;
  Program P = makeRandomProgram(Ctx, Params);
  CfgProgram Cfg = lowerToCfg(Ctx, P);
  ASSERT_TRUE(Cfg.isHierarchical());
  DisjointAnalysis D(Cfg);

  std::vector<std::vector<LabelId>> Configs;
  enumerateConfigs(Cfg, D, Cfg.findProc(Ctx.sym("main")), Configs, 40);

  for (size_t I = 0; I < Configs.size(); ++I) {
    for (size_t J = I; J < Configs.size(); ++J) {
      bool Fast = D.disjointConfigs(Configs[I], Configs[J]);
      bool Slow = bruteForceDisjoint(Cfg, Configs[I], Configs[J], 500000);
      EXPECT_EQ(Fast, Slow) << "configs " << I << " vs " << J << " (seed "
                            << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Range<uint64_t>(1, 13));
