//===- cfg_test.cpp - Unit tests for src/cfg --------------------------------===//

#include "cfg/Cfg.h"
#include "cfg/Lower.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace rmt;

namespace {

struct Lowered {
  AstContext Ctx;
  CfgProgram Cfg;
};

/// Parses, bounds (if needed) and lowers a source program.
std::unique_ptr<Lowered> lower(const char *Src, unsigned Bound = 0) {
  auto Out = std::make_unique<Lowered>();
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Out->Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  if (Bound) {
    BoundedInstance Inst =
        prepareBounded(Out->Ctx, *P, Out->Ctx.sym("main"), Bound);
    Out->Cfg = lowerToCfg(Out->Ctx, Inst.Prog);
  } else {
    Out->Cfg = lowerToCfg(Out->Ctx, *P);
  }
  return Out;
}

} // namespace

TEST(CfgLower, StraightLineChains) {
  auto L = lower(R"(
    var g: int;
    procedure main() {
      g := 1;
      g := g + 1;
      assume g == 2;
    }
  )");
  ASSERT_TRUE(L);
  ASSERT_EQ(L->Cfg.Procs.size(), 1u);
  const CfgProc &Main = L->Cfg.proc(0);
  // entry-skip + three statements.
  EXPECT_EQ(Main.Labels.size(), 4u);
  // Every label except the last has exactly one successor.
  unsigned Exits = 0;
  for (LabelId Lbl : Main.Labels) {
    if (L->Cfg.label(Lbl).Targets.empty())
      ++Exits;
    else
      EXPECT_EQ(L->Cfg.label(Lbl).Targets.size(), 1u);
  }
  EXPECT_EQ(Exits, 1u);
}

TEST(CfgLower, IfProducesTwoGuardedArms) {
  auto L = lower(R"(
    procedure main() {
      var x: int;
      if (x > 0) { x := 1; } else { x := 2; }
      x := 3;
    }
  )");
  ASSERT_TRUE(L);
  const CfgProc &Main = L->Cfg.proc(0);
  LabelId Entry = Main.Entry;
  ASSERT_EQ(L->Cfg.label(Entry).Targets.size(), 2u);
  LabelId ThenL = L->Cfg.label(Entry).Targets[0];
  LabelId ElseL = L->Cfg.label(Entry).Targets[1];
  EXPECT_EQ(L->Cfg.label(ThenL).Stmt.Kind, CfgStmtKind::Assume);
  EXPECT_EQ(L->Cfg.label(ElseL).Stmt.Kind, CfgStmtKind::Assume);
  // Both arms converge on the trailing assignment.
  LabelId ThenAssign = L->Cfg.label(ThenL).Targets[0];
  LabelId ElseAssign = L->Cfg.label(ElseL).Targets[0];
  EXPECT_EQ(L->Cfg.label(ThenAssign).Targets[0],
            L->Cfg.label(ElseAssign).Targets[0]);
}

TEST(CfgLower, ReturnHasNoSuccessors) {
  auto L = lower(R"(
    procedure main() {
      var x: int;
      if (x > 0) { return; }
      x := 1;
    }
  )");
  ASSERT_TRUE(L);
  unsigned EmptyTargets = 0;
  for (const CfgLabel &Lbl : L->Cfg.Labels)
    if (Lbl.Targets.empty())
      ++EmptyTargets;
  // The return label and the fall-off-end label.
  EXPECT_EQ(EmptyTargets, 2u);
}

TEST(CfgLower, CallCarriesArgsAndResults) {
  auto L = lower(R"(
    procedure f(a: int, b: int) returns (r: int) { r := a + b; }
    procedure main() {
      var x: int;
      call x := f(1, x + 2);
    }
  )");
  ASSERT_TRUE(L);
  ProcId MainId = L->Cfg.findProc(L->Ctx.sym("main"));
  ASSERT_NE(MainId, InvalidProc);
  const CfgLabel *Call = nullptr;
  for (LabelId Lbl : L->Cfg.proc(MainId).Labels)
    if (L->Cfg.label(Lbl).Stmt.Kind == CfgStmtKind::Call)
      Call = &L->Cfg.label(Lbl);
  ASSERT_TRUE(Call);
  EXPECT_EQ(Call->Stmt.Args.size(), 2u);
  EXPECT_EQ(Call->Stmt.Vars.size(), 1u);
  EXPECT_EQ(L->Cfg.proc(Call->Stmt.Callee).Name, L->Ctx.sym("f"));
}

TEST(CfgLower, VarTypesCoverScope) {
  auto L = lower(R"(
    var g: int;
    procedure f(a: bool) returns (r: int) {
      var t: [int]int;
      r := g;
    }
    procedure main() { }
  )");
  ASSERT_TRUE(L);
  const CfgProc &F = L->Cfg.proc(L->Cfg.findProc(L->Ctx.sym("f")));
  EXPECT_TRUE(F.typeOf(L->Ctx.sym("g"))->isInt());
  EXPECT_TRUE(F.typeOf(L->Ctx.sym("a"))->isBool());
  EXPECT_TRUE(F.typeOf(L->Ctx.sym("r"))->isInt());
  EXPECT_TRUE(F.typeOf(L->Ctx.sym("t"))->isArray());
  EXPECT_EQ(F.typeOf(L->Ctx.sym("nothere")), nullptr);
}

TEST(CfgProgram, AcyclicityChecks) {
  auto L = lower(R"(
    procedure leaf() { }
    procedure mid() { call leaf(); }
    procedure main() { call mid(); call leaf(); }
  )");
  ASSERT_TRUE(L);
  EXPECT_TRUE(L->Cfg.hasAcyclicFlow());
  EXPECT_TRUE(L->Cfg.hasAcyclicCallGraph());
  EXPECT_TRUE(L->Cfg.isHierarchical());
}

TEST(CfgProgram, RecursionDetectedInCallGraph) {
  // Lower *without* bounding: recursion remains.
  auto L = lower(R"(
    procedure rec() { call rec(); }
    procedure main() { call rec(); }
  )");
  ASSERT_TRUE(L);
  EXPECT_TRUE(L->Cfg.hasAcyclicFlow());
  EXPECT_FALSE(L->Cfg.hasAcyclicCallGraph());
  EXPECT_FALSE(L->Cfg.isHierarchical());
}

TEST(CfgProgram, TopoOrderRespectsEdges) {
  auto L = lower(R"(
    procedure main() {
      var x: int;
      if (*) { x := 1; } else { x := 2; }
      x := 3;
      if (x > 0) { x := 4; }
    }
  )");
  ASSERT_TRUE(L);
  std::vector<LabelId> Order = L->Cfg.topoOrder(0);
  EXPECT_EQ(Order.size(), L->Cfg.proc(0).Labels.size());
  std::vector<size_t> Pos(L->Cfg.Labels.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Pos[Order[I]] = I;
  for (LabelId Lbl : L->Cfg.proc(0).Labels)
    for (LabelId T : L->Cfg.label(Lbl).Targets)
      EXPECT_LT(Pos[Lbl], Pos[T]);
}

TEST(CfgProgram, BottomUpOrderCalleesFirst) {
  auto L = lower(R"(
    procedure c() { }
    procedure b() { call c(); }
    procedure a() { call b(); call c(); }
    procedure main() { call a(); }
  )");
  ASSERT_TRUE(L);
  std::vector<ProcId> Order = L->Cfg.bottomUpProcOrder();
  EXPECT_EQ(Order.size(), 4u);
  std::vector<size_t> Pos(Order.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Pos[Order[I]] = I;
  for (ProcId P = 0; P < L->Cfg.Procs.size(); ++P)
    for (ProcId Callee : L->Cfg.calleesOf(P))
      EXPECT_LT(Pos[Callee], Pos[P]);
}

TEST(CfgProgram, CalleesAndCallSiteCounts) {
  auto L = lower(R"(
    procedure f() { }
    procedure main() { call f(); call f(); if (*) { call f(); } }
  )");
  ASSERT_TRUE(L);
  ProcId MainId = L->Cfg.findProc(L->Ctx.sym("main"));
  EXPECT_EQ(L->Cfg.numCallSites(MainId), 3u);
  EXPECT_EQ(L->Cfg.calleesOf(MainId).size(), 3u);
}

TEST(CfgProgram, DebugPrinting) {
  auto L = lower(R"(
    var g: int;
    procedure f() { g := 1; }
    procedure main() { call f(); }
  )");
  ASSERT_TRUE(L);
  std::string S = L->Cfg.str(L->Ctx);
  EXPECT_NE(S.find("proc main"), std::string::npos);
  EXPECT_NE(S.find("call f()"), std::string::npos);
  EXPECT_NE(S.find("<ret>"), std::string::npos);
}

TEST(CfgLower, BoundedProgramIsHierarchical) {
  auto L = lower(R"(
    var g: int;
    procedure rec(d: int) { if (d > 0) { call rec(d - 1); } }
    procedure main() {
      var i: int;
      i := 0;
      while (i < 3) { i := i + 1; call rec(2); }
      assert i <= 3;
    }
  )",
                 /*Bound=*/3);
  ASSERT_TRUE(L);
  EXPECT_TRUE(L->Cfg.isHierarchical());
}
