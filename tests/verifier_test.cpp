//===- verifier_test.cpp - Facade: iterative deepening, DOT export ----------===//

#include "cfg/Lower.h"
#include "core/Consistency.h"
#include "core/DotExport.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

std::optional<Program> parseOk(const char *Src, AstContext &Ctx) {
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

const char *DeepBugSrc = R"(
  var total: int;
  procedure main() {
    var i: int;
    i := 0;
    total := 0;
    while (i < 5) { i := i + 1; total := total + 2; }
    assert total != 10;   // needs 5 iterations to refute
  }
)";

} // namespace

//===----------------------------------------------------------------------===//
// Iterative deepening
//===----------------------------------------------------------------------===//

TEST(Deepening, EscalatesToTheBugBound) {
  AstContext Ctx;
  auto P = parseOk(DeepBugSrc, Ctx);
  ASSERT_TRUE(P);
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.TimeoutSeconds = 120;
  DeepeningResult R =
      verifyIterativeDeepening(Ctx, *P, Ctx.sym("main"), Opts, 16);
  EXPECT_EQ(R.Last.Result.Outcome, Verdict::Bug);
  // Ladder 1, 2, 4, 8: the bug needs >= 5 iterations, so it lands at 8.
  std::vector<unsigned> Expected = {1, 2, 4, 8};
  EXPECT_EQ(R.BoundsTried, Expected);
  EXPECT_EQ(R.ReachedBound, 8u);
}

TEST(Deepening, SafeUpToMaxBound) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() {
      var i: int;
      i := 0;
      g := 0;
      while (i < 3) { i := i + 1; g := g + 1; }
      assert g <= 3;
    }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  VerifierOptions Opts;
  Opts.Engine.TimeoutSeconds = 120;
  DeepeningResult R =
      verifyIterativeDeepening(Ctx, *P, Ctx.sym("main"), Opts, 6);
  EXPECT_EQ(R.Last.Result.Outcome, Verdict::Safe);
  EXPECT_EQ(R.ReachedBound, 6u);
  std::vector<unsigned> Expected = {1, 2, 4, 6}; // clamped to MaxBound
  EXPECT_EQ(R.BoundsTried, Expected);
}

TEST(Deepening, SharedBudgetTimesOut) {
  AstContext Ctx;
  auto P = parseOk(DeepBugSrc, Ctx);
  ASSERT_TRUE(P);
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::None;
  Opts.Engine.TimeoutSeconds = 0.05;
  Stopwatch W;
  DeepeningResult R =
      verifyIterativeDeepening(Ctx, *P, Ctx.sym("main"), Opts, 64);
  EXPECT_EQ(R.Last.Result.Outcome, Verdict::Timeout);
  EXPECT_LT(W.seconds(), 30.0);
}

//===----------------------------------------------------------------------===//
// DOT export
//===----------------------------------------------------------------------===//

namespace {

/// Fully DI-inlines a program and returns the VcContext pieces needed for
/// rendering.
struct DagFixture {
  AstContext Ctx;
  CfgProgram Cfg;
  TermArena Arena;
  std::unique_ptr<VcContext> Vc;

  explicit DagFixture(const char *Src) {
    DiagEngine Diags;
    auto P = parseAndCheck(Src, Ctx, Diags);
    EXPECT_TRUE(P) << Diags.str();
    BoundedInstance B = prepareBounded(Ctx, *P, Ctx.sym("main"), 1);
    Cfg = lowerToCfg(Ctx, B.Prog);
    Vc = std::make_unique<VcContext>(Ctx, Cfg, Arena);
  }

  void inlineAll() {
    DisjointAnalysis Disj(Cfg);
    ConsistencyChecker Check(*Vc, Disj);
    NodeId Root = Vc->genPvc(Cfg.findProc(Ctx.sym("main")));
    Check.onNewNode(Root);
    while (!Vc->openEdges().empty()) {
      EdgeId E = Vc->openEdges().front();
      NodeId Pick = InvalidNode;
      for (NodeId N : Vc->instancesOf(Vc->edge(E).Callee))
        if (Check.canBind(E, N)) {
          Pick = N;
          break;
        }
      if (Pick == InvalidNode) {
        Pick = Vc->genPvc(Vc->edge(E).Callee);
        Check.onNewNode(Pick);
      }
      Vc->bindEdge(E, Pick);
      Check.onBind(E, Pick);
    }
  }
};

const char *Fig1Src = R"(
  var g: int;
  procedure foo() { g := g + 1; }
  procedure bar() { call foo(); }
  procedure baz() { call foo(); }
  procedure main() {
    g := 0;
    if (*) { call bar(); } else { call baz(); }
    assert g == 1;
  }
)";

} // namespace

TEST(DotExport, InliningDagShowsMergedFoo) {
  DagFixture F(Fig1Src);
  F.inlineAll();
  std::string Dot = inliningDagToDot(F.Ctx, *F.Vc);
  EXPECT_NE(Dot.find("digraph inlining_dag"), std::string::npos);
  EXPECT_NE(Dot.find("foo"), std::string::npos);
  // The shared foo instance (two parents) is highlighted.
  EXPECT_NE(Dot.find("fillcolor=lightblue"), std::string::npos);
  // Balanced braces, no open-edge stubs after full inlining.
  EXPECT_EQ(Dot.find("style=dashed"), std::string::npos);
}

TEST(DotExport, OpenEdgesRenderedDashed) {
  DagFixture F(Fig1Src);
  F.Vc->genPvc(F.Cfg.findProc(F.Ctx.sym("main")));
  std::string Dot = inliningDagToDot(F.Ctx, *F.Vc);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("open: "), std::string::npos);
}

TEST(DotExport, CallGraphWithMultiplicity) {
  AstContext Ctx;
  auto P = parseOk(R"(
    procedure f() { }
    procedure main() { call f(); call f(); }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  CfgProgram Cfg = lowerToCfg(Ctx, *P);
  std::string Dot = callGraphToDot(Ctx, Cfg);
  EXPECT_NE(Dot.find("digraph call_graph"), std::string::npos);
  EXPECT_NE(Dot.find("x2"), std::string::npos); // two call sites
}

TEST(DotExport, CfgRendersLabelsAndExits) {
  AstContext Ctx;
  auto P = parseOk(R"(
    var g: int;
    procedure main() { if (*) { g := 1; } else { g := 2; } }
  )",
                   Ctx);
  ASSERT_TRUE(P);
  CfgProgram Cfg = lowerToCfg(Ctx, *P);
  std::string Dot = cfgToDot(Ctx, Cfg, 0);
  EXPECT_NE(Dot.find("g := 1"), std::string::npos);
  EXPECT_NE(Dot.find("peripheries=2"), std::string::npos); // exit label
  EXPECT_NE(Dot.find("style=bold"), std::string::npos);    // entry label
}
