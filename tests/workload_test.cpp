//===- workload_test.cpp - Workload generators ------------------------------===//

#include "ast/AstPrinter.h"
#include "ast/Eval.h"
#include "cfg/Lower.h"
#include "parser/TypeCheck.h"
#include "transform/Transforms.h"
#include "workload/Chain.h"
#include "workload/RandomProg.h"
#include "workload/SdvGen.h"

#include <gtest/gtest.h>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Chain (Fig. 2)
//===----------------------------------------------------------------------===//

TEST(ChainGen, ShapeMatchesFig2) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 4);
  // main + P0..P4.
  EXPECT_EQ(P.Procedures.size(), 6u);
  EXPECT_TRUE(P.findProc(Ctx.sym("main")));
  EXPECT_TRUE(P.findProc(Ctx.sym("P4")));
  EXPECT_FALSE(P.findProc(Ctx.sym("P5")));
  // The generated program re-checks cleanly.
  DiagEngine Diags;
  EXPECT_TRUE(typecheck(Ctx, P, Diags)) << Diags.str();
}

TEST(ChainGen, SafeVariantNeverFailsConcretely) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 5);
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    EvalOptions Opts;
    Opts.Seed = Seed;
    EvalResult R = evaluate(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Outcome, EvalOutcome::Completed);
  }
}

TEST(ChainGen, BuggyVariantAlwaysFailsConcretely) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 5, /*Buggy=*/true);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    EvalOptions Opts;
    Opts.Seed = Seed;
    EvalResult R = evaluate(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Outcome, EvalOutcome::AssertFailed);
  }
}

//===----------------------------------------------------------------------===//
// Random programs
//===----------------------------------------------------------------------===//

TEST(RandomGen, DeterministicPerSeed) {
  RandomProgParams Params;
  Params.Seed = 77;
  Params.AllowLoops = true;
  Params.AllowArrays = true;
  Params.AllowBitvectors = true;
  AstContext C1, C2;
  std::string A = printProgram(C1, makeRandomProgram(C1, Params));
  std::string B = printProgram(C2, makeRandomProgram(C2, Params));
  EXPECT_EQ(A, B);
  Params.Seed = 78;
  AstContext C3;
  EXPECT_NE(printProgram(C3, makeRandomProgram(C3, Params)), A);
}

TEST(RandomGen, AlwaysTypeCorrect) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    AstContext Ctx;
    RandomProgParams Params;
    Params.Seed = Seed;
    Params.AllowLoops = Seed % 2 == 0;
    Params.AllowArrays = Seed % 3 == 0;
    Params.AllowBitvectors = Seed % 4 == 0;
    Program P = makeRandomProgram(Ctx, Params);
    DiagEngine Diags;
    EXPECT_TRUE(typecheck(Ctx, P, Diags))
        << "seed " << Seed << ":\n"
        << Diags.str() << printProgram(Ctx, P);
  }
}

TEST(RandomGen, AcyclicWithoutLoopsOption) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    AstContext Ctx;
    RandomProgParams Params;
    Params.Seed = Seed;
    Params.AllowLoops = false;
    Program P = makeRandomProgram(Ctx, Params);
    CfgProgram Cfg = lowerToCfg(Ctx, P);
    EXPECT_TRUE(Cfg.isHierarchical()) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// SDV-like drivers
//===----------------------------------------------------------------------===//

TEST(SdvGen, DeterministicAndWellTyped) {
  SdvParams Params;
  Params.Seed = 99;
  Params.InjectBug = true;
  AstContext C1, C2;
  std::string A = printProgram(C1, makeSdvProgram(C1, Params));
  std::string B = printProgram(C2, makeSdvProgram(C2, Params));
  EXPECT_EQ(A, B);

  AstContext Ctx;
  Program P = makeSdvProgram(Ctx, Params);
  DiagEngine Diags;
  EXPECT_TRUE(typecheck(Ctx, P, Diags)) << Diags.str();
}

TEST(SdvGen, ContainsTheSection2Patterns) {
  AstContext Ctx;
  SdvParams Params;
  Params.Seed = 5;
  Params.NumHandlers = 4;
  Program P = makeSdvProgram(Ctx, Params);
  std::string Text = printProgram(Ctx, P);
  // Dispatch switch, shared rule procedures, layered utilities.
  EXPECT_NE(Text.find("handler_0"), std::string::npos);
  EXPECT_NE(Text.find("handler_3"), std::string::npos);
  EXPECT_NE(Text.find("KeAcquireLock"), std::string::npos);
  EXPECT_NE(Text.find("if (req == 0)"), std::string::npos);
  EXPECT_NE(Text.find("util_0_0"), std::string::npos);
}

TEST(SdvGen, SafeInstancesPassTheOracle) {
  SdvParams Params;
  Params.Seed = 123;
  Params.InjectBug = false;
  AstContext Ctx;
  Program P = makeSdvProgram(Ctx, Params);
  for (uint64_t Seed = 0; Seed < 48; ++Seed) {
    EvalOptions Opts;
    Opts.Seed = Seed;
    EvalResult R = evaluate(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_NE(R.Outcome, EvalOutcome::AssertFailed) << "oracle seed " << Seed;
  }
}

TEST(SdvGen, BuggyInstancesHaveReachableBugs) {
  // Fuzz the oracle; the injected violation must be concretely reachable
  // for at least one input (the harness havocs req and op).
  unsigned Reached = 0;
  for (uint64_t ProgSeed : {7u, 11u, 13u}) {
    SdvParams Params;
    Params.Seed = ProgSeed;
    Params.InjectBug = true;
    AstContext Ctx;
    Program P = makeSdvProgram(Ctx, Params);
    for (uint64_t Seed = 0; Seed < 512; ++Seed) {
      EvalOptions Opts;
      Opts.Seed = Seed;
      Opts.IntLo = 0;
      Opts.IntHi = 12; // cover the dispatch range and opcode windows
      if (evaluate(Ctx, P, Ctx.sym("main"), Opts).Outcome ==
          EvalOutcome::AssertFailed) {
        ++Reached;
        break;
      }
    }
  }
  EXPECT_GE(Reached, 2u) << "injected bugs should usually be fuzzable";
}

TEST(SdvGen, CorpusShapes) {
  std::vector<SdvInstance> Corpus = makeSdvCorpus(1, 20, 128);
  EXPECT_EQ(Corpus.size(), 20u);
  unsigned Bugs = 0;
  for (const SdvInstance &I : Corpus) {
    EXPECT_FALSE(I.Name.empty());
    if (I.Params.InjectBug) {
      ++Bugs;
      EXPECT_NE(I.Name.find("_bug"), std::string::npos);
    } else {
      EXPECT_NE(I.Name.find("_safe"), std::string::npos);
    }
  }
  // ~half buggy at fraction 128/256.
  EXPECT_GT(Bugs, 4u);
  EXPECT_LT(Bugs, 16u);
  // Deterministic per seed.
  std::vector<SdvInstance> Again = makeSdvCorpus(1, 20, 128);
  for (size_t I = 0; I < Corpus.size(); ++I) {
    EXPECT_EQ(Corpus[I].Name, Again[I].Name);
    EXPECT_EQ(Corpus[I].Params.Seed, Again[I].Params.Seed);
  }
}
