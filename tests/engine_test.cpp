//===- engine_test.cpp - Eager / SI / DI engines ----------------------------===//

#include "cfg/Lower.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "workload/Chain.h"
#include "workload/SdvGen.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

VerifierRunResult run(const char *Src, const VerifierOptions &Opts,
                      const char *Entry = "main") {
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return verifyProgram(Ctx, *P, Ctx.sym(Entry), Opts);
}

VerifierOptions diOpts() {
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.TimeoutSeconds = 60;
  return Opts;
}

} // namespace

TEST(Engine, SafeStraightLine) {
  auto R = run(R"(
    var g: int;
    procedure main() { g := 1; assert g == 1; }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
  EXPECT_EQ(R.NumAsserts, 1u);
}

TEST(Engine, BuggyStraightLine) {
  auto R = run(R"(
    var g: int;
    procedure main() { g := 1; assert g == 2; }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Bug);
  EXPECT_FALSE(R.TraceText.empty());
}

TEST(Engine, HavocMakesAssertFail) {
  auto R = run(R"(
    var g: int;
    procedure main() { havoc g; assert g != 42; }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Bug);
}

TEST(Engine, AssumeGuardsAssert) {
  auto R = run(R"(
    var g: int;
    procedure main() { havoc g; assume g > 10; assert g != 5; }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
}

TEST(Engine, AssertAfterFailureIrrelevant) {
  // Once a bug exists, later (even contradictory) code must not mask it:
  // the error-bit bail-out pattern.
  auto R = run(R"(
    var g: int;
    procedure main() { g := 0; assert g == 1; assume false; }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Bug);
}

TEST(Engine, MultipleAssertsAnyCanFire) {
  auto R = run(R"(
    var g: int;
    procedure check(x: int) { assert x < 100; }
    procedure main() {
      havoc g;
      assume g >= 0;
      call check(g);
    }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Bug);
}

TEST(Engine, ParametersAndReturnsFlow) {
  auto R = run(R"(
    procedure add(a: int, b: int) returns (s: int) { s := a + b; }
    procedure main() {
      var x: int;
      call x := add(20, 22);
      assert x == 42;
    }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
}

TEST(Engine, ArraysThroughCalls) {
  auto R = run(R"(
    var store: [int]int;
    procedure put(k: int, v: int) { store[k] := v; }
    procedure main() {
      var k: int;
      havoc k;
      call put(k, 7);
      assert store[k] == 7;
    }
  )",
               diOpts());
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
}

TEST(Engine, BoundSemantics) {
  // Bug needs 4 iterations; invisible at bound 3.
  const char *Src = R"(
    var g: int;
    procedure main() {
      var i: int;
      i := 0;
      g := 0;
      while (i < 4) { i := i + 1; g := g + 1; }
      assert g != 4;
    }
  )";
  VerifierOptions Opts = diOpts();
  Opts.Bound = 3;
  EXPECT_EQ(run(Src, Opts).Result.Outcome, Verdict::Safe);
  Opts.Bound = 4;
  EXPECT_EQ(run(Src, Opts).Result.Outcome, Verdict::Bug);
}

TEST(Engine, RecursionBoundSemantics) {
  const char *Src = R"(
    var depth: int;
    procedure dig(d: int) {
      if (d > 0) { depth := depth + 1; call dig(d - 1); }
    }
    procedure main() {
      depth := 0;
      call dig(5);
      assert depth != 5;
    }
  )";
  VerifierOptions Opts = diOpts();
  Opts.Bound = 3; // cannot reach depth 5
  EXPECT_EQ(run(Src, Opts).Result.Outcome, Verdict::Safe);
  Opts.Bound = 6;
  EXPECT_EQ(run(Src, Opts).Result.Outcome, Verdict::Bug);
}

TEST(Engine, EnginesAgreeOnFig1Program) {
  const char *Src = R"(
    var g: int;
    procedure foo() { g := g + 1; }
    procedure bar() { call foo(); }
    procedure baz() { call foo(); }
    procedure main() {
      g := 0;
      if (*) { call bar(); } else { call baz(); }
      assert g == 1;
    }
  )";
  for (bool Eager : {false, true}) {
    for (MergeStrategyKind Kind :
         {MergeStrategyKind::None, MergeStrategyKind::First,
          MergeStrategyKind::MaxC, MergeStrategyKind::Opt,
          MergeStrategyKind::RandomPick, MergeStrategyKind::Random}) {
      VerifierOptions Opts = diOpts();
      Opts.Engine.Eager = Eager;
      Opts.Engine.Strategy.Kind = Kind;
      auto R = run(Src, Opts);
      EXPECT_EQ(R.Result.Outcome, Verdict::Safe)
          << "eager=" << Eager << " strategy=" << strategyName(Kind);
    }
  }
}

TEST(Engine, ChainSafeAndBuggyWithDI) {
  for (bool Buggy : {false, true}) {
    AstContext Ctx;
    Program P = makeChainProgram(Ctx, 6, Buggy);
    VerifierOptions Opts = diOpts();
    auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Result.Outcome, Buggy ? Verdict::Bug : Verdict::Safe);
    // DAG inlining: linear in N (main + P0..P6).
    EXPECT_EQ(R.Result.NumInlined, 8u);
  }
}

TEST(Engine, ChainDIBeatsSIInInstanceCount) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 5);
  VerifierOptions SI = diOpts();
  SI.Engine.Strategy.Kind = MergeStrategyKind::None;
  auto RSI = verifyProgram(Ctx, P, Ctx.sym("main"), SI);
  AstContext Ctx2;
  Program P2 = makeChainProgram(Ctx2, 5);
  auto RDI = verifyProgram(Ctx2, P2, Ctx2.sym("main"), diOpts());
  ASSERT_EQ(RSI.Result.Outcome, Verdict::Safe);
  ASSERT_EQ(RDI.Result.Outcome, Verdict::Safe);
  EXPECT_LT(RDI.Result.NumInlined, RSI.Result.NumInlined);
  EXPECT_GT(RDI.Result.NumMerged, 0u);
}

TEST(Engine, TimeoutVerdict) {
  // A deliberately hard instance and a microscopic budget.
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 14);
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::None; // tree: exponential
  Opts.Engine.TimeoutSeconds = 0.2;
  Stopwatch W;
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::Timeout);
  EXPECT_LT(W.seconds(), 30.0) << "timeout must be honored promptly";
}

TEST(Engine, ResourceOutVerdict) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 10);
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::None;
  Opts.Engine.TimeoutSeconds = 60;
  Opts.Engine.MaxInlined = 16; // the paper's spaceout, as an instance cap
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::ResourceOut);
}

TEST(Engine, EagerMatchesStratified) {
  const char *Src = R"(
    var g: int;
    procedure f(x: int) returns (y: int) {
      if (x > 0) { y := x; } else { y := -x; }
    }
    procedure main() {
      var a: int;
      var r: int;
      havoc a;
      call r := f(a);
      assert r >= 0;
    }
  )";
  VerifierOptions Lazy = diOpts();
  VerifierOptions Eager = diOpts();
  Eager.Engine.Eager = true;
  EXPECT_EQ(run(Src, Lazy).Result.Outcome, Verdict::Safe);
  EXPECT_EQ(run(Src, Eager).Result.Outcome, Verdict::Safe);
}

TEST(Engine, EagerSkipSolveReportsSizesOnly) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 5);
  VerifierOptions Opts;
  Opts.Engine.Eager = true;
  Opts.Engine.SkipSolve = true;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::None;
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::Unknown);
  EXPECT_EQ(R.Result.NumInlined, 127u); // full tree for N=5
  EXPECT_EQ(R.Result.NumSolverChecks, 0u);
}

TEST(Engine, SdvDriverBugFoundByAllEngines) {
  SdvParams Params;
  Params.Seed = 11;
  Params.NumHandlers = 3;
  Params.NumUtils = 3;
  Params.UtilDepth = 3;
  Params.InjectBug = true;
  for (MergeStrategyKind Kind :
       {MergeStrategyKind::None, MergeStrategyKind::First}) {
    AstContext Ctx;
    Program P = makeSdvProgram(Ctx, Params);
    VerifierOptions Opts = diOpts();
    Opts.Engine.Strategy.Kind = Kind;
    auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Result.Outcome, Verdict::Bug) << strategyName(Kind);
  }
}

TEST(Engine, SdvDriverSafeWithAndWithoutInv) {
  SdvParams Params;
  Params.Seed = 12;
  Params.NumHandlers = 3;
  Params.NumUtils = 3;
  Params.UtilDepth = 3;
  Params.InjectBug = false;
  AstContext Ctx;
  Program P = makeSdvProgram(Ctx, Params);
  VerifierOptions Opts = diOpts();
  auto Plain = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  EXPECT_EQ(Plain.Result.Outcome, Verdict::Safe);
  Opts.UseInvariants = true;
  AstContext Ctx2;
  Program P2 = makeSdvProgram(Ctx2, Params);
  auto WithInv = verifyProgram(Ctx2, P2, Ctx2.sym("main"), Opts);
  EXPECT_EQ(WithInv.Result.Outcome, Verdict::Safe);
  EXPECT_LE(WithInv.Result.NumInlined, Plain.Result.NumInlined);
}

TEST(Engine, StatisticsArePopulated) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, 4);
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), diOpts());
  EXPECT_GT(R.Result.NumSolverChecks, 0u);
  EXPECT_GT(R.Result.NumIterations, 0u);
  EXPECT_GT(R.Result.NumDisjQueries, 0u);
  EXPECT_GT(R.Result.Seconds, 0.0);
  EXPECT_GE(R.Result.MergeLookupSeconds, 0.0);
}

TEST(Engine, TraceVisitsFailingAssert) {
  auto R = run(R"(
    var g: int;
    procedure inner() { g := 5; assert g == 6; }
    procedure main() { call inner(); }
  )",
               diOpts());
  ASSERT_EQ(R.Result.Outcome, Verdict::Bug);
  EXPECT_NE(R.TraceText.find("inner"), std::string::npos);
  EXPECT_NE(R.TraceText.find("$err := true"), std::string::npos);
}

TEST(Engine, TraceCarriesModelValues) {
  // The prepass would (correctly) slice the g stores away once the assert
  // guard folds to a literal; this test is about trace model-value capture,
  // so run the unsliced program.
  VerifierOptions Opts = diOpts();
  Opts.UsePrepass = false;
  auto R = run(R"(
    var g: int;
    procedure main() {
      g := 41;
      g := g + 1;
      assert g != 42;
    }
  )",
               Opts);
  ASSERT_EQ(R.Result.Outcome, Verdict::Bug);
  // Every step captured one value per global (g and the error bit).
  for (const TraceStep &Step : R.Result.Trace)
    EXPECT_EQ(Step.GlobalValues.size(), 2u);
  // Some step must observe g == 42, and the rendering shows it.
  bool Saw42 = false;
  for (const TraceStep &Step : R.Result.Trace)
    if (Step.GlobalValues[0] == 42)
      Saw42 = true;
  EXPECT_TRUE(Saw42);
  EXPECT_NE(R.TraceText.find("g=42"), std::string::npos) << R.TraceText;
}

TEST(Engine, PlainReachabilityWithoutErrorBit) {
  // Exercise solveReachability directly with ErrGlobal = nullopt:
  // Definition 1's bare termination query.
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(R"(
    procedure main() { assume false; }
    procedure other() { }
  )",
                         Ctx, Diags);
  ASSERT_TRUE(P) << Diags.str();
  CfgProgram Cfg = lowerToCfg(Ctx, *P);
  EngineOptions Opts;
  Opts.TimeoutSeconds = 30;
  // main blocks: no terminating execution.
  auto R1 = solveReachability(Ctx, Cfg, Cfg.findProc(Ctx.sym("main")),
                              std::nullopt, Opts);
  EXPECT_EQ(R1.Outcome, Verdict::Safe);
  // other terminates trivially.
  auto R2 = solveReachability(Ctx, Cfg, Cfg.findProc(Ctx.sym("other")),
                              std::nullopt, Opts);
  EXPECT_EQ(R2.Outcome, Verdict::Bug);
}
