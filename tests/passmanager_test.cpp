//===- passmanager_test.cpp - Pass manager, VerifyCfg, and GVN -------------===//

#include "analysis/Gvn.h"
#include "analysis/PassManager.h"
#include "analysis/VerifyCfg.h"
#include "cfg/Lower.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

std::optional<Program> parse(const char *Src, AstContext &Ctx) {
  DiagEngine Diags;
  std::optional<Program> P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

/// Lowers a checked program through the bounding pipeline, like the verifier
/// does before its prepass.
CfgProgram lower(AstContext &Ctx, const Program &P, ProcId &Root,
                 Symbol &ErrVar, unsigned Bound = 2) {
  BoundedInstance Inst = prepareBounded(Ctx, P, Ctx.sym("main"), Bound);
  CfgProgram Cfg = lowerToCfg(Ctx, Inst.Prog);
  Root = Cfg.findProc(Inst.Entry);
  ErrVar = Inst.ErrVar;
  EXPECT_NE(Root, InvalidProc);
  return Cfg;
}

bool anyDiagContains(const std::vector<std::string> &Diags,
                     const std::string &Needle) {
  for (const std::string &D : Diags)
    if (D.find(Needle) != std::string::npos)
      return true;
  return false;
}

std::string joined(const std::vector<std::string> &Diags) {
  std::string Out;
  for (const std::string &D : Diags)
    Out += D + "\n";
  return Out;
}

LabelId findLabel(const CfgProgram &Cfg, CfgStmtKind Kind) {
  for (LabelId L = 0; L < Cfg.Labels.size(); ++L)
    if (Cfg.Labels[L].Stmt.Kind == Kind)
      return L;
  return InvalidLabel;
}

const char *CallDemo = R"(
  var g: int;
  procedure callee(a: int) returns (r: int) { r := a + g; }
  procedure main() {
    var v: int;
    call v := callee(5);
    g := v;
    assert g >= 0;
  }
)";

} // namespace

//===----------------------------------------------------------------------===//
// VerifyCfg: clean programs pass, each seeded corruption is caught with a
// precise diagnostic
//===----------------------------------------------------------------------===//

TEST(VerifyCfg, CleanLoweredProgramVerifies) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(Diags.empty()) << joined(Diags);
}

TEST(VerifyCfg, CleanProgramStaysVerifiedThroughThePipeline) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  PrepassOptions Opts;
  Opts.VerifyEach = true;
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts);
  EXPECT_TRUE(R.ok()) << joined(R.PipelineErrors);
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(Diags.empty()) << joined(Diags);
}

TEST(VerifyCfg, DetectsDanglingSuccessor) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  Cfg.Labels[Cfg.Procs[Root].Entry].Targets.push_back(999999);
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(Diags, "dangling successor L999999"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsCrossProcedureSuccessor) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  // Point a root label at another procedure's entry.
  ProcId Other = Root == 0 ? 1 : 0;
  ASSERT_GT(Cfg.Procs.size(), 1u);
  Cfg.Labels[Cfg.Procs[Root].Entry].Targets.push_back(
      Cfg.Procs[Other].Entry);
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(Diags, "cross-procedure successor"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsFlowCycle) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  LabelId Entry = Cfg.Procs[Root].Entry;
  Cfg.Labels[Entry].Targets.push_back(Entry); // self-loop
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(Diags, "has a cycle through label L" +
                                         std::to_string(Entry)))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsCallGraphCycle) {
  // Hand-built mutual recursion: even calls odd calls even. The lowering
  // never produces this (bounding unrolls recursion), so build it directly.
  AstContext Ctx;
  CfgProgram Cfg;
  Cfg.Procs.resize(2);
  Cfg.Procs[0].Name = Ctx.sym("even");
  Cfg.Procs[1].Name = Ctx.sym("odd");
  for (ProcId P = 0; P < 2; ++P) {
    CfgStmt Call;
    Call.Kind = CfgStmtKind::Call;
    Call.Callee = 1 - P;
    LabelId L = static_cast<LabelId>(Cfg.Labels.size());
    Cfg.Labels.push_back({std::move(Call), {}, P, SrcLoc{}});
    Cfg.Procs[P].Entry = L;
    Cfg.Procs[P].Labels = {L};
  }
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg);
  EXPECT_TRUE(anyDiagContains(Diags, "call graph has a cycle through "
                                     "procedure"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsCallArityMismatch) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  LabelId CallLabel = findLabel(Cfg, CfgStmtKind::Call);
  ASSERT_NE(CallLabel, InvalidLabel);
  Cfg.Labels[CallLabel].Stmt.Args.clear();
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(
      Diags, "passes 0 arguments but the signature has 1 parameters"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsCallResultArityMismatch) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  LabelId CallLabel = findLabel(Cfg, CfgStmtKind::Call);
  ASSERT_NE(CallLabel, InvalidLabel);
  Cfg.Labels[CallLabel].Stmt.Vars.clear();
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(
      Diags, "binds 0 results but the signature has 1 returns"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsOutOfScopeAssignmentTarget) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  LabelId Assign = findLabel(Cfg, CfgStmtKind::Assign);
  ASSERT_NE(Assign, InvalidLabel);
  Cfg.Labels[Assign].Stmt.Target = Ctx.sym("no_such_var");
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(
      Diags, "targets variable 'no_such_var' which is not in scope"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsNonBoolAssumeCondition) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  LabelId Assume = findLabel(Cfg, CfgStmtKind::Assume);
  ASSERT_NE(Assume, InvalidLabel);
  Cfg.Labels[Assume].Stmt.E = Ctx.tInt(7);
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(Diags, "non-bool condition of type int"))
      << joined(Diags);
}

TEST(VerifyCfg, DetectsHavockedQueryVariable) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  LabelId Assume = findLabel(Cfg, CfgStmtKind::Assume);
  ASSERT_NE(Assume, InvalidLabel);
  CfgStmt Havoc;
  Havoc.Kind = CfgStmtKind::Havoc;
  Havoc.Vars = {Err};
  Cfg.Labels[Assume].Stmt = std::move(Havoc);
  std::vector<std::string> Diags = verifyCfg(Ctx, Cfg, Root, Err);
  EXPECT_TRUE(anyDiagContains(Diags, "is havocked at label"))
      << joined(Diags);
  // Without the query variable the shape check is off.
  EXPECT_TRUE(verifyCfg(Ctx, Cfg, Root).empty());
}

TEST(VerifyCfg, DetectsEntryNotOwnedAndBadBackPointer) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  ASSERT_GT(Cfg.Procs.size(), 1u);
  ProcId Other = Root == 0 ? 1 : 0;
  CfgProgram Bad = Cfg;
  Bad.Procs[Root].Entry = Bad.Procs[Other].Entry;
  EXPECT_TRUE(anyDiagContains(verifyCfg(Ctx, Bad, Root, Err),
                              "is not among the labels it owns"));

  CfgProgram Bad2 = Cfg;
  Bad2.Labels[Bad2.Procs[Root].Entry].Proc = Other;
  EXPECT_TRUE(anyDiagContains(verifyCfg(Ctx, Bad2, Root, Err),
                              "Proc back-pointer"));
}

TEST(VerifyCfg, DetectsRootOutOfRange) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  EXPECT_TRUE(anyDiagContains(verifyCfg(Ctx, Cfg, 12345, Err),
                              "root procedure id 12345 out of range"));
}

//===----------------------------------------------------------------------===//
// GVN and assume-redundancy elimination
//===----------------------------------------------------------------------===//

TEST(Gvn, PropagatesCopyChains) {
  // `y := x; z := y + 1` — the add's operand should be rewritten to the
  // chain head `x` once y and x share a value number.
  AstContext Ctx;
  auto P = parse(R"(
    procedure main() {
      var x: int;
      var y: int;
      var z: int;
      havoc x;
      y := x;
      z := y + 1;
      assert z > x;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  GvnReport R = runGvn(Ctx, Cfg);
  EXPECT_GE(R.PropagatedExprs, 1u);
  bool SawRewrittenAdd = false;
  for (const CfgLabel &L : Cfg.Labels) {
    const CfgStmt &S = L.Stmt;
    if (S.Kind != CfgStmtKind::Assign || !S.E ||
        S.E->kind() != ExprKind::Binary || S.E->binOp() != BinOp::Add)
      continue;
    if (S.E->op1() && S.E->op1()->kind() == ExprKind::IntLit &&
        S.E->op1()->intValue() == 1) {
      ASSERT_EQ(S.E->op0()->kind(), ExprKind::Var);
      EXPECT_EQ(Ctx.name(S.E->op0()->var()), "x");
      SawRewrittenAdd = true;
    }
  }
  EXPECT_TRUE(SawRewrittenAdd);
  // GVN must leave the program structurally sound.
  EXPECT_TRUE(verifyCfg(Ctx, Cfg, Root, Err).empty());
}

TEST(Gvn, FoldsLiteralsThroughCopies) {
  AstContext Ctx;
  auto P = parse(R"(
    procedure main() {
      var x: int;
      var y: int;
      x := 2;
      y := x + 3;
      assert y > 0;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  GvnReport R = runGvn(Ctx, Cfg);
  EXPECT_GE(R.PropagatedExprs, 1u);
  bool SawFoldedStore = false;
  for (const CfgLabel &L : Cfg.Labels) {
    const CfgStmt &S = L.Stmt;
    if (S.Kind == CfgStmtKind::Assign && Ctx.name(S.Target) == "y") {
      ASSERT_EQ(S.E->kind(), ExprKind::IntLit);
      EXPECT_EQ(S.E->intValue(), 5);
      SawFoldedStore = true;
    }
  }
  EXPECT_TRUE(SawFoldedStore);
}

TEST(Gvn, EliminatesEntailedAssume) {
  AstContext Ctx;
  auto P = parse(R"(
    procedure main() {
      var x: int;
      havoc x;
      assume x > 0;
      assume x > 0;
      assert x > 0;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  GvnReport R = runAssumeElim(Ctx, Cfg);
  EXPECT_GE(R.RedundantAssumes, 1u);
  EXPECT_TRUE(verifyCfg(Ctx, Cfg, Root, Err).empty());
}

TEST(Gvn, SharpensContradictedAssume) {
  AstContext Ctx;
  auto P = parse(R"(
    procedure main() {
      var x: int;
      havoc x;
      assume x > 0;
      assume !(x > 0);
      x := 1;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  GvnReport R = runAssumeElim(Ctx, Cfg);
  EXPECT_GE(R.ContradictedAssumes, 1u);
  // The sharpened label is `assume false` with its successors cut.
  bool SawFalse = false;
  for (const CfgLabel &L : Cfg.Labels)
    if (L.Stmt.Kind == CfgStmtKind::Assume && L.Stmt.E &&
        L.Stmt.E->kind() == ExprKind::BoolLit && !L.Stmt.E->boolValue()) {
      EXPECT_TRUE(L.Targets.empty());
      SawFalse = true;
    }
  EXPECT_TRUE(SawFalse);
  EXPECT_TRUE(verifyCfg(Ctx, Cfg, Root, Err).empty());
}

//===----------------------------------------------------------------------===//
// Registry and pipelines
//===----------------------------------------------------------------------===//

TEST(PassRegistry, ListsBuiltinsInDefaultPipelineOrder) {
  std::vector<std::string> Names = PassRegistry::instance().names();
  std::vector<std::string> Builtins = {"constprop", "gvn",  "assumeelim",
                                       "slice",     "splice", "deadproc",
                                       "lint",      "inv"};
  // Tests may append more; the builtin prefix is stable.
  ASSERT_GE(Names.size(), Builtins.size());
  for (size_t I = 0; I < Builtins.size(); ++I)
    EXPECT_EQ(Names[I], Builtins[I]);
  for (const std::string &N : Builtins) {
    std::unique_ptr<Pass> P = PassRegistry::instance().create(N);
    ASSERT_TRUE(P);
    EXPECT_EQ(P->name(), N);
    EXPECT_FALSE(P->description().empty());
  }
  EXPECT_EQ(PassRegistry::instance().create("nope"), nullptr);
}

TEST(PassPipeline, ParsesSpecsAndRoundTrips) {
  std::optional<PassPipeline> PL = PassPipeline::parse(" constprop , gvn ,");
  ASSERT_TRUE(PL);
  EXPECT_EQ(PL->size(), 2u);
  EXPECT_EQ(PL->str(), "constprop,gvn");

  std::string Error;
  EXPECT_FALSE(PassPipeline::parse("constprop,bogus", &Error));
  EXPECT_NE(Error.find("unknown pass 'bogus'"), std::string::npos);
  EXPECT_NE(Error.find("constprop"), std::string::npos) << Error;

  EXPECT_TRUE(PassPipeline::parse("")->empty());
}

TEST(PassPipeline, FromOptionsFollowsToggles) {
  PrepassOptions Opts;
  EXPECT_EQ(PassPipeline::fromOptions(Opts).str(),
            "constprop,gvn,assumeelim,slice,splice,deadproc");
  Opts.Invariants = true;
  EXPECT_EQ(PassPipeline::fromOptions(Opts).str(),
            "constprop,gvn,assumeelim,slice,splice,deadproc,inv");
  PrepassOptions Off;
  Off.ConstantFold = Off.Gvn = Off.AssumeElim = Off.Slice = Off.SpliceSkips =
      Off.DeadProcElim = false;
  EXPECT_TRUE(PassPipeline::fromOptions(Off).empty());
}

TEST(PassPipeline, RecordsPerPassStats) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  Stats S;
  PrepassOptions Opts;
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts, &S);
  EXPECT_TRUE(R.ok());
  for (const char *Name :
       {"constprop", "gvn", "assumeelim", "slice", "splice", "deadproc"})
    EXPECT_EQ(S.get("pass." + std::string(Name) + ".runs"), 1)
        << Name;
  // The demo program has skip labels to splice, so at least one pass reports
  // a change.
  EXPECT_GE(S.get("pass.splice.changed"), 1);
  EXPECT_EQ(S.get("pass.inv.runs"), 0);
}

TEST(PassPipeline, LintAuditCountsResidualDeadStores) {
  const char *Src = R"(
    var g: int;
    procedure main() {
      var dead: int;
      var x: int;
      x := 1;
      dead := x + 41;
      g := x;
      assert g == 1;
    }
  )";
  // The lint audit alone sees the store to `dead` (no later statement reads
  // it)...
  {
    AstContext Ctx;
    auto P = parse(Src, Ctx);
    ProcId Root;
    Symbol Err;
    CfgProgram Cfg = lower(Ctx, *P, Root, Err);
    PrepassOptions Opts;
    Opts.Passes = "lint";
    Opts.VerifyEach = true;
    size_t LabelsBefore = Cfg.Labels.size();
    PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts);
    ASSERT_TRUE(R.ok()) << joined(R.PipelineErrors);
    EXPECT_GE(R.AuditDeadStores, 1u);
    EXPECT_EQ(R.AuditUnreachableLabels, 0u);
    // Read-only: the program itself is untouched.
    EXPECT_EQ(Cfg.Labels.size(), LabelsBefore);
    EXPECT_NE(R.str().find("lint audit"), std::string::npos);
  }
  // ...and running it after the default pipeline finds nothing left to flag.
  {
    AstContext Ctx;
    auto P = parse(Src, Ctx);
    ProcId Root;
    Symbol Err;
    CfgProgram Cfg = lower(Ctx, *P, Root, Err);
    PrepassOptions Opts;
    Opts.Passes = "constprop,gvn,assumeelim,slice,splice,deadproc,lint";
    Opts.VerifyEach = true;
    PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts);
    ASSERT_TRUE(R.ok()) << joined(R.PipelineErrors);
    EXPECT_EQ(R.AuditDeadStores, 0u);
    EXPECT_EQ(R.AuditUnreachableLabels, 0u);
  }
}

TEST(PassPipeline, LintAuditFlagsUnreachableLabels) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  // Graft a structurally valid but entry-unreachable label onto the root.
  CfgLabel Orphan;
  Orphan.Stmt.Kind = CfgStmtKind::Assume;
  Orphan.Stmt.E = Ctx.tBool(true);
  Orphan.Proc = Root;
  LabelId L = static_cast<LabelId>(Cfg.Labels.size());
  Cfg.Labels.push_back(Orphan);
  Cfg.Procs[Root].Labels.push_back(L);
  PrepassOptions Opts;
  Opts.Passes = "lint";
  Opts.VerifyEach = true;
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts);
  ASSERT_TRUE(R.ok()) << joined(R.PipelineErrors);
  EXPECT_EQ(R.AuditUnreachableLabels, 1u);
}

TEST(PassPipeline, PassesOverrideRunsOnlyTheListedPasses) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  Stats S;
  PrepassOptions Opts;
  Opts.Passes = "splice,splice";
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts, &S);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(S.get("pass.splice.runs"), 2);
  EXPECT_EQ(S.get("pass.constprop.runs"), 0);
  EXPECT_EQ(S.get("pass.gvn.runs"), 0);
}

TEST(PassPipeline, UnknownPassNameAbortsBeforeRunningAnything) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  size_t LabelsBefore = Cfg.Labels.size();
  PrepassOptions Opts;
  Opts.Passes = "constprop,bogus";
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts);
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.PipelineErrors.size(), 1u);
  EXPECT_NE(R.PipelineErrors[0].find("unknown pass 'bogus'"),
            std::string::npos);
  EXPECT_EQ(Cfg.Labels.size(), LabelsBefore);
  // The summary line surfaces the abort.
  EXPECT_NE(R.str().find("PIPELINE ABORTED"), std::string::npos);
}

namespace {

/// Test-only pass that corrupts the flow graph, for --verify-each coverage.
class CorruptingPass : public Pass {
public:
  std::string_view name() const override { return "corrupt"; }
  std::string_view description() const override {
    return "test pass that plants a dangling successor";
  }
  bool run(PassContext &PC) override {
    PC.Prog.Labels[PC.Prog.Procs[PC.Root].Entry].Targets.push_back(
        static_cast<LabelId>(PC.Prog.Labels.size() + 7));
    return true;
  }
};

std::unique_ptr<Pass> makeCorruptingPass() {
  return std::make_unique<CorruptingPass>();
}

} // namespace

TEST(PassPipeline, VerifyEachCatchesACorruptingPass) {
  PassRegistry::instance().registerPass("corrupt", makeCorruptingPass);
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);

  PrepassOptions Opts;
  Opts.Passes = "constprop,corrupt,splice";
  Opts.VerifyEach = true;
  Stats S;
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts, &S);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.PipelineErrors[0].find("VerifyCfg after pass 'corrupt'"),
            std::string::npos)
      << R.PipelineErrors[0];
  EXPECT_NE(R.PipelineErrors[0].find("dangling successor"),
            std::string::npos);
  // The pipeline stopped at the offending pass.
  EXPECT_EQ(S.get("pass.corrupt.runs"), 1);
  EXPECT_EQ(S.get("pass.splice.runs"), 0);
}

TEST(PassPipeline, VerifyEachChecksThePipelineInputToo) {
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  Cfg.Labels[Cfg.Procs[Root].Entry].Targets.push_back(999999);

  PrepassOptions Opts;
  Opts.VerifyEach = true;
  Stats S;
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts, &S);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.PipelineErrors[0].find("VerifyCfg after pipeline input"),
            std::string::npos)
      << R.PipelineErrors[0];
  EXPECT_EQ(S.get("pass.constprop.runs"), 0);
}

TEST(PassPipeline, WithoutVerifyEachCorruptionGoesUnnoticed) {
  // Sanity-check the control: the corrupting pass only trips the pipeline
  // when verification is requested (the verifier's Unknown-on-abort path
  // depends on this distinction).
  PassRegistry::instance().registerPass("corrupt", makeCorruptingPass);
  AstContext Ctx;
  auto P = parse(CallDemo, Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  PrepassOptions Opts;
  Opts.Passes = "corrupt";
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, Opts);
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(verifyCfg(Ctx, Cfg, Root, Err).empty());
}
