//===- programs_test.cpp - File-driven verification of sample programs ------===//
//
// Every `.hbpl` under examples/programs declares its expected verdict in a
// header comment (`// expect: safe bound=2`). This test parses, round-trips
// and verifies each file with SI, DI, and DI+passified VCs, and checks the
// expectation — the sample corpus doubles as an end-to-end regression
// suite.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "core/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace rmt;

namespace {

struct Expectation {
  Verdict Outcome = Verdict::Unknown;
  unsigned Bound = 2;
};

std::optional<Expectation> parseExpectation(const std::string &Source) {
  size_t Pos = Source.find("// expect:");
  if (Pos == std::string::npos)
    return std::nullopt;
  std::istringstream Line(Source.substr(Pos + 10, 80));
  std::string VerdictWord;
  Line >> VerdictWord;
  Expectation E;
  if (VerdictWord == "safe")
    E.Outcome = Verdict::Safe;
  else if (VerdictWord == "bug")
    E.Outcome = Verdict::Bug;
  else
    return std::nullopt;
  std::string Rest;
  while (Line >> Rest)
    if (Rest.rfind("bound=", 0) == 0)
      E.Bound = static_cast<unsigned>(std::stoi(Rest.substr(6)));
  return E;
}

std::vector<std::filesystem::path> sampleFiles() {
  std::vector<std::filesystem::path> Files;
  std::filesystem::path Dir = RMT_SAMPLE_PROGRAMS_DIR;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".hbpl")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

class SampleProgram
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(SampleProgram, ParsesAndRoundTrips) {
  std::string Source = readFile(GetParam());
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(Source, Ctx, Diags);
  ASSERT_TRUE(P) << GetParam() << "\n" << Diags.str();

  std::string Printed = printProgram(Ctx, *P);
  AstContext Ctx2;
  DiagEngine Diags2;
  auto P2 = parseAndCheck(Printed, Ctx2, Diags2);
  ASSERT_TRUE(P2) << Diags2.str();
  EXPECT_EQ(printProgram(Ctx2, *P2), Printed);
}

TEST_P(SampleProgram, VerdictMatchesExpectation) {
  std::string Source = readFile(GetParam());
  std::optional<Expectation> Expect = parseExpectation(Source);
  ASSERT_TRUE(Expect) << GetParam()
                      << ": missing or malformed `// expect:` header";

  struct Config {
    const char *Name;
    MergeStrategyKind Kind;
    PvcMode Pvc;
  };
  for (Config C : {Config{"SI", MergeStrategyKind::None, PvcMode::Paper},
                   Config{"DI", MergeStrategyKind::First, PvcMode::Paper},
                   Config{"DI/passified", MergeStrategyKind::First,
                          PvcMode::Passified}}) {
    AstContext Ctx;
    DiagEngine Diags;
    auto P = parseAndCheck(Source, Ctx, Diags);
    ASSERT_TRUE(P) << Diags.str();
    VerifierOptions Opts;
    Opts.Bound = Expect->Bound;
    Opts.Engine.Strategy.Kind = C.Kind;
    Opts.Engine.Pvc = C.Pvc;
    Opts.Engine.TimeoutSeconds = 120;
    auto R = verifyProgram(Ctx, *P, Ctx.sym("main"), Opts);
    EXPECT_EQ(R.Result.Outcome, Expect->Outcome)
        << GetParam() << " with " << C.Name;
    if (Expect->Outcome == Verdict::Bug && C.Kind != MergeStrategyKind::None) {
      EXPECT_FALSE(R.TraceText.empty());
    }
  }
}

TEST_P(SampleProgram, PrepassPreservesVerdict) {
  std::string Source = readFile(GetParam());
  std::optional<Expectation> Expect = parseExpectation(Source);
  ASSERT_TRUE(Expect) << GetParam();

  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(Source, Ctx, Diags);
  ASSERT_TRUE(P) << Diags.str();

  VerifierOptions On;
  On.Bound = Expect->Bound;
  On.Engine.Strategy.Kind = MergeStrategyKind::First;
  On.Engine.TimeoutSeconds = 120;
  VerifierOptions Off = On;
  Off.UsePrepass = false;

  auto ROn = verifyProgram(Ctx, *P, Ctx.sym("main"), On);
  auto ROff = verifyProgram(Ctx, *P, Ctx.sym("main"), Off);
  EXPECT_EQ(ROn.Result.Outcome, Expect->Outcome) << GetParam();
  EXPECT_EQ(ROn.Result.Outcome, ROff.Result.Outcome)
      << GetParam() << ": prepass changed the verdict";
  EXPECT_LE(ROn.NumLabelsSolved, ROn.NumLabels);
}

INSTANTIATE_TEST_SUITE_P(
    Files, SampleProgram, ::testing::ValuesIn(sampleFiles()),
    [](const ::testing::TestParamInfo<std::filesystem::path> &Info) {
      std::string Name = Info.param.stem().string();
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
