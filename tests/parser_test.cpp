//===- parser_test.cpp - Unit tests for src/parser --------------------------===//

#include "ast/AstPrinter.h"
#include "parser/Lexer.h"
#include "parser/Parser.h"
#include "parser/TypeCheck.h"

#include <gtest/gtest.h>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

std::vector<TokKind> kindsOf(const char *Src) {
  DiagEngine Diags;
  std::vector<Token> Toks = lex(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(Lexer, Operators) {
  auto K = kindsOf(":= == != <= >= < > && || ==> <==> ! + - *");
  std::vector<TokKind> Expected = {
      TokKind::Assign, TokKind::EqEq,    TokKind::NotEq, TokKind::Le,
      TokKind::Ge,     TokKind::Lt,      TokKind::Gt,    TokKind::AmpAmp,
      TokKind::PipePipe, TokKind::Implies, TokKind::Iff, TokKind::Bang,
      TokKind::Plus,   TokKind::Minus,   TokKind::Star,  TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto K = kindsOf("if iff while whiles procedure $err a.b v#1");
  std::vector<TokKind> Expected = {
      TokKind::KwIf,  TokKind::Ident, TokKind::KwWhile, TokKind::Ident,
      TokKind::KwProcedure, TokKind::Ident, TokKind::Ident, TokKind::Ident,
      TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, IntLiteralValue) {
  DiagEngine Diags;
  std::vector<Token> Toks = lex("12345", Diags);
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].IntValue, 12345);
}

TEST(Lexer, CommentsSkipped) {
  auto K = kindsOf("a // line comment\n /* block\n comment */ b");
  std::vector<TokKind> Expected = {TokKind::Ident, TokKind::Ident,
                                   TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnknownCharacterIsError) {
  DiagEngine Diags;
  std::vector<Token> Toks = lex("a ? b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Toks[1].Kind, TokKind::Error);
}

TEST(Lexer, TracksLineAndColumn) {
  DiagEngine Diags;
  std::vector<Token> Toks = lex("a\n  b", Diags);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

std::optional<Program> parseSrc(const char *Src, AstContext &Ctx,
                                bool ExpectOk = true) {
  DiagEngine Diags;
  auto P = parseAndCheck(Src, Ctx, Diags);
  if (ExpectOk)
    EXPECT_TRUE(P) << Diags.str();
  else
    EXPECT_FALSE(P);
  return P;
}

} // namespace

TEST(Parser, EmptyProgram) {
  AstContext Ctx;
  auto P = parseSrc("", Ctx);
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->Globals.empty());
  EXPECT_TRUE(P->Procedures.empty());
}

TEST(Parser, GlobalsAndProcedureShapes) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    var g: int;
    var m: [int][int]bool;
    procedure f(a: int, b: bool) returns (r: int, s: int) {
      var t: int;
      r := a;
      s := a + 1;
    }
    procedure main() { }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Globals.size(), 2u);
  ASSERT_EQ(P->Procedures.size(), 2u);
  const Procedure &F = P->Procedures[0];
  EXPECT_EQ(F.Params.size(), 2u);
  EXPECT_EQ(F.Returns.size(), 2u);
  EXPECT_EQ(F.Locals.size(), 1u);
  EXPECT_EQ(F.Body.size(), 2u);
}

TEST(Parser, CallForms) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    procedure noret(a: int) { }
    procedure one() returns (r: int) { r := 1; }
    procedure two() returns (r: int, s: int) { r := 1; s := 2; }
    procedure main() {
      var x: int;
      var y: int;
      call noret(3);
      call x := one();
      call x, y := two();
    }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  const Procedure *Main = P->findProc(Ctx.sym("main"));
  ASSERT_TRUE(Main);
  ASSERT_EQ(Main->Body.size(), 3u);
  EXPECT_EQ(Main->Body[0]->callLhs().size(), 0u);
  EXPECT_EQ(Main->Body[1]->callLhs().size(), 1u);
  EXPECT_EQ(Main->Body[2]->callLhs().size(), 2u);
}

TEST(Parser, ElseIfChains) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    procedure main() {
      var x: int;
      if (x == 0) { x := 1; }
      else if (x == 1) { x := 2; }
      else { x := 3; }
    }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  const Stmt *If = P->Procedures[0].Body[0];
  ASSERT_EQ(If->kind(), StmtKind::If);
  ASSERT_EQ(If->elseBlock().size(), 1u);
  EXPECT_EQ(If->elseBlock()[0]->kind(), StmtKind::If);
}

TEST(Parser, NondetGuards) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    procedure main() {
      var x: int;
      if (*) { x := 1; }
      while (*) { x := x + 1; }
    }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Procedures[0].Body[0]->guard(), nullptr);
  EXPECT_EQ(P->Procedures[0].Body[1]->guard(), nullptr);
}

TEST(Parser, ArrayAssignmentSugar) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    var a: [int]int;
    procedure main() { a[1] := 2; }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  const Stmt *S = P->Procedures[0].Body[0];
  ASSERT_EQ(S->kind(), StmtKind::Assign);
  EXPECT_EQ(S->assignValue()->kind(), ExprKind::Store);
}

TEST(Parser, PrecedenceImpliesRightAssociative) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    procedure main() {
      var a: bool; var b: bool; var c: bool;
      assume a ==> b ==> c;
    }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  const Expr *E = P->Procedures[0].Body[0]->condition();
  ASSERT_EQ(E->binOp(), BinOp::Implies);
  // Right-assoc: a ==> (b ==> c).
  EXPECT_EQ(E->op0()->kind(), ExprKind::Var);
  EXPECT_EQ(E->op1()->binOp(), BinOp::Implies);
}

TEST(Parser, PrecedenceArithBindsTighterThanCmp) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    procedure main() {
      var x: int;
      assume x + 1 * 2 < 3 - x;
    }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  const Expr *E = P->Procedures[0].Body[0]->condition();
  EXPECT_EQ(E->binOp(), BinOp::Lt);
  EXPECT_EQ(E->op0()->binOp(), BinOp::Add);
  EXPECT_EQ(E->op0()->op1()->binOp(), BinOp::Mul);
}

TEST(Parser, ConditionalExpression) {
  AstContext Ctx;
  auto P = parseSrc(R"(
    procedure main() {
      var x: int;
      x := (if x > 0 then x else -x);
      assert x >= 0;
    }
  )",
                    Ctx);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Procedures[0].Body[0]->assignValue()->kind(), ExprKind::Ite);
}

TEST(Parser, SyntaxErrorsReported) {
  for (const char *Bad : {
           "procedure main() { x := ; }",
           "procedure main() { if x { } }",
           "var g int;",
           "procedure main( { }",
           "procedure main() { call ; }",
           "junk",
       }) {
    AstContext Ctx;
    DiagEngine Diags;
    EXPECT_FALSE(parseProgram(Bad, Ctx, Diags)) << Bad;
    EXPECT_TRUE(Diags.hasErrors()) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Type checker
//===----------------------------------------------------------------------===//

namespace {

void expectTypeError(const char *Src, const char *NeedleInMessage) {
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseProgram(Src, Ctx, Diags);
  ASSERT_TRUE(P) << "should parse: " << Diags.str();
  EXPECT_FALSE(typecheck(Ctx, *P, Diags)) << Src;
  EXPECT_NE(Diags.str().find(NeedleInMessage), std::string::npos)
      << "diagnostics were:\n"
      << Diags.str();
}

} // namespace

TEST(TypeCheck, UndeclaredVariable) {
  expectTypeError("procedure main() { x := 1; }", "undeclared");
}

TEST(TypeCheck, AssignMismatch) {
  expectTypeError(
      "procedure main() { var b: bool; b := 1; }", "mismatch");
}

TEST(TypeCheck, AssumeNeedsBool) {
  expectTypeError("procedure main() { assume 1; }", "must be bool");
}

TEST(TypeCheck, ArithNeedsInts) {
  expectTypeError(
      "procedure main() { var b: bool; var x: int; x := b + 1; }",
      "needs int or equal-width bitvector operands");
}

TEST(TypeCheck, EqNeedsSameTypes) {
  expectTypeError(
      "procedure main() { var b: bool; assume b == 1; }",
      "same type");
}

TEST(TypeCheck, CallUnknownProcedure) {
  expectTypeError("procedure main() { call nothere(); }", "undefined");
}

TEST(TypeCheck, CallArityMismatch) {
  expectTypeError(
      "procedure f(a: int) { } procedure main() { call f(); }",
      "takes 1");
}

TEST(TypeCheck, CallArgTypeMismatch) {
  expectTypeError(
      "procedure f(a: int) { } procedure main() { var b: bool; call f(b); }",
      "parameter");
}

TEST(TypeCheck, CallResultArity) {
  expectTypeError(
      "procedure f() returns (r: int) { r := 0; } "
      "procedure main() { call f(); }",
      "binds 0");
}

TEST(TypeCheck, CallDuplicateLhs) {
  expectTypeError(
      "procedure f() returns (r: int, s: int) { r := 0; s := 0; } "
      "procedure main() { var x: int; call x, x := f(); }",
      "bound twice");
}

TEST(TypeCheck, DuplicateGlobal) {
  expectTypeError("var g: int; var g: bool;", "duplicate global");
}

TEST(TypeCheck, DuplicateProcedure) {
  expectTypeError("procedure f() { } procedure f() { }",
                  "duplicate procedure");
}

TEST(TypeCheck, DuplicateLocal) {
  expectTypeError("procedure f(a: int) { var a: int; }", "duplicate");
}

TEST(TypeCheck, IndexTypeMismatch) {
  expectTypeError(
      "var a: [int]int; procedure main() { var b: bool; assume a[b] == 0; }",
      "index");
}

TEST(TypeCheck, LocalShadowsGlobalAllowed) {
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(
      "var g: int; procedure main() { var g: bool; g := true; }", Ctx,
      Diags);
  EXPECT_TRUE(P) << Diags.str();
}

TEST(TypeCheck, AnnotatesExpressionTypes) {
  AstContext Ctx;
  DiagEngine Diags;
  auto P = parseAndCheck(
      "procedure main() { var x: int; assume x + 1 > 0; }", Ctx, Diags);
  ASSERT_TRUE(P);
  const Expr *Cond = P->Procedures[0].Body[0]->condition();
  EXPECT_EQ(Cond->type(), Ctx.boolType());
  EXPECT_EQ(Cond->op0()->type(), Ctx.intType());
}
