//===- dataflow_test.cpp - Dataflow framework, prepass, and lint ------------===//

#include "analysis/Dataflow.h"
#include "analysis/Lint.h"
#include "analysis/Slicer.h"
#include "cfg/Lower.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

std::optional<Program> parse(const char *Src, AstContext &Ctx) {
  DiagEngine Diags;
  std::optional<Program> P = parseAndCheck(Src, Ctx, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

/// Lowers a checked program through the bounding pipeline, like the verifier
/// does before its prepass.
CfgProgram lower(AstContext &Ctx, const Program &P, ProcId &Root,
                 Symbol &ErrVar, unsigned Bound = 2) {
  BoundedInstance Inst = prepareBounded(Ctx, P, Ctx.sym("main"), Bound);
  CfgProgram Cfg = lowerToCfg(Ctx, Inst.Prog);
  Root = Cfg.findProc(Inst.Entry);
  ErrVar = Inst.ErrVar;
  EXPECT_NE(Root, InvalidProc);
  return Cfg;
}

CfgStmt assignStmt(Symbol Target, const Expr *Rhs) {
  CfgStmt S;
  S.Kind = CfgStmtKind::Assign;
  S.Target = Target;
  S.E = Rhs;
  return S;
}

CfgStmt assumeStmt(const Expr *Cond) {
  CfgStmt S;
  S.Kind = CfgStmtKind::Assume;
  S.E = Cond;
  return S;
}

/// Hand-built single-procedure program; labels are appended with explicit
/// successor lists.
struct CfgBuilder {
  CfgProgram Prog;

  explicit CfgBuilder(AstContext &Ctx) {
    Prog.Procs.resize(1);
    Prog.Procs[0].Name = Ctx.sym("p");
    Prog.Procs[0].Entry = 0;
  }
  LabelId add(CfgStmt S, std::vector<LabelId> Targets) {
    LabelId L = static_cast<LabelId>(Prog.Labels.size());
    Prog.Labels.push_back({std::move(S), std::move(Targets), 0, SrcLoc{}});
    Prog.Procs[0].Labels.push_back(L);
    return L;
  }
};

/// Test analysis: forward constant tracking built from the public pieces
/// (ConstEnv + evalConstExpr), ignoring calls — enough to exercise the
/// solver's join/boundary plumbing.
struct FwdConsts {
  using Value = ConstEnv;
  static constexpr FlowDirection Direction = FlowDirection::Forward;

  Value bottom() const { return ConstEnv::bottomEnv(); }
  Value boundary() const { return ConstEnv::topEnv(); }
  bool join(Value &Into, const Value &From) const {
    return Into.joinWith(From);
  }
  Value transfer(LabelId, const CfgStmt &S, const Value &In) const {
    if (In.isBottom())
      return In;
    Value Out = In;
    if (S.Kind == CfgStmtKind::Assign) {
      if (std::optional<ConstVal> V = evalConstExpr(S.E, In))
        Out.set(S.Target, *V);
      else
        Out.forget(S.Target);
    }
    return Out;
  }
};

/// Test analysis: plain backward liveness over assumes/assigns.
struct BwdLive {
  using Value = std::set<Symbol>;
  static constexpr FlowDirection Direction = FlowDirection::Backward;

  Value bottom() const { return {}; }
  Value boundary() const { return Exit; }
  bool join(Value &Into, const Value &From) const {
    bool Changed = false;
    for (Symbol V : From)
      Changed |= Into.insert(V).second;
    return Changed;
  }
  Value transfer(LabelId, const CfgStmt &S, const Value &Post) const {
    Value Pre = Post;
    if (S.Kind == CfgStmtKind::Assign) {
      Pre.erase(S.Target);
      collectExprVars(S.E, Pre);
    } else if (S.Kind == CfgStmtKind::Assume) {
      collectExprVars(S.E, Pre);
    }
    return Pre;
  }

  Value Exit;
};

} // namespace

//===----------------------------------------------------------------------===//
// Lattice pieces
//===----------------------------------------------------------------------===//

TEST(ConstEnv, JoinKeepsAgreeingBindings) {
  AstContext Ctx;
  Symbol X = Ctx.sym("x"), Y = Ctx.sym("y");

  ConstEnv A = ConstEnv::topEnv();
  A.set(X, ConstVal::ofInt(1));
  A.set(Y, ConstVal::ofInt(2));
  ConstEnv B = ConstEnv::topEnv();
  B.set(X, ConstVal::ofInt(1));
  B.set(Y, ConstVal::ofInt(3));

  EXPECT_TRUE(A.joinWith(B)); // y disagrees and is dropped
  EXPECT_EQ(A.get(X), ConstVal::ofInt(1));
  EXPECT_FALSE(A.get(Y).has_value());
  EXPECT_FALSE(A.joinWith(B)); // already the join: no change
}

TEST(ConstEnv, BottomIsJoinIdentity) {
  AstContext Ctx;
  Symbol X = Ctx.sym("x");
  ConstEnv A = ConstEnv::topEnv();
  A.set(X, ConstVal::ofInt(7));

  ConstEnv B = A;
  EXPECT_FALSE(B.joinWith(ConstEnv::bottomEnv())); // no change
  EXPECT_EQ(B.get(X), ConstVal::ofInt(7));

  ConstEnv C = ConstEnv::bottomEnv();
  EXPECT_TRUE(C.joinWith(A));
  EXPECT_FALSE(C.isBottom());
  EXPECT_EQ(C.get(X), ConstVal::ofInt(7));
}

TEST(EvalConstExpr, FoldsArithmeticAndComparisons) {
  AstContext Ctx;
  ConstEnv Env = ConstEnv::topEnv();
  Symbol X = Ctx.sym("x");
  Env.set(X, ConstVal::ofInt(6));
  const Expr *XV = Ctx.tVar(X, Ctx.intType());

  auto Eval = [&](const Expr *E) { return evalConstExpr(E, Env); };
  EXPECT_EQ(Eval(Ctx.tBinary(BinOp::Add, XV, Ctx.tInt(4))),
            ConstVal::ofInt(10));
  EXPECT_EQ(Eval(Ctx.tBinary(BinOp::Mul, XV, Ctx.tInt(-2))),
            ConstVal::ofInt(-12));
  EXPECT_EQ(Eval(Ctx.tBinary(BinOp::Lt, XV, Ctx.tInt(7))),
            ConstVal::ofBool(true));
  EXPECT_EQ(Eval(Ctx.tUnary(UnOp::Neg, XV)), ConstVal::ofInt(-6));
  // Euclidean semantics: -7 div 2 = -4, -7 mod 2 = 1.
  EXPECT_EQ(Eval(Ctx.tBinary(BinOp::Div, Ctx.tInt(-7), Ctx.tInt(2))),
            ConstVal::ofInt(-4));
  EXPECT_EQ(Eval(Ctx.tBinary(BinOp::Mod, Ctx.tInt(-7), Ctx.tInt(2))),
            ConstVal::ofInt(1));
  EXPECT_EQ(Eval(Ctx.tIte(Ctx.tBinary(BinOp::Eq, XV, Ctx.tInt(6)),
                          Ctx.tInt(1), Ctx.tInt(2))),
            ConstVal::ofInt(1));
}

TEST(EvalConstExpr, RefusesDivByZeroAndOverflow) {
  AstContext Ctx;
  ConstEnv Env = ConstEnv::topEnv();
  // x div 0 is uninterpreted in SMT; folding it would change verdicts.
  EXPECT_FALSE(
      evalConstExpr(Ctx.tBinary(BinOp::Div, Ctx.tInt(5), Ctx.tInt(0)), Env));
  EXPECT_FALSE(
      evalConstExpr(Ctx.tBinary(BinOp::Mod, Ctx.tInt(5), Ctx.tInt(0)), Env));
  EXPECT_FALSE(evalConstExpr(
      Ctx.tBinary(BinOp::Add, Ctx.tInt(INT64_MAX), Ctx.tInt(1)), Env));
  EXPECT_FALSE(evalConstExpr(
      Ctx.tBinary(BinOp::Mul, Ctx.tInt(INT64_MIN), Ctx.tInt(-1)), Env));
}

TEST(EvalConstExpr, ShortCircuitsThroughUnknowns) {
  AstContext Ctx;
  ConstEnv Env = ConstEnv::topEnv();
  const Expr *Unknown = Ctx.tVar(Ctx.sym("u"), Ctx.boolType());

  EXPECT_EQ(evalConstExpr(Ctx.tBinary(BinOp::And, Ctx.tBool(false), Unknown),
                          Env),
            ConstVal::ofBool(false));
  EXPECT_EQ(
      evalConstExpr(Ctx.tBinary(BinOp::Or, Unknown, Ctx.tBool(true)), Env),
      ConstVal::ofBool(true));
  EXPECT_EQ(evalConstExpr(
                Ctx.tBinary(BinOp::Implies, Ctx.tBool(false), Unknown), Env),
            ConstVal::ofBool(true));
  EXPECT_FALSE(evalConstExpr(
      Ctx.tBinary(BinOp::And, Ctx.tBool(true), Unknown), Env));
}

//===----------------------------------------------------------------------===//
// Worklist solver
//===----------------------------------------------------------------------===//

TEST(DataflowSolver, ForwardJoinAtDiamond) {
  AstContext Ctx;
  Symbol X = Ctx.sym("x"), Y = Ctx.sym("y");
  CfgBuilder B(Ctx);
  // x := 1; branch; {y := 5 | y := 9}; join
  LabelId L0 = B.add(assignStmt(X, Ctx.tInt(1)), {1, 2});
  B.add(assignStmt(Y, Ctx.tInt(5)), {3});
  B.add(assignStmt(Y, Ctx.tInt(9)), {3});
  LabelId L3 = B.add(assumeStmt(Ctx.tBool(true)), {});

  ProcFlow Flow(B.Prog, 0);
  FwdConsts A;
  DataflowSolver<FwdConsts> Solver(Flow, A);
  Solver.solve();

  EXPECT_FALSE(Solver.pre(L0).get(X).has_value());
  EXPECT_EQ(Solver.post(L0).get(X), ConstVal::ofInt(1));
  // x survives the join; y does not (5 vs 9).
  EXPECT_EQ(Solver.pre(L3).get(X), ConstVal::ofInt(1));
  EXPECT_FALSE(Solver.pre(L3).get(Y).has_value());
}

TEST(DataflowSolver, BackwardLivenessThroughBranch) {
  AstContext Ctx;
  Symbol X = Ctx.sym("x"), Y = Ctx.sym("y"), Z = Ctx.sym("z");
  const Type *IntTy = Ctx.intType();
  CfgBuilder B(Ctx);
  // x := z; branch; {assume x > 0 | y := x}; exit (y live at exit)
  LabelId L0 = B.add(assignStmt(X, Ctx.tVar(Z, IntTy)), {1, 2});
  LabelId L1 = B.add(
      assumeStmt(Ctx.tBinary(BinOp::Gt, Ctx.tVar(X, IntTy), Ctx.tInt(0))),
      {3});
  B.add(assignStmt(Y, Ctx.tVar(X, IntTy)), {3});
  LabelId L3 = B.add(assumeStmt(Ctx.tBool(true)), {});

  ProcFlow Flow(B.Prog, 0);
  BwdLive A;
  A.Exit = {Y};
  DataflowSolver<BwdLive> Solver(Flow, A);
  Solver.solve();

  EXPECT_TRUE(Solver.post(L3).count(Y));
  EXPECT_TRUE(Solver.pre(L1).count(X));
  // Before L0, x is about to be overwritten: only z (feeding x) is live.
  EXPECT_TRUE(Solver.pre(L0).count(Z));
  EXPECT_FALSE(Solver.pre(L0).count(X));
  EXPECT_TRUE(Solver.pre(L0).count(Y)); // y reaches exit on the assume path
}

TEST(ProcFlow, TopoOrderAndPreds) {
  AstContext Ctx;
  CfgBuilder B(Ctx);
  LabelId L0 = B.add(assumeStmt(Ctx.tBool(true)), {1, 2});
  LabelId L1 = B.add(assumeStmt(Ctx.tBool(true)), {3});
  LabelId L2 = B.add(assumeStmt(Ctx.tBool(true)), {3});
  LabelId L3 = B.add(assumeStmt(Ctx.tBool(true)), {});

  ProcFlow Flow(B.Prog, 0);
  EXPECT_EQ(Flow.size(), 4u);
  EXPECT_EQ(Flow.entry(), L0);
  EXPECT_EQ(Flow.topo().front(), L0);
  EXPECT_EQ(Flow.topo().back(), L3);
  EXPECT_EQ(Flow.preds(L0).size(), 0u);
  EXPECT_EQ(Flow.preds(L3).size(), 2u);
  EXPECT_EQ(Flow.succs(L1).size(), 1u);
  EXPECT_TRUE(Flow.indexOf(L1) < Flow.indexOf(L3));
  EXPECT_TRUE(Flow.indexOf(L2) < Flow.indexOf(L3));
}

//===----------------------------------------------------------------------===//
// Effects and relevance
//===----------------------------------------------------------------------===//

TEST(ProcEffects, TransitiveModAndUse) {
  AstContext Ctx;
  auto P = parse(R"(
    var a: int;
    var b: int;
    var c: int;
    procedure leaf() { a := b + 1; }
    procedure mid() { call leaf(); c := 0; }
    procedure main() { call mid(); assert a >= 0; }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);

  std::vector<ProcEffects> FX = computeProcEffects(Cfg);
  ProcId Mid = Cfg.findProc(Ctx.sym("mid"));
  ASSERT_NE(Mid, InvalidProc);
  EXPECT_TRUE(FX[Mid].ModGlobals.count(Ctx.sym("a"))); // via leaf
  EXPECT_TRUE(FX[Mid].ModGlobals.count(Ctx.sym("c")));
  EXPECT_TRUE(FX[Mid].UseGlobals.count(Ctx.sym("b"))); // via leaf
  EXPECT_FALSE(FX[Mid].ModGlobals.count(Ctx.sym("b")));
}

TEST(Relevance, ClosesOverAssignsAndCalls) {
  AstContext Ctx;
  auto P = parse(R"(
    var checked: int;
    var noise: int;
    procedure source(seed: int) returns (r: int) { r := seed * 2; }
    procedure main() {
      var t: int;
      var junk: int;
      call t := source(3);
      checked := t;
      junk := 99;
      noise := junk;
      assert checked >= 0;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);

  Relevance Rel(Cfg, Err);
  ProcId Main = Cfg.findProc(Ctx.sym("main"));
  ProcId Source = Cfg.findProc(Ctx.sym("source"));
  ASSERT_NE(Main, InvalidProc);
  ASSERT_NE(Source, InvalidProc);

  EXPECT_TRUE(Rel.relevantGlobal(Ctx.sym("checked")));
  EXPECT_TRUE(Rel.relevantGlobal(Err));
  EXPECT_TRUE(Rel.relevant(Main, Ctx.sym("t")));          // feeds checked
  EXPECT_TRUE(Rel.relevant(Source, Ctx.sym("r")));        // result flows out
  EXPECT_TRUE(Rel.relevant(Source, Ctx.sym("seed")));     // feeds r
  EXPECT_FALSE(Rel.relevantGlobal(Ctx.sym("noise")));     // never read
  EXPECT_FALSE(Rel.relevant(Main, Ctx.sym("junk")));      // only feeds noise
}

//===----------------------------------------------------------------------===//
// The prepass transformations
//===----------------------------------------------------------------------===//

TEST(Prepass, PrunesAssumeFalseBranches) {
  AstContext Ctx;
  auto P = parse(R"(
    var g: int;
    procedure expensive() { g := g + 1; assert g < 100; }
    procedure main() {
      var flag: bool;
      flag := false;
      if (flag) { call expensive(); }
      g := 1;
      assert g == 1;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  size_t ProcsBefore = Cfg.Procs.size();

  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err);
  // The guarded call is unreachable; `expensive` leaves the call graph.
  EXPECT_GT(R.PrunedLabels, 0u);
  EXPECT_EQ(R.ProcsAfter, ProcsBefore - 1);
  EXPECT_EQ(Cfg.findProc(Ctx.sym("expensive")), InvalidProc);
  EXPECT_EQ(Cfg.proc(Root).Name, Ctx.sym("main"));
  for (ProcId Q = 0; Q < Cfg.Procs.size(); ++Q)
    for (LabelId L : Cfg.proc(Q).Labels)
      EXPECT_EQ(Cfg.label(L).Proc, Q);
}

TEST(Prepass, SlicesIrrelevantStateAndElidesCalls) {
  AstContext Ctx;
  auto P = parse(R"(
    var watched: int;
    var scratch: int;
    procedure logger(v: int) { scratch := scratch + v; }
    procedure main() {
      watched := 1;
      call logger(7);
      call logger(8);
      assert watched == 1;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);

  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err);
  // `scratch` cannot reach the query: logger's body slices to skips, the
  // calls are elided, and logger drops out of the program.
  EXPECT_GT(R.SlicedStmts, 0u);
  EXPECT_EQ(R.ElidedCalls, 2u);
  EXPECT_EQ(Cfg.findProc(Ctx.sym("logger")), InvalidProc);
}

TEST(Prepass, SlicesDeadMapStores) {
  // A map store lowers to a whole-array assignment `log := log[i := 1]`; when
  // the map never reaches the query, the store is as sliceable as any scalar.
  AstContext Ctx;
  auto P = parse(R"(
    var log: [int]int;
    var data: [int]int;
    procedure main() {
      var i: int;
      havoc i;
      log[i] := 1;
      data[i] := 7;
      assert data[i] == 7;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  Relevance Rel(Cfg, Err);
  EXPECT_TRUE(Rel.relevantGlobal(Ctx.sym("data")));
  EXPECT_FALSE(Rel.relevantGlobal(Ctx.sym("log")));

  // Slice in isolation: the dead log store goes, the live data store stays.
  // (The full default pipeline is stronger still — GVN folds the select-of-
  // store to 7 == 7 and the entire body collapses, which the verdict check
  // below covers.)
  PrepassOptions SliceOnly;
  SliceOnly.Passes = "slice";
  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err, SliceOnly);
  EXPECT_GT(R.SlicedStmts, 0u);
  bool SawDataStore = false, SawLogStore = false;
  for (const CfgLabel &L : Cfg.Labels)
    if (L.Stmt.Kind == CfgStmtKind::Assign) {
      SawDataStore |= Ctx.name(L.Stmt.Target) == "data";
      SawLogStore |= Ctx.name(L.Stmt.Target) == "log";
    }
  EXPECT_TRUE(SawDataStore);
  EXPECT_FALSE(SawLogStore);

  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  EXPECT_EQ(verifyProgram(Ctx, *P, Ctx.sym("main"), Opts).Result.Outcome,
            Verdict::Safe);
}

TEST(Prepass, KeepsAliasingMapStores) {
  // `m[i] := 2` with unconstrained i may overwrite m[0]. The slicer works at
  // whole-variable granularity, so the aliasing store is relevant and must
  // survive — dropping it would flip this bug to safe.
  AstContext Ctx;
  auto P = parse(R"(
    var m: [int]int;
    procedure main() {
      var i: int;
      havoc i;
      m[0] := 1;
      m[i] := 2;
      assert m[0] == 1;
    }
  )",
                 Ctx);
  VerifierOptions On;
  On.Engine.Strategy.Kind = MergeStrategyKind::First;
  VerifierOptions Off = On;
  Off.UsePrepass = false;
  EXPECT_EQ(verifyProgram(Ctx, *P, Ctx.sym("main"), On).Result.Outcome,
            Verdict::Bug);
  EXPECT_EQ(verifyProgram(Ctx, *P, Ctx.sym("main"), Off).Result.Outcome,
            Verdict::Bug);
}

TEST(Prepass, MapRelevanceCrossesCalls) {
  // The store happens in the callee through a parameter pair; the relevance
  // closure must pull both actuals at the call site, and the sliced program
  // must still prove the read.
  AstContext Ctx;
  auto P = parse(R"(
    var store: [int]int;
    var trace: [int]int;
    procedure put(k: int, v: int) {
      store[k] := v;
      trace[v] := k;
    }
    procedure main() {
      var x: int;
      call put(3, 40);
      x := store[3];
      assert x == 40;
    }
  )",
                 Ctx);
  ProcId Root;
  Symbol Err;
  CfgProgram Cfg = lower(Ctx, *P, Root, Err);
  Relevance Rel(Cfg, Err);
  ProcId Put = Cfg.findProc(Ctx.sym("put"));
  ASSERT_NE(Put, InvalidProc);
  EXPECT_TRUE(Rel.relevantGlobal(Ctx.sym("store")));
  EXPECT_TRUE(Rel.relevant(Put, Ctx.sym("k")));
  EXPECT_TRUE(Rel.relevant(Put, Ctx.sym("v")));
  EXPECT_FALSE(Rel.relevantGlobal(Ctx.sym("trace")));

  PrepassReport R = runPrepass(Ctx, Cfg, Root, Err);
  EXPECT_GT(R.SlicedStmts, 0u); // the trace store goes

  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  EXPECT_EQ(verifyProgram(Ctx, *P, Ctx.sym("main"), Opts).Result.Outcome,
            Verdict::Safe);
}

TEST(Prepass, SpliceSkipsCompactsChains) {
  AstContext Ctx;
  CfgBuilder B(Ctx);
  Symbol X = Ctx.sym("x");
  // assign; skip; skip; assign; skip(return)
  B.add(assignStmt(X, Ctx.tInt(1)), {1});
  B.add(assumeStmt(Ctx.tBool(true)), {2});
  B.add(assumeStmt(Ctx.tBool(true)), {3});
  B.add(assignStmt(X, Ctx.tInt(2)), {4});
  B.add(assumeStmt(Ctx.tBool(true)), {});

  unsigned Removed = spliceSkips(B.Prog);
  EXPECT_EQ(Removed, 3u);
  ASSERT_EQ(B.Prog.Labels.size(), 2u);
  // assign(1) now flows straight to assign(2), which returns.
  EXPECT_EQ(B.Prog.Labels[0].Targets, std::vector<LabelId>{1});
  EXPECT_TRUE(B.Prog.Labels[1].Targets.empty());
}

TEST(Prepass, KeepsBlockingSkeletonExact) {
  // A branch where one arm blocks (assume false via unreachable code) and
  // one arm reaches the bug: pruning must keep the bug reachable.
  AstContext Ctx;
  auto P = parse(R"(
    var g: int;
    procedure main() {
      havoc g;
      if (g > 0) {
        assert g < 0;
      }
    }
  )",
                 Ctx);
  VerifierOptions On;
  On.Engine.Strategy.Kind = MergeStrategyKind::First;
  VerifierOptions Off = On;
  Off.UsePrepass = false;
  auto ROn = verifyProgram(Ctx, *P, Ctx.sym("main"), On);
  auto ROff = verifyProgram(Ctx, *P, Ctx.sym("main"), Off);
  EXPECT_EQ(ROn.Result.Outcome, Verdict::Bug);
  EXPECT_EQ(ROff.Result.Outcome, Verdict::Bug);
}

TEST(Prepass, RecordsStats) {
  AstContext Ctx;
  auto P = parse(R"(
    var g: int;
    procedure main() { g := 2; assert g == 2; }
  )",
                 Ctx);
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  auto R = verifyProgram(Ctx, *P, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
  EXPECT_EQ(R.PrepassStats.get("prepass.labels.before"),
            static_cast<int64_t>(R.NumLabels));
  EXPECT_EQ(R.PrepassStats.get("prepass.labels.after"),
            static_cast<int64_t>(R.NumLabelsSolved));
  EXPECT_LT(R.NumLabelsSolved, R.NumLabels);
  EXPECT_FALSE(R.Prepass.str().empty());
}

TEST(Prepass, DisabledLeavesProgramAlone) {
  AstContext Ctx;
  auto P = parse(R"(
    var g: int;
    procedure main() { g := 2; assert g == 2; }
  )",
                 Ctx);
  VerifierOptions Opts;
  Opts.UsePrepass = false;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  auto R = verifyProgram(Ctx, *P, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
  EXPECT_EQ(R.NumLabelsSolved, R.NumLabels);
  EXPECT_EQ(R.Prepass.LabelsBefore, 0u);
  EXPECT_EQ(R.PrepassStats.counters().size(), 0u);
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

namespace {

LintReport lintSource(const char *Src, std::vector<Diag> *DiagsOut = nullptr) {
  AstContext Ctx;
  auto P = parse(Src, Ctx);
  DiagEngine Diags;
  LintReport R = lintProgram(Ctx, *P, Diags);
  // Error-severity diagnostics must line up with the report's error count.
  EXPECT_EQ(Diags.hasErrors(), R.hasErrors());
  if (DiagsOut)
    *DiagsOut = Diags.all();
  return R;
}

bool anyDiagContains(const std::vector<Diag> &Diags, const std::string &Needle,
                     unsigned Line = 0) {
  for (const Diag &D : Diags)
    if (D.Message.find(Needle) != std::string::npos &&
        (Line == 0 || D.Loc.Line == Line))
      return true;
  return false;
}

} // namespace

TEST(Lint, FlagsUseBeforeDef) {
  std::vector<Diag> Diags;
  LintReport R = lintSource(R"(
    procedure main() {
      var x: int;
      var y: int;
      y := x + 1;
      assert y > 0;
    }
  )",
                            &Diags);
  EXPECT_EQ(R.UseBeforeDef, 1u);
  EXPECT_TRUE(anyDiagContains(Diags, "'x' may be used before", 5));
  // Use-before-def is error severity and shows up in the structured report.
  EXPECT_TRUE(R.hasErrors());
  EXPECT_EQ(R.errors(), 1u);
  EXPECT_EQ(R.warnings(), 0u);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Check, LintCheck::UseBeforeDef);
  EXPECT_EQ(R.Findings[0].Severity, LintSeverity::Error);
  EXPECT_EQ(R.Findings[0].Loc.Line, 5u);
}

TEST(Lint, SeverityMapping) {
  EXPECT_EQ(lintSeverityOf(LintCheck::UseBeforeDef), LintSeverity::Error);
  EXPECT_EQ(lintSeverityOf(LintCheck::UndeclaredHavoc), LintSeverity::Error);
  EXPECT_EQ(lintSeverityOf(LintCheck::UnreachableCode), LintSeverity::Warning);
  EXPECT_EQ(lintSeverityOf(LintCheck::DeadStore), LintSeverity::Warning);
}

TEST(Lint, DefiniteAssignmentJoinsBranches) {
  // x assigned on both arms: fine. z assigned on one arm only: flagged.
  std::vector<Diag> Diags;
  LintReport R = lintSource(R"(
    procedure main() {
      var x: int;
      var z: int;
      if (*) { x := 1; z := 1; } else { x := 2; }
      assert x + z > 0;
    }
  )",
                            &Diags);
  EXPECT_EQ(R.UseBeforeDef, 1u);
  EXPECT_TRUE(anyDiagContains(Diags, "'z' may be used before"));
  EXPECT_FALSE(anyDiagContains(Diags, "'x' may be used before"));
}

TEST(Lint, HavocAndCallResultsCountAsDefs) {
  LintReport R = lintSource(R"(
    procedure mk() returns (r: int) { r := 3; }
    procedure main() {
      var a: int;
      var b: int;
      havoc a;
      call b := mk();
      assert a + b > 0;
    }
  )");
  EXPECT_EQ(R.UseBeforeDef, 0u);
}

TEST(Lint, FlagsUnreachableCode) {
  std::vector<Diag> Diags;
  LintReport R = lintSource(R"(
    var g: int;
    procedure main() {
      g := 1;
      return;
      g := 2;
    }
  )",
                            &Diags);
  EXPECT_EQ(R.UnreachableCode, 1u);
  EXPECT_TRUE(anyDiagContains(Diags, "unreachable code", 6));
}

TEST(Lint, FlagsDeadStores) {
  std::vector<Diag> Diags;
  LintReport R = lintSource(R"(
    var g: int;
    procedure main() {
      var t: int;
      t := 5;
      t := 6;
      g := t;
    }
  )",
                            &Diags);
  EXPECT_EQ(R.DeadStores, 1u);
  EXPECT_TRUE(anyDiagContains(Diags, "dead store to 't'", 5));
  // Dead stores are warnings: they never gate the lint exit code.
  EXPECT_FALSE(R.hasErrors());
  EXPECT_EQ(R.warnings(), 1u);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Check, LintCheck::DeadStore);
  EXPECT_EQ(R.Findings[0].Severity, LintSeverity::Warning);
}

TEST(Lint, GlobalStoresAreNeverDead) {
  // Globals outlive the procedure; overwriting one is not a dead store.
  LintReport R = lintSource(R"(
    var g: int;
    procedure main() {
      g := 1;
      g := 2;
    }
  )");
  EXPECT_EQ(R.DeadStores, 0u);
}

TEST(Lint, LoopCarriedUsesAreNotDeadStores) {
  LintReport R = lintSource(R"(
    var sum: int;
    procedure main() {
      var i: int;
      i := 0;
      while (i < 3) {
        sum := sum + i;
        i := i + 1;
      }
    }
  )");
  EXPECT_EQ(R.DeadStores, 0u);
  EXPECT_EQ(R.UseBeforeDef, 0u);
}

TEST(Lint, FlagsHavocOfUndeclaredVariable) {
  // The type checker rejects this for parsed programs, so build it directly
  // (the builder API skips checking).
  AstContext Ctx;
  Program Prog;
  Procedure Main;
  Main.Name = Ctx.sym("main");
  Main.Body.push_back(Ctx.havoc({Ctx.sym("ghost")}, SrcLoc{3, 1}));
  Prog.Procedures.push_back(std::move(Main));

  DiagEngine Diags;
  LintReport R = lintProgram(Ctx, Prog, Diags);
  EXPECT_EQ(R.UndeclaredHavocs, 1u);
  EXPECT_TRUE(anyDiagContains(Diags.all(), "havoc of undeclared variable "
                                           "'ghost'"));
}

TEST(Lint, CleanProgramHasNoWarnings) {
  LintReport R = lintSource(R"(
    var g: int;
    procedure bump(k: int) returns (r: int) { r := g + k; }
    procedure main() {
      var v: int;
      call v := bump(2);
      g := v;
      assert g >= v;
    }
  )");
  EXPECT_EQ(R.total(), 0u);
  EXPECT_TRUE(R.Findings.empty());
  EXPECT_FALSE(R.hasErrors());
}
