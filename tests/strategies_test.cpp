//===- strategies_test.cpp - Merging strategies (Section 3.4) ---------------===//

#include "cfg/Lower.h"
#include "core/Strategies.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"
#include "workload/Chain.h"
#include "workload/SdvGen.h"

#include <gtest/gtest.h>

using namespace rmt;

namespace {

struct Inliner {
  AstContext &Ctx;
  CfgProgram &Cfg;
  TermArena Arena;
  VcContext Vc;
  DisjointAnalysis Disj;
  ConsistencyChecker Check;
  std::unique_ptr<MergeStrategy> Strategy;
  size_t Merged = 0;

  Inliner(AstContext &Ctx, CfgProgram &Cfg, const StrategyOptions &Opts,
          ProcId Root)
      : Ctx(Ctx), Cfg(Cfg), Vc(Ctx, Cfg, Arena), Disj(Cfg), Check(Vc, Disj),
        Strategy(createStrategy(Opts, Cfg, Disj, Root)) {}

  /// Fully inlines from \p Root (the Fig. 17 regime: "keep inlining until
  /// all dynamic instances get inlined"). Returns #nodes.
  size_t fullyInline(ProcId Root) {
    NodeId R = Vc.genPvc(Root);
    Check.onNewNode(R);
    Strategy->noteNewNode(R, InvalidEdge);
    while (!Vc.openEdges().empty()) {
      EdgeId E = Vc.openEdges().front();
      std::optional<NodeId> Pick = Strategy->pick(Vc, Check, E);
      NodeId N;
      if (Pick) {
        EXPECT_TRUE(Check.canBind(E, *Pick))
            << "strategy returned an incompatible candidate";
        N = *Pick;
        ++Merged;
      } else {
        N = Vc.genPvc(Vc.edge(E).Callee);
        Check.onNewNode(N);
        Strategy->noteNewNode(N, E);
      }
      Vc.bindEdge(E, N);
      Check.onBind(E, N);
    }
    EXPECT_TRUE(Check.isConsistentFull());
    return Vc.numInlined();
  }
};

struct ChainFixture {
  AstContext Ctx;
  CfgProgram Cfg;
  ProcId Root;

  explicit ChainFixture(unsigned N) {
    Program P = makeChainProgram(Ctx, N);
    BoundedInstance B = prepareBounded(Ctx, P, Ctx.sym("main"), 1);
    Cfg = lowerToCfg(Ctx, B.Prog);
    Root = Cfg.findProc(Ctx.sym("main"));
  }
};

size_t fullTreeSize(const CfgProgram &Cfg, ProcId Root) {
  // #instances of the fully unrolled call tree.
  std::vector<ProcId> Work{Root};
  size_t Count = 0;
  while (!Work.empty()) {
    ProcId P = Work.back();
    Work.pop_back();
    ++Count;
    for (ProcId C : Cfg.calleesOf(P))
      Work.push_back(C);
  }
  return Count;
}

} // namespace

TEST(StrategyKinds, ParseAndNames) {
  EXPECT_EQ(parseStrategyKind("first"), MergeStrategyKind::First);
  EXPECT_EQ(parseStrategyKind("opt"), MergeStrategyKind::Opt);
  EXPECT_EQ(parseStrategyKind("nope"), std::nullopt);
  EXPECT_STREQ(strategyName(MergeStrategyKind::MaxC), "maxc");
  EXPECT_STREQ(strategyName(MergeStrategyKind::RandomPick), "randompick");
}

TEST(NoneStrategy, ProducesTheFullTree) {
  ChainFixture F(4);
  StrategyOptions Opts;
  Opts.Kind = MergeStrategyKind::None;
  Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
  size_t Nodes = I.fullyInline(F.Root);
  EXPECT_EQ(Nodes, fullTreeSize(F.Cfg, F.Root));
  EXPECT_EQ(I.Merged, 0u);
}

TEST(FirstStrategy, ChainCompressesToLinear) {
  // Fig. 2 / Fig. 3: tree is 2^(N+2)-1-ish, the DAG is N+2 nodes.
  ChainFixture F(6);
  StrategyOptions Opts;
  Opts.Kind = MergeStrategyKind::First;
  Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
  size_t Nodes = I.fullyInline(F.Root);
  EXPECT_EQ(Nodes, 8u); // main, P0..P6
  EXPECT_GT(fullTreeSize(F.Cfg, F.Root), 100u);
}

TEST(MaxCStrategy, AlsoLinearOnChain) {
  ChainFixture F(6);
  StrategyOptions Opts;
  Opts.Kind = MergeStrategyKind::MaxC;
  Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
  EXPECT_EQ(I.fullyInline(F.Root), 8u);
}

TEST(OptStrategy, MatchesFirstOnChain) {
  ChainFixture F(5);
  StrategyOptions Opts;
  Opts.Kind = MergeStrategyKind::Opt;
  Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
  EXPECT_EQ(I.fullyInline(F.Root), 7u);
}

TEST(OptStrategy, PrecomputeSizesOnChain) {
  ChainFixture F(5);
  DisjointAnalysis Disj(F.Cfg);
  OptPrecomputeStats S = precomputeOptDag(F.Cfg, Disj, F.Root, 1u << 20);
  EXPECT_TRUE(S.Succeeded);
  EXPECT_EQ(S.TreeSize, fullTreeSize(F.Cfg, F.Root));
  EXPECT_EQ(S.DagSize, 7u);
}

TEST(OptStrategy, OverflowFallsBackGracefully) {
  ChainFixture F(10);
  DisjointAnalysis Disj(F.Cfg);
  OptPrecomputeStats S = precomputeOptDag(F.Cfg, Disj, F.Root, 100);
  EXPECT_FALSE(S.Succeeded); // the paper's OPT T/O row
  // The strategy still works (FIRST fallback).
  StrategyOptions Opts;
  Opts.Kind = MergeStrategyKind::Opt;
  Opts.MaxTreeNodes = 100;
  Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
  EXPECT_EQ(I.fullyInline(F.Root), 12u);
}

TEST(RandomStrategies, ValidAndDeterministicPerSeed) {
  for (MergeStrategyKind Kind :
       {MergeStrategyKind::Random, MergeStrategyKind::RandomPick}) {
    size_t First = 0;
    for (int Round = 0; Round < 2; ++Round) {
      ChainFixture F(5);
      StrategyOptions Opts;
      Opts.Kind = Kind;
      Opts.Seed = 99;
      Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
      size_t Nodes = I.fullyInline(F.Root);
      if (Round == 0)
        First = Nodes;
      else
        EXPECT_EQ(Nodes, First) << strategyName(Kind);
    }
  }
}

TEST(RandomPick, NeverWorseThanTreeNeverBetterThanOpt) {
  ChainFixture F(5);
  DisjointAnalysis Disj(F.Cfg);
  OptPrecomputeStats Opt = precomputeOptDag(F.Cfg, Disj, F.Root, 1u << 20);
  StrategyOptions Opts;
  Opts.Kind = MergeStrategyKind::RandomPick;
  Opts.Seed = 5;
  Inliner I(F.Ctx, F.Cfg, Opts, F.Root);
  size_t Nodes = I.fullyInline(F.Root);
  EXPECT_LE(Nodes, Opt.TreeSize);
  EXPECT_GE(Nodes, Opt.DagSize);
}

TEST(StrategyOrdering, PaperFig17ShapeOnDriver) {
  // On an SDV-like instance: none (tree) >= random >= randompick >= first,
  // and first is within a small factor of opt. (The exact paper deviations
  // are corpus-dependent; the ordering is the reproducible shape.)
  AstContext Ctx;
  SdvParams Params;
  Params.Seed = 7;
  Params.NumHandlers = 3;
  Params.NumUtils = 3;
  Params.UtilDepth = 4;
  Program P = makeSdvProgram(Ctx, Params);
  BoundedInstance B = prepareBounded(Ctx, P, Ctx.sym("main"), 1);
  CfgProgram Cfg = lowerToCfg(Ctx, B.Prog);
  ProcId Root = Cfg.findProc(Ctx.sym("main"));

  auto SizeWith = [&](MergeStrategyKind Kind) {
    StrategyOptions Opts;
    Opts.Kind = Kind;
    Opts.Seed = 3;
    Inliner I(Ctx, Cfg, Opts, Root);
    return I.fullyInline(Root);
  };

  size_t Tree = SizeWith(MergeStrategyKind::None);
  size_t First = SizeWith(MergeStrategyKind::First);
  size_t Rand = SizeWith(MergeStrategyKind::RandomPick);
  size_t Opt = SizeWith(MergeStrategyKind::Opt);

  EXPECT_GT(Tree, First);
  EXPECT_LE(Opt, First * 2); // first stays close to opt
  EXPECT_LE(First, Rand * 2 + 8);
  EXPECT_LE(Rand, Tree);
}
