//===- support_test.cpp - Unit tests for src/support ----------------------===//

#include "support/Bitset.h"
#include "support/Diag.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/StringInterner.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

using namespace rmt;

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, InterningIsIdempotent) {
  StringInterner I;
  Symbol A = I.intern("foo");
  Symbol B = I.intern("foo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(I.str(A), "foo");
  EXPECT_EQ(I.size(), 1u);
}

TEST(StringInterner, DistinctStringsGetDistinctSymbols) {
  StringInterner I;
  Symbol A = I.intern("foo");
  Symbol B = I.intern("bar");
  EXPECT_NE(A, B);
  EXPECT_EQ(I.str(B), "bar");
}

TEST(StringInterner, ManyStringsSurviveGrowth) {
  // Regression guard for the SSO/string_view-key dangling hazard: intern
  // thousands of short strings (SSO territory) and verify lookups still hit.
  StringInterner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 5000; ++K)
    Syms.push_back(I.intern("v" + std::to_string(K)));
  for (int K = 0; K < 5000; ++K) {
    EXPECT_EQ(I.intern("v" + std::to_string(K)), Syms[K]);
    EXPECT_EQ(I.str(Syms[K]), "v" + std::to_string(K));
  }
}

TEST(StringInterner, FreshenAvoidsCollisions) {
  StringInterner I;
  Symbol A = I.intern("x");
  Symbol B = I.freshen("x");
  EXPECT_NE(A, B);
  EXPECT_NE(I.str(A), I.str(B));
}

TEST(StringInterner, InvalidSymbolIsDetectable) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  EXPECT_TRUE(Symbol(0).isValid());
}

TEST(StringInterner, SymbolsHashable) {
  StringInterner I;
  std::unordered_set<Symbol> Set;
  Set.insert(I.intern("a"));
  Set.insert(I.intern("b"));
  Set.insert(I.intern("a"));
  EXPECT_EQ(Set.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng G(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(G.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng G(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 300; ++I)
    Seen.insert(G.below(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, RangeIsInclusive) {
  Rng G(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = G.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng G(3);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(G.chance(0, 256));
    EXPECT_TRUE(G.chance(256, 256));
  }
}

TEST(Rng, RealInUnitInterval) {
  Rng G(5);
  for (int I = 0; I < 1000; ++I) {
    double V = G.real();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

//===----------------------------------------------------------------------===//
// Bitset
//===----------------------------------------------------------------------===//

TEST(Bitset, SetAndTest) {
  Bitset B;
  EXPECT_FALSE(B.test(5));
  B.set(5);
  EXPECT_TRUE(B.test(5));
  EXPECT_FALSE(B.test(4));
  EXPECT_FALSE(B.test(500)); // out-of-range reads are zero
}

TEST(Bitset, GrowsOnWrite) {
  Bitset B;
  B.set(1000);
  EXPECT_TRUE(B.test(1000));
  EXPECT_EQ(B.count(), 1u);
}

TEST(Bitset, OrWith) {
  Bitset A, B;
  A.set(1);
  B.set(64);
  B.set(200);
  A.orWith(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_TRUE(A.test(64));
  EXPECT_TRUE(A.test(200));
  EXPECT_EQ(A.count(), 3u);
}

TEST(Bitset, Intersects) {
  Bitset A, B;
  A.set(3);
  B.set(130);
  EXPECT_FALSE(A.intersects(B));
  B.set(3);
  EXPECT_TRUE(A.intersects(B));
}

TEST(Bitset, EmptyAndCount) {
  Bitset B;
  EXPECT_TRUE(B.empty());
  B.set(0);
  B.set(63);
  B.set(64);
  EXPECT_FALSE(B.empty());
  EXPECT_EQ(B.count(), 3u);
}

//===----------------------------------------------------------------------===//
// Diag
//===----------------------------------------------------------------------===//

TEST(Diag, CountsOnlyErrors) {
  DiagEngine D;
  D.warning({1, 2}, "w");
  D.note({1, 3}, "n");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 4}, "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 3u);
}

TEST(Diag, Rendering) {
  DiagEngine D;
  D.error({3, 7}, "boom");
  EXPECT_EQ(D.str(), "3:7: error: boom\n");
  SrcLoc None;
  EXPECT_EQ(None.str(), "<no-loc>");
}

//===----------------------------------------------------------------------===//
// Stats / Table / Timer
//===----------------------------------------------------------------------===//

TEST(Stats, AddAndMerge) {
  Stats A, B;
  A.add("x", 2);
  A.add("x");
  B.add("x", 10);
  B.add("y");
  B.addTime("t", 0.5);
  A.merge(B);
  EXPECT_EQ(A.get("x"), 13);
  EXPECT_EQ(A.get("y"), 1);
  EXPECT_EQ(A.get("absent"), 0);
  EXPECT_DOUBLE_EQ(A.getTime("t"), 0.5);
}

TEST(Stats, StrIsSortedAndAligned) {
  Stats S;
  S.add("zeta", 7);
  S.add("alpha.long.counter.name", 1);
  S.add("mid", 3);
  S.addTime("beta.time", 0.25);
  std::string Text = S.str();

  // Counters render name-sorted, then times; every value starts in the same
  // column (two spaces past the longest name).
  size_t A = Text.find("alpha.long.counter.name");
  size_t M = Text.find("mid");
  size_t Z = Text.find("zeta");
  size_t B = Text.find("beta.time");
  ASSERT_NE(A, std::string::npos);
  ASSERT_NE(B, std::string::npos);
  EXPECT_LT(A, M);
  EXPECT_LT(M, Z);
  EXPECT_LT(Z, B); // times after counters

  std::vector<size_t> ValueCols;
  size_t LineStart = 0;
  while (LineStart < Text.size()) {
    size_t LineEnd = Text.find('\n', LineStart);
    std::string Line = Text.substr(LineStart, LineEnd - LineStart);
    size_t Col = Line.find_last_of(' ');
    ASSERT_NE(Col, std::string::npos);
    ValueCols.push_back(Col + 1);
    LineStart = LineEnd + 1;
  }
  ASSERT_EQ(ValueCols.size(), 4u);
  for (size_t C : ValueCols)
    EXPECT_EQ(C, ValueCols.front());

  // Deterministic: same bag, same rendering.
  EXPECT_EQ(Text, S.str());
}

TEST(Stats, ToJson) {
  Stats S;
  S.add("b", 2);
  S.add("a", -1);
  S.addTime("t", 0.5);
  EXPECT_EQ(S.toJson(),
            "{\"counters\":{\"a\":-1,\"b\":2},\"times\":{\"t\":0.5}}");
  Stats Empty;
  EXPECT_EQ(Empty.toJson(), "{\"counters\":{},\"times\":{}}");
}

TEST(Stats, ToJsonEscapesKeys) {
  Stats S;
  S.add("weird \"key\"\\n", 1);
  std::string Json = S.toJson();
  EXPECT_NE(Json.find("weird \\\"key\\\"\\\\n"), std::string::npos);
}

TEST(Table, AlignedAndCsv) {
  Table T({"name", "value"});
  T.row();
  T.cell(std::string("alpha"));
  T.cell(int64_t(42));
  T.row();
  T.cell(std::string("beta,x"));
  T.cell(3.14159, 2);
  std::string Text = T.str();
  EXPECT_NE(Text.find("alpha"), std::string::npos);
  EXPECT_NE(Text.find("42"), std::string::npos);
  EXPECT_NE(Text.find("3.14"), std::string::npos);
  std::string Csv = T.csv();
  EXPECT_NE(Csv.find("\"beta,x\""), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(Timer, DeadlineSemantics) {
  Deadline None;
  EXPECT_FALSE(None.enabled());
  EXPECT_FALSE(None.expired());
  EXPECT_GT(None.remaining(), 1e100);

  Deadline Tight(1e-9);
  EXPECT_TRUE(Tight.enabled());
  // A nanosecond budget has certainly elapsed by now.
  EXPECT_TRUE(Tight.expired());
  EXPECT_EQ(Tight.remaining(), 0.0);

  Stopwatch W;
  EXPECT_GE(W.seconds(), 0.0);
}
