//===- telemetry_test.cpp - Trace/metrics subsystem tests -------------------===//
//
// Coverage for support/Trace.h: JSON string escaping (labels containing
// quotes, backslashes, newlines), balanced Begin/End span pairs under RAII
// nesting, ring-buffer overflow keeping the newest events, and a tiny JSON
// parser that validates the emitted Chrome-trace and stats documents —
// including the ones produced by a real end-to-end verifyProgram run.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "parser/Parser.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace rmt;

namespace {

//===----------------------------------------------------------------------===//
// A tiny validating JSON parser (no values built — syntax check only)
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : S(Text) {}

  bool valid() {
    skipWs();
    return value() && (skipWs(), Pos == S.size());
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}')
      return ++Pos, true;
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']')
      return ++Pos, true;
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"')
        return ++Pos, true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // raw control characters are invalid JSON
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= S.size() || !std::isxdigit(
                                       static_cast<unsigned char>(S[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start;
  }

  bool literal(std::string_view L) {
    if (S.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  std::string_view S;
  size_t Pos = 0;
};

bool isValidJson(const std::string &Text) {
  return JsonChecker(Text).valid();
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON escaping
//===----------------------------------------------------------------------===//

TEST(JsonEscape, QuotesBackslashesNewlines) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonEscape, ControlCharactersEscapedAsUnicode) {
  EXPECT_EQ(jsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // Embedded NUL must not truncate the escaped output.
  EXPECT_EQ(jsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, RoundTripsThroughTheChecker) {
  std::string Nasty = "\"quotes\" \\slashes\\ \nnewlines\n\x02 end";
  std::string Doc = "{\"k\":\"" + jsonEscape(Nasty) + "\"}";
  EXPECT_TRUE(isValidJson(Doc)) << Doc;
  // Unescaped, the same label breaks the document — the checker is not a rubber stamp.
  EXPECT_FALSE(isValidJson("{\"k\":\"" + Nasty + "\"}"));
}

//===----------------------------------------------------------------------===//
// Span recording
//===----------------------------------------------------------------------===//

TEST(Trace, BeginEndPairsBalanceAndNest) {
  Trace T(64);
  T.setEnabled(true);
  {
    TraceSpan Outer(&T, "outer", {{"k", 1}});
    T.instant("tick");
    {
      TraceSpan Inner(&T, "inner");
      Inner.note({"result", "ok"});
    }
  }
  ASSERT_EQ(T.numEvents(), 5u);
  EXPECT_EQ(T.openSpans(), 0u);

  // outer-B, tick-i, inner-B, inner-E, outer-E: LIFO nesting, name carried
  // onto the End events, note() args on the inner End.
  EXPECT_EQ(T.event(0).Ph, TraceEvent::Phase::Begin);
  EXPECT_EQ(T.event(0).Name, "outer");
  EXPECT_EQ(T.event(1).Ph, TraceEvent::Phase::Instant);
  EXPECT_EQ(T.event(2).Name, "inner");
  EXPECT_EQ(T.event(3).Ph, TraceEvent::Phase::End);
  EXPECT_EQ(T.event(3).Name, "inner");
  ASSERT_EQ(T.event(3).Args.size(), 1u);
  EXPECT_EQ(T.event(3).Args[0].Str, "ok");
  EXPECT_EQ(T.event(4).Ph, TraceEvent::Phase::End);
  EXPECT_EQ(T.event(4).Name, "outer");

  // Timestamps are monotone.
  for (size_t I = 1; I < T.numEvents(); ++I)
    EXPECT_GE(T.event(I).Micros, T.event(I - 1).Micros);

  // Aggregates saw one of each.
  ASSERT_EQ(T.spanAggregates().count("outer"), 1u);
  EXPECT_EQ(T.spanAggregates().at("outer").Count, 1u);
  EXPECT_GE(T.spanAggregates().at("outer").Seconds,
            T.spanAggregates().at("inner").Seconds);
}

TEST(Trace, DisabledAndNullAreNoOps) {
  Trace T(16);
  ASSERT_FALSE(T.enabled()); // disabled is the default
  {
    TraceSpan S(&T, "never");
    T.instant("never");
    T.begin("never");
    T.end();
  }
  EXPECT_EQ(T.numEvents(), 0u);
  EXPECT_TRUE(T.spanAggregates().empty());
  {
    TraceSpan S(nullptr, "null-trace"); // must not crash
    S.note({"k", 1});
  }
}

TEST(Trace, EndWithoutBeginIsIgnored) {
  Trace T(16);
  T.setEnabled(true);
  T.end();
  EXPECT_EQ(T.numEvents(), 0u);
}

//===----------------------------------------------------------------------===//
// Ring buffer overflow
//===----------------------------------------------------------------------===//

TEST(Trace, OverflowKeepsNewestEvents) {
  Trace T(8);
  T.setEnabled(true);
  for (int I = 0; I < 20; ++I)
    T.instant("e" + std::to_string(I));
  EXPECT_EQ(T.numEvents(), 8u);
  EXPECT_EQ(T.numDropped(), 12u);
  EXPECT_EQ(T.capacity(), 8u);
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(T.event(I).Name, "e" + std::to_string(12 + I));
}

TEST(Trace, AggregatesSurviveOverflow) {
  Trace T(4);
  T.setEnabled(true);
  for (int I = 0; I < 50; ++I)
    TraceSpan S(&T, "work");
  EXPECT_EQ(T.numEvents(), 4u);
  ASSERT_EQ(T.spanAggregates().count("work"), 1u);
  EXPECT_EQ(T.spanAggregates().at("work").Count, 50u);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(Trace, ChromeJsonIsValidWithHostileLabels) {
  Trace T(32);
  T.setEnabled(true);
  {
    TraceSpan S(&T, "label with \"quotes\" and \\slashes\\",
                {{"note", "multi\nline\tvalue"}});
    T.instant("newline\nlabel", {{"n", -3}, {"x", 1.5}});
  }
  std::string Json = T.chromeJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("newline\\nlabel"), std::string::npos);
}

TEST(Trace, EmptyTraceExportsValidDocuments) {
  Trace T(4);
  EXPECT_TRUE(isValidJson(T.chromeJson()));
  EXPECT_TRUE(isValidJson(T.statsJson()));
}

TEST(Trace, StatsJsonBundlesStatsAndAggregates) {
  Trace T(32);
  T.setEnabled(true);
  { TraceSpan S(&T, "phase.a"); }
  { TraceSpan S(&T, "phase.a"); }
  { TraceSpan S(&T, "phase \"b\""); }

  Stats Bag;
  Bag.add("engine.inlined", 12);
  Bag.addTime("engine.seconds", 0.125);
  std::string Json = T.statsJson(&Bag);
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"engine.inlined\":12"), std::string::npos);
  EXPECT_NE(Json.find("\"phase.a\": {\"count\":2"), std::string::npos);
  EXPECT_NE(Json.find("phase \\\"b\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"dropped\":0"), std::string::npos);
}

TEST(Trace, WritesParseableFiles) {
  Trace T(32);
  T.setEnabled(true);
  { TraceSpan S(&T, "io-span"); }
  Stats Bag;
  Bag.add("k", 1);

  std::string Dir = ::testing::TempDir();
  std::string TracePath = Dir + "/rmt_trace_test.json";
  std::string StatsPath = Dir + "/rmt_stats_test.json";
  ASSERT_TRUE(T.writeChromeJson(TracePath));
  ASSERT_TRUE(T.writeStatsJson(StatsPath, &Bag));

  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  };
  std::string TraceDoc = Slurp(TracePath);
  std::string StatsDoc = Slurp(StatsPath);
  EXPECT_TRUE(isValidJson(TraceDoc)) << TraceDoc;
  EXPECT_TRUE(isValidJson(StatsDoc)) << StatsDoc;
  EXPECT_EQ(TraceDoc, T.chromeJson());
  std::remove(TracePath.c_str());
  std::remove(StatsPath.c_str());

  EXPECT_FALSE(T.writeChromeJson(Dir + "/no/such/dir/t.json"));
}

//===----------------------------------------------------------------------===//
// End-to-end: a real verification run on the trace
//===----------------------------------------------------------------------===//

namespace {

const char *PipelineSource = R"(
procedure helper(x: int) returns (y: int) {
  y := x + 1;
}

procedure main() {
  var a: int;
  var b: int;
  havoc a;
  call b := helper(a);
  call b := helper(b);
  assert b != a;
}
)";

} // namespace

TEST(TraceEndToEnd, VerifyProgramEmitsNestedPipelineSpans) {
  AstContext Ctx;
  DiagEngine Diags;
  std::optional<Program> Prog = parseAndCheck(PipelineSource, Ctx, Diags);
  ASSERT_TRUE(Prog) << Diags.str();

  Trace T;
  T.setEnabled(true);
  VerifierOptions Opts;
  Opts.Bound = 1;
  Opts.Engine.TimeoutSeconds = 60;
  Opts.Telemetry = &T;
  VerifierRunResult R = verifyProgram(Ctx, *Prog, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);

  // Balanced spans, all closed.
  size_t Begins = 0, Ends = 0;
  bool SawEngineCheck = false, SawZ3 = false, SawPass = false,
       SawIteration = false, SawVerdict = false;
  int Depth = 0, Z3Depth = -1;
  for (size_t I = 0; I < T.numEvents(); ++I) {
    const TraceEvent &E = T.event(I);
    if (E.Ph == TraceEvent::Phase::Begin) {
      ++Begins;
      ++Depth;
      if (E.Name == "z3.check_sat") {
        SawZ3 = true;
        Z3Depth = Depth;
      }
      if (E.Name == "engine.under_check" || E.Name == "engine.over_check")
        SawEngineCheck = true;
      if (E.Name.rfind("pass.", 0) == 0)
        SawPass = true;
      if (E.Name == "engine.iteration")
        SawIteration = true;
    } else if (E.Ph == TraceEvent::Phase::End) {
      ++Ends;
      --Depth;
    } else if (E.Name == "engine.verdict") {
      SawVerdict = true;
    }
  }
  EXPECT_EQ(Begins, Ends);
  EXPECT_EQ(Depth, 0);
  EXPECT_EQ(T.openSpans(), 0u);
  EXPECT_TRUE(SawEngineCheck);
  EXPECT_TRUE(SawZ3);
  EXPECT_TRUE(SawPass);
  EXPECT_TRUE(SawIteration);
  EXPECT_TRUE(SawVerdict);
  // The solver span nests under iteration > check > z3 inside verify >
  // engine.run — at least four levels deep.
  EXPECT_GE(Z3Depth, 4);

  // Aggregates cover the hot layers, both exports validate.
  EXPECT_GE(T.spanAggregates().count("engine.under_check"), 1u);
  EXPECT_GE(T.spanAggregates().count("z3.check_sat"), 1u);
  EXPECT_TRUE(isValidJson(T.chromeJson()));

  Stats Bag;
  Bag.merge(R.PrepassStats);
  R.Result.record(Bag);
  EXPECT_TRUE(isValidJson(T.statsJson(&Bag)));

  // The new VerifyResult split is populated and consistent.
  EXPECT_EQ(R.Result.NumUnderChecks + R.Result.NumOverChecks,
            R.Result.NumSolverChecks);
  EXPECT_GE(R.Result.NumUnderChecks, 1u);
  EXPECT_GT(R.Result.SolverSeconds, 0.0);
  EXPECT_EQ(Bag.get("engine.verdict.safe"), 1);
}

TEST(TraceEndToEnd, DisabledTraceRecordsNothingOnRealRun) {
  AstContext Ctx;
  DiagEngine Diags;
  std::optional<Program> Prog = parseAndCheck(PipelineSource, Ctx, Diags);
  ASSERT_TRUE(Prog) << Diags.str();

  Trace T; // never enabled
  VerifierOptions Opts;
  Opts.Bound = 1;
  Opts.Engine.TimeoutSeconds = 60;
  Opts.Telemetry = &T;
  VerifierRunResult R = verifyProgram(Ctx, *Prog, Ctx.sym("main"), Opts);
  EXPECT_EQ(R.Result.Outcome, Verdict::Safe);
  EXPECT_EQ(T.numEvents(), 0u);
  // The per-check stat split still works without telemetry.
  EXPECT_EQ(R.Result.NumUnderChecks + R.Result.NumOverChecks,
            R.Result.NumSolverChecks);
}
