//===- hbpl_verify.cpp - Command-line verifier front-end ------------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// A small Corral-like command-line tool over the library:
//
//   hbpl_verify FILE.hbpl [--entry NAME] [--bound N] [--strategy S]
//               [--timeout SECS] [--inv] [--eager] [--passify]
//               [--no-prepass] [--passes LIST] [--verify-each]
//               [--print-after-all] [--list-passes] [--lint]
//               [--dump-cfg] [--dump-dag] [--trace-out FILE]
//               [--stats-json FILE] [--stats]
//
// Strategies: none (tree / SI), first (DI default), random, randompick,
// maxc, opt. Exit code: 0 safe, 1 usage/parse error, 2 lint errors, 10 bug,
// 20 timeout or resource-out, 30 unknown (including an aborted prepass
// pipeline under --verify-each).
//
// Observability: --trace-out writes a Chrome trace_event JSON timeline
// (chrome://tracing / Perfetto) of the whole run; --stats-json writes a
// machine-readable stats document (counters, times, span aggregates);
// --stats prints the merged stats bag to stdout.
//
// Run with no arguments to verify a built-in demo program.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/PassManager.h"
#include "cfg/Lower.h"
#include "core/Consistency.h"
#include "core/DotExport.h"
#include "core/Verifier.h"
#include "parser/Parser.h"
#include "support/Trace.h"
#include "transform/Transforms.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace rmt;

namespace {

const char *DemoSource = R"(
var balance: int;

procedure deposit(amount: int) {
  assume amount > 0;
  balance := balance + amount;
}

procedure withdraw(amount: int) returns (ok: bool) {
  if (amount <= balance && amount > 0) {
    balance := balance - amount;
    ok := true;
  } else {
    ok := false;
  }
}

procedure main() {
  var a: int;
  var ok: bool;
  balance := 0;
  havoc a;
  if (*) { call deposit(10); } else { call deposit(25); }
  call ok := withdraw(a);
  assert balance >= 0;
}
)";

int usage() {
  std::fprintf(stderr,
               "usage: hbpl_verify FILE.hbpl [--entry NAME] [--bound N] "
               "[--strategy none|first|random|randompick|maxc|opt] "
               "[--timeout SECS] [--inv] [--eager] [--no-prepass] "
               "[--passes LIST] [--verify-each] [--print-after-all] "
               "[--list-passes] [--lint] [--dump-cfg] [--trace-out FILE] "
               "[--stats-json FILE] [--stats]\n");
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string File;
  std::string EntryName = "main";
  VerifierOptions Opts;
  Opts.Bound = 2;
  Opts.Engine.TimeoutSeconds = 300;
  bool DumpCfg = false;
  bool DumpDag = false;
  bool Lint = false;
  bool PrintStats = false;
  std::string TraceOut;
  std::string StatsJsonOut;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--entry") {
      const char *V = Value();
      if (!V)
        return usage();
      EntryName = V;
    } else if (Arg == "--bound") {
      const char *V = Value();
      if (!V)
        return usage();
      Opts.Bound = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--strategy") {
      const char *V = Value();
      if (!V)
        return usage();
      std::optional<MergeStrategyKind> Kind = parseStrategyKind(V);
      if (!Kind) {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", V);
        return usage();
      }
      Opts.Engine.Strategy.Kind = *Kind;
    } else if (Arg == "--timeout") {
      const char *V = Value();
      if (!V)
        return usage();
      Opts.Engine.TimeoutSeconds = std::atof(V);
    } else if (Arg == "--inv") {
      Opts.UseInvariants = true;
    } else if (Arg == "--eager") {
      Opts.Engine.Eager = true;
    } else if (Arg == "--passify") {
      Opts.Engine.Pvc = PvcMode::Passified;
    } else if (Arg == "--no-prepass") {
      Opts.UsePrepass = false;
    } else if (Arg == "--passes") {
      const char *V = Value();
      if (!V)
        return usage();
      Opts.Prepass.Passes = V;
      std::string Error;
      if (!PassPipeline::parse(Opts.Prepass.Passes, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
    } else if (Arg == "--verify-each") {
      Opts.Prepass.VerifyEach = true;
    } else if (Arg == "--print-after-all") {
      Opts.Prepass.PrintAfterAll = true;
    } else if (Arg == "--list-passes") {
      for (const std::string &Name : PassRegistry::instance().names()) {
        std::unique_ptr<Pass> P = PassRegistry::instance().create(Name);
        std::printf("%-12s %s\n", Name.c_str(),
                    std::string(P->description()).c_str());
      }
      return 0;
    } else if (Arg == "--trace-out") {
      const char *V = Value();
      if (!V)
        return usage();
      TraceOut = V;
    } else if (Arg == "--stats-json") {
      const char *V = Value();
      if (!V)
        return usage();
      StatsJsonOut = V;
    } else if (Arg == "--stats") {
      PrintStats = true;
    } else if (Arg == "--lint") {
      Lint = true;
    } else if (Arg == "--dump-cfg") {
      DumpCfg = true;
    } else if (Arg == "--dump-dag") {
      DumpDag = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    } else {
      File = Arg;
    }
  }

  std::string Source;
  if (File.empty()) {
    std::printf("no input file; verifying the built-in demo program\n\n");
    Source = DemoSource;
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  AstContext Ctx;
  DiagEngine Diags;
  std::optional<Program> Prog = parseAndCheck(Source, Ctx, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (!Prog->findProc(Ctx.sym(EntryName))) {
    std::fprintf(stderr, "error: no procedure named '%s'\n",
                 EntryName.c_str());
    return 1;
  }

  if (Lint) {
    DiagEngine LintDiags;
    LintReport LR = lintProgram(Ctx, *Prog, LintDiags);
    if (LR.total() != 0)
      std::printf("%s", LintDiags.str().c_str());
    std::printf("lint: %u error(s), %u warning(s)\n\n", LR.errors(),
                LR.warnings());
    if (LR.hasErrors())
      return 2;
  }

  if (DumpCfg) {
    BoundedInstance Inst =
        prepareBounded(Ctx, *Prog, Ctx.sym(EntryName), Opts.Bound);
    CfgProgram Cfg = lowerToCfg(Ctx, Inst.Prog);
    std::printf("%s\n", Cfg.str(Ctx).c_str());
  }
  if (DumpDag) {
    // Structure-only full DAG inlining with the selected strategy, then
    // render Graphviz to stdout (pipe into `dot -Tsvg`).
    BoundedInstance Inst =
        prepareBounded(Ctx, *Prog, Ctx.sym(EntryName), Opts.Bound);
    CfgProgram Cfg = lowerToCfg(Ctx, Inst.Prog);
    ProcId Root = Cfg.findProc(Ctx.sym(EntryName));
    TermArena Arena;
    VcContext Vc(Ctx, Cfg, Arena);
    DisjointAnalysis Disj(Cfg);
    ConsistencyChecker Check(Vc, Disj);
    std::unique_ptr<MergeStrategy> Strategy =
        createStrategy(Opts.Engine.Strategy, Cfg, Disj, Root);
    NodeId RootNode = Vc.genPvc(Root);
    Check.onNewNode(RootNode);
    Strategy->noteNewNode(RootNode, InvalidEdge);
    while (!Vc.openEdges().empty() && Vc.numInlined() < 5000) {
      EdgeId E = Vc.openEdges().front();
      std::optional<NodeId> Pick = Strategy->pick(Vc, Check, E);
      NodeId N;
      if (Pick) {
        N = *Pick;
      } else {
        N = Vc.genPvc(Vc.edge(E).Callee);
        Check.onNewNode(N);
        Strategy->noteNewNode(N, E);
      }
      Vc.bindEdge(E, N);
      Check.onBind(E, N);
    }
    std::printf("%s", inliningDagToDot(Ctx, Vc).c_str());
  }

  // Enable telemetry whenever any exporter wants it; span aggregates feed
  // --stats-json even when no Chrome trace is requested.
  Trace Telemetry;
  if (!TraceOut.empty() || !StatsJsonOut.empty()) {
    Telemetry.setEnabled(true);
    Opts.Telemetry = &Telemetry;
  }

  VerifierRunResult R = verifyProgram(Ctx, *Prog, Ctx.sym(EntryName), Opts);

  // One machine-readable stats bag for the whole run: prepass pass counters
  // plus the engine's "engine.*" keys and front-end sizes.
  Stats RunStats;
  RunStats.merge(R.PrepassStats);
  R.Result.record(RunStats);
  RunStats.add("verify.asserts", R.NumAsserts);
  RunStats.add("verify.bound", Opts.Bound);
  RunStats.add("verify.procs", static_cast<int64_t>(R.NumProcs));
  RunStats.add("verify.labels", static_cast<int64_t>(R.NumLabels));
  RunStats.add("verify.procs_solved", static_cast<int64_t>(R.NumProcsSolved));
  RunStats.add("verify.labels_solved",
               static_cast<int64_t>(R.NumLabelsSolved));

  if (!TraceOut.empty() && !Telemetry.writeChromeJson(TraceOut)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 TraceOut.c_str());
    return 1;
  }
  if (!StatsJsonOut.empty() &&
      !Telemetry.writeStatsJson(StatsJsonOut, &RunStats)) {
    std::fprintf(stderr, "error: cannot write stats to '%s'\n",
                 StatsJsonOut.c_str());
    return 1;
  }
  if (PrintStats)
    std::printf("stats:\n%s\n", RunStats.str().c_str());

  if (!R.Prepass.ok()) {
    for (const std::string &Msg : R.Prepass.PipelineErrors)
      std::fprintf(stderr, "error: %s\n", Msg.c_str());
    std::fprintf(stderr,
                 "error: prepass pipeline aborted; refusing to solve\n");
    return 30;
  }

  std::printf("verdict:   %s\n", verdictName(R.Result.Outcome));
  std::printf("bound:     %u\n", Opts.Bound);
  std::printf("asserts:   %u\n", R.NumAsserts);
  if (Opts.UsePrepass)
    std::printf("prepass:   %s\n", R.Prepass.str().c_str());
  std::printf("inlined:   %zu procedure instances (%zu merged calls)\n",
              R.Result.NumInlined, R.Result.NumMerged);
  std::printf("checks:    %zu solver calls in %zu iterations\n",
              R.Result.NumSolverChecks, R.Result.NumIterations);
  if (Opts.UseInvariants)
    std::printf("invariants: %u conjuncts injected\n", R.InvariantConjuncts);
  std::printf("time:      %.3fs (merge lookups %.4fs, %llu Disj_blk "
              "queries)\n",
              R.Result.Seconds, R.Result.MergeLookupSeconds,
              static_cast<unsigned long long>(R.Result.NumDisjQueries));
  if (R.Result.Outcome == Verdict::Bug)
    std::printf("\ncounterexample:\n%s", R.TraceText.c_str());

  switch (R.Result.Outcome) {
  case Verdict::Safe:
    return 0;
  case Verdict::Bug:
    return 10;
  case Verdict::Timeout:
  case Verdict::ResourceOut:
    return 20;
  case Verdict::Unknown:
    return 30;
  }
  return 30;
}
