//===- driver_dispatch.cpp - SDV-style driver verification ----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// The scenario the paper's evaluation is built on: a device driver whose
// harness dispatches a havoc'd request to one of several handlers, which
// share utility procedures under a lock-discipline rule. Generates one safe
// and one buggy driver, verifies both with stratified inlining (SI, tree)
// and DAG inlining (DI, strategy FIRST), and prints the comparison the
// paper's Fig. 12 row-pair makes.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "workload/SdvGen.h"

#include <cstdio>

using namespace rmt;

namespace {

void runOne(const char *Tag, const SdvParams &Params,
            MergeStrategyKind Kind) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);

  VerifierOptions Opts;
  Opts.Bound = 1;
  Opts.Engine.Strategy.Kind = Kind;
  Opts.Engine.TimeoutSeconds = 60;

  VerifierRunResult R = verifyProgram(Ctx, Prog, Ctx.sym("main"), Opts);
  std::printf("%-10s %-6s verdict=%-8s inlined=%-5zu merged=%-5zu "
              "checks=%-4zu time=%.2fs\n",
              Tag, strategyName(Kind), verdictName(R.Result.Outcome),
              R.Result.NumInlined, R.Result.NumMerged,
              R.Result.NumSolverChecks, R.Result.Seconds);
  if (R.Result.Outcome == Verdict::Bug && Kind == MergeStrategyKind::First)
    std::printf("--- counterexample (DI) ---\n%s\n", R.TraceText.c_str());
}

} // namespace

int main() {
  SdvParams Safe;
  Safe.Seed = 2015;
  Safe.NumHandlers = 4;
  Safe.NumUtils = 5;
  Safe.UtilDepth = 5;
  Safe.InjectBug = false;

  SdvParams Buggy = Safe;
  Buggy.InjectBug = true;

  std::printf("== lock-discipline rule over a synthetic driver ==\n");
  runOne("safe", Safe, MergeStrategyKind::None);
  runOne("safe", Safe, MergeStrategyKind::First);
  runOne("buggy", Buggy, MergeStrategyKind::None);
  runOne("buggy", Buggy, MergeStrategyKind::First);
  return 0;
}
