//===- bounded_loops.cpp - Bounded verification of loops and recursion ----===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// The paper's engines decide reachability for *hierarchical* programs; loopy
// and recursive programs are first bounded ("once loops have been unrolled
// and recursion unfolded up to a bound, the resulting program is
// hierarchical"). This example shows the BMC semantics: a bug that needs 6
// loop iterations plus recursion depth 4 is invisible at small bounds and
// appears once the bound covers it.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace rmt;

namespace {

const char *Source = R"(
var total: int;

// Recursive accumulator: adds d to total, recursing d times.
procedure pump(d: int) {
  if (d > 0) {
    total := total + 1;
    call pump(d - 1);
  }
}

procedure main() {
  var i: int;
  var n: int;
  havoc n;
  assume 0 <= n && n <= 6;
  total := 0;
  i := 0;
  while (i < n) {
    i := i + 1;
    call pump(3);
  }
  // Wrong for n == 6: total reaches 18.
  assert total <= 15;
}
)";

} // namespace

int main() {
  std::printf("-- fixed bounds --\n");
  for (unsigned Bound : {2u, 4u, 6u, 8u}) {
    AstContext Ctx;
    DiagEngine Diags;
    std::optional<Program> Prog = parseAndCheck(Source, Ctx, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    VerifierOptions Opts;
    Opts.Bound = Bound;
    Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
    Opts.Engine.TimeoutSeconds = 60;
    VerifierRunResult R = verifyProgram(Ctx, *Prog, Ctx.sym("main"), Opts);
    std::printf("bound=%u  verdict=%-7s  (hierarchical program: %zu procs, "
                "%zu labels; inlined %zu)\n",
                Bound, verdictName(R.Result.Outcome), R.NumProcs, R.NumLabels,
                R.Result.NumInlined);
  }
  std::printf("\nThe assertion needs n=6 loop iterations and pump depth 4;\n"
              "bounds below that report safe (no execution within the bound\n"
              "violates it), larger bounds expose the bug.\n");

  // Corral-style bound escalation finds the right bound automatically.
  std::printf("\n-- iterative deepening (1, 2, 4, 8, ...) --\n");
  AstContext Ctx;
  DiagEngine Diags;
  std::optional<Program> Prog = parseAndCheck(Source, Ctx, Diags);
  if (!Prog)
    return 1;
  VerifierOptions Opts;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.TimeoutSeconds = 120;
  DeepeningResult R =
      verifyIterativeDeepening(Ctx, *Prog, Ctx.sym("main"), Opts, 16);
  std::printf("bounds tried:");
  for (unsigned B : R.BoundsTried)
    std::printf(" %u", B);
  std::printf("  ->  verdict=%s at bound %u\n",
              verdictName(R.Last.Result.Outcome), R.ReachedBound);
  return 0;
}
