//===- quickstart.cpp - Minimal end-to-end use of the library --------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Parse a small program in the surface language, verify it with DAG
// inlining (strategy FIRST, the paper's default), and print the verdict and
// the engine statistics. Run with no arguments.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace rmt;

namespace {

// The paper's Fig. 1 program shape with real data flow: main reaches foo
// through either bar or baz, never both — DAG inlining shares foo's body.
const char *Source = R"(
var g: int;

procedure main() {
  var x: int;
  g := 0;
  if (*) {
    call bar();
  } else {
    call baz();
  }
  assert g >= 1;
}

procedure bar() {
  g := g + 1;
  call foo();
}

procedure baz() {
  g := g + 2;
  call foo();
}

procedure foo() {
  g := g + 1;
  assert g <= 3;
}
)";

} // namespace

int main() {
  AstContext Ctx;
  DiagEngine Diags;
  std::optional<Program> Prog = parseAndCheck(Source, Ctx, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  VerifierOptions Opts;
  Opts.Bound = 1; // no loops or recursion here
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First; // DAG inlining
  Opts.Engine.TimeoutSeconds = 30;

  VerifierRunResult R =
      verifyProgram(Ctx, *Prog, Ctx.sym("main"), Opts);

  std::printf("verdict:            %s\n", verdictName(R.Result.Outcome));
  std::printf("procedures inlined: %zu\n", R.Result.NumInlined);
  std::printf("calls merged:       %zu\n", R.Result.NumMerged);
  std::printf("solver checks:      %zu\n", R.Result.NumSolverChecks);
  std::printf("time:               %.3fs\n", R.Result.Seconds);
  if (!R.TraceText.empty())
    std::printf("trace:\n%s", R.TraceText.c_str());

  // The program is safe: g is 2 or 3 at main's assert, and foo sees at most
  // 3. Exit nonzero if the verifier disagrees, so this doubles as a smoke
  // test.
  return R.Result.Outcome == Verdict::Safe ? 0 : 2;
}
