//===- bench_ablation_passify.cpp - pVC-generation ablation -----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// DESIGN.md ablation: the paper's Gen_pVC (Fig. 8) mints two constants per
// (label, variable) and frame equalities per statement; production VC
// generators (Boogie) passify first. This bench runs DI with both pVC modes
// over the corpus and reports constants minted, clauses, and solve time —
// quantifying how much of the observed running time is the literal
// formulation rather than DAG inlining itself.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

namespace {

struct ModeResult {
  Verdict Outcome = Verdict::Unknown;
  double Seconds = 0;
  size_t Inlined = 0;
};

ModeResult runMode(const SdvParams &Params, PvcMode Mode, double Timeout) {
  AstContext Ctx;
  Program P = makeSdvProgram(Ctx, Params);
  VerifierOptions Opts;
  Opts.Bound = 1;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.Pvc = Mode;
  Opts.Engine.TimeoutSeconds = Timeout;
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  return {R.Result.Outcome, R.Result.Seconds, R.Result.NumInlined};
}

std::string cell(const ModeResult &R) {
  if (R.Outcome != Verdict::Bug && R.Outcome != Verdict::Safe)
    return "T/O";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", R.Seconds);
  return Buf;
}

} // namespace

int main() {
  double Timeout = envTimeout(5);
  unsigned Count = envCount(12);
  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/314, Count, /*BugFraction=*/110);

  std::printf("Ablation — DI with the paper's literal Gen_pVC vs the "
              "passified pVC generator (timeout %.0fs)\n\n",
              Timeout);
  Table T({"instance", "paper(s)", "passified(s)", "speedup", "verdicts"});
  unsigned Solved[2] = {0, 0};
  double Time[2] = {0, 0};
  unsigned Mismatch = 0;
  for (const SdvInstance &Inst : Corpus) {
    ModeResult Paper = runMode(Inst.Params, PvcMode::Paper, Timeout);
    ModeResult Pass = runMode(Inst.Params, PvcMode::Passified, Timeout);
    std::fprintf(stderr, "  %-12s paper=%s passified=%s\n",
                 Inst.Name.c_str(), cell(Paper).c_str(),
                 cell(Pass).c_str());
    bool PaperDone =
        Paper.Outcome == Verdict::Bug || Paper.Outcome == Verdict::Safe;
    bool PassDone =
        Pass.Outcome == Verdict::Bug || Pass.Outcome == Verdict::Safe;
    if (PaperDone) {
      ++Solved[0];
      Time[0] += Paper.Seconds;
    }
    if (PassDone) {
      ++Solved[1];
      Time[1] += Pass.Seconds;
    }
    if (PaperDone && PassDone && Paper.Outcome != Pass.Outcome)
      ++Mismatch;
    T.row();
    T.cell(Inst.Name);
    T.cell(cell(Paper));
    T.cell(cell(Pass));
    if (PaperDone && PassDone && Pass.Seconds > 0)
      T.cell(Paper.Seconds / Pass.Seconds, 2);
    else
      T.cell(std::string("-"));
    T.cell(std::string(verdictName(Paper.Outcome)) + "/" +
           verdictName(Pass.Outcome));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("solved: paper=%u (%.1fs), passified=%u (%.1fs); verdict "
              "mismatches: %u (must be 0)\n",
              Solved[0], Time[0], Solved[1], Time[1], Mismatch);
  return Mismatch == 0 ? 0 : 1;
}
