//===- bench_prepass.cpp - Static-analysis prepass ablation -----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Three-way ablation of the prepass pipeline on the SDV-like corpus:
//
//   off  — no prepass at all;
//   base — the original reduction pipeline (constprop,slice,splice,deadproc);
//   full — the default pipeline, which adds GVN/copy-propagation and
//          assume-redundancy elimination (constprop,gvn,assumeelim,...).
//
// For each configuration we report the program size the engine sees and the
// size of the fully inlined VC (hash-consed term count); end-to-end DI verify
// time is measured for off vs full. The base→full delta isolates what the
// value-numbering passes buy on top of the established reductions. Knobs:
// RMT_BENCH_TIMEOUT, RMT_BENCH_COUNT (see BenchCommon.h).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Dataflow.h"
#include "cfg/Lower.h"
#include "core/Consistency.h"
#include "core/Strategies.h"
#include "core/VcGen.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "transform/Transforms.h"

#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

namespace {

/// The reduction pipeline as it stood before the value-numbering passes.
const char *BaselinePasses = "constprop,slice,splice,deadproc";

struct VcSize {
  size_t Labels = 0;
  size_t Procs = 0;
  size_t Terms = 0;
  size_t Inlined = 0;
};

/// Fully inlines the instance (structure-only, DI/First strategy) and
/// reports the hash-consed term count — the static formula footprint the
/// solver would be handed if every open edge were expanded. \p Passes is the
/// prepass pipeline spec; null runs no prepass.
VcSize inlinedVcSize(const SdvParams &Params, const char *Passes) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);
  BoundedInstance Inst = prepareBounded(Ctx, Prog, Ctx.sym("main"), 1);
  CfgProgram Cfg = lowerToCfg(Ctx, Inst.Prog);
  ProcId Root = Cfg.findProc(Inst.Entry);
  if (Passes) {
    PrepassOptions PO;
    PO.Passes = Passes;
    runPrepass(Ctx, Cfg, Root, Inst.ErrVar, PO);
  }

  TermArena Arena;
  VcContext Vc(Ctx, Cfg, Arena);
  DisjointAnalysis Disj(Cfg);
  ConsistencyChecker Check(Vc, Disj);
  StrategyOptions SOpts;
  SOpts.Kind = MergeStrategyKind::First;
  std::unique_ptr<MergeStrategy> Strategy =
      createStrategy(SOpts, Cfg, Disj, Root);
  NodeId RootNode = Vc.genPvc(Root);
  Check.onNewNode(RootNode);
  Strategy->noteNewNode(RootNode, InvalidEdge);
  while (!Vc.openEdges().empty() && Vc.numInlined() < 20000) {
    EdgeId E = Vc.openEdges().front();
    std::optional<NodeId> Pick = Strategy->pick(Vc, Check, E);
    NodeId N;
    if (Pick) {
      N = *Pick;
    } else {
      N = Vc.genPvc(Vc.edge(E).Callee);
      Check.onNewNode(N);
      Strategy->noteNewNode(N, E);
    }
    Vc.bindEdge(E, N);
    Check.onBind(E, N);
  }

  VcSize S;
  S.Labels = Cfg.Labels.size();
  S.Procs = Cfg.Procs.size();
  S.Terms = Arena.numTerms();
  S.Inlined = Vc.numInlined();
  return S;
}

struct TimedRun {
  Verdict Outcome = Verdict::Unknown;
  double Seconds = 0;
};

TimedRun timedVerify(const SdvParams &Params, const char *Passes,
                     double Timeout) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);
  VerifierOptions Opts;
  Opts.Bound = 1; // drivers are loop-free by construction
  Opts.UsePrepass = Passes != nullptr;
  if (Passes)
    Opts.Prepass.Passes = Passes;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.TimeoutSeconds = Timeout;
  Stopwatch W;
  VerifierRunResult R = verifyProgram(Ctx, Prog, Ctx.sym("main"), Opts);
  return {R.Result.Outcome, W.seconds()};
}

bool answered(Verdict V) { return V == Verdict::Safe || V == Verdict::Bug; }

} // namespace

int main() {
  double Timeout = envTimeout(10);
  unsigned Count = envCount(12);

  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/2015, Count, /*BugFraction=*/110);

  std::printf("Prepass ablation — %u SDV-like instances, DI (First), "
              "bound 1, timeout %.0fs\n"
              "base = %s\nfull = default pipeline (adds gvn,assumeelim)\n\n",
              Count, Timeout, BaselinePasses);

  Table T({"Instance", "Terms off", "Terms base", "Terms full", "Labels full",
           "Time off(s)", "Time full(s)", "Verdict"});
  size_t TermsOff = 0, TermsBase = 0, TermsFull = 0;
  size_t LabelsOff = 0, LabelsFull = 0;
  double TimeOff = 0, TimeFull = 0;
  unsigned Disagreements = 0;

  for (const SdvInstance &I : Corpus) {
    VcSize Off = inlinedVcSize(I.Params, nullptr);
    VcSize Base = inlinedVcSize(I.Params, BaselinePasses);
    VcSize Full = inlinedVcSize(I.Params, ""); // "" = default pipeline
    TimedRun ROff = timedVerify(I.Params, nullptr, Timeout);
    TimedRun RBase = timedVerify(I.Params, BaselinePasses, Timeout);
    TimedRun RFull = timedVerify(I.Params, "", Timeout);

    // All configurations that answer must answer alike.
    Verdict Ref = Verdict::Unknown;
    for (Verdict V : {ROff.Outcome, RBase.Outcome, RFull.Outcome}) {
      if (!answered(V))
        continue;
      if (!answered(Ref))
        Ref = V;
      else if (V != Ref)
        ++Disagreements;
    }

    TermsOff += Off.Terms;
    TermsBase += Base.Terms;
    TermsFull += Full.Terms;
    LabelsOff += Off.Labels;
    LabelsFull += Full.Labels;
    TimeOff += ROff.Seconds;
    TimeFull += RFull.Seconds;

    T.row();
    T.cell(I.Name);
    T.cell(static_cast<int64_t>(Off.Terms));
    T.cell(static_cast<int64_t>(Base.Terms));
    T.cell(static_cast<int64_t>(Full.Terms));
    T.cell(static_cast<int64_t>(Full.Labels));
    T.cell(ROff.Seconds, 2);
    T.cell(RFull.Seconds, 2);
    T.cell(!answered(Ref) ? "t/o" : verdictName(Ref));
    std::fprintf(stderr,
                 "  %-10s terms %zu -> %zu -> %zu, %.2fs -> %.2fs\n",
                 I.Name.c_str(), Off.Terms, Base.Terms, Full.Terms,
                 ROff.Seconds, RFull.Seconds);
  }

  std::printf("%s\n", T.str().c_str());
  auto Pct = [](size_t From, size_t To) {
    return From ? 100.0 * static_cast<double>(From - To) /
                      static_cast<double>(From)
                : 0.0;
  };
  std::printf("totals: labels %zu -> %zu (-%.1f%%), VC terms off %zu -> "
              "base %zu (-%.1f%%) -> full %zu (-%.1f%% vs base), verify "
              "time %.1fs -> %.1fs\n",
              LabelsOff, LabelsFull, Pct(LabelsOff, LabelsFull), TermsOff,
              TermsBase, Pct(TermsOff, TermsBase), TermsFull,
              Pct(TermsBase, TermsFull), TimeOff, TimeFull);
  std::printf("verdict disagreements: %u (must be 0 — every pipeline is "
              "verdict-preserving)\n",
              Disagreements);

  writeBenchJson(
      "prepass", T,
      {{"count", std::to_string(Count)},
       {"timeout_s", std::to_string(Timeout)},
       {"baseline_passes", BaselinePasses},
       {"terms_off", std::to_string(TermsOff)},
       {"terms_base", std::to_string(TermsBase)},
       {"terms_full", std::to_string(TermsFull)},
       {"labels_off", std::to_string(LabelsOff)},
       {"labels_full", std::to_string(LabelsFull)},
       {"time_off_s", std::to_string(TimeOff)},
       {"time_full_s", std::to_string(TimeFull)},
       {"disagreements", std::to_string(Disagreements)}});

  return Disagreements == 0 && TermsFull <= TermsBase && TermsBase <= TermsOff
             ? 0
             : 1;
}
