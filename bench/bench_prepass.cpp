//===- bench_prepass.cpp - Static-analysis prepass ablation -----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Measures what the dataflow prepass (constant folding + branch pruning,
// query slicing, skip splicing, dead-procedure elimination) buys on the
// SDV-like corpus: the program size the engine sees, the size of the fully
// inlined VC (hash-consed term count), and end-to-end DI verify time —
// each with the prepass on vs off. Knobs: RMT_BENCH_TIMEOUT,
// RMT_BENCH_COUNT (see BenchCommon.h).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Dataflow.h"
#include "cfg/Lower.h"
#include "core/Consistency.h"
#include "core/Strategies.h"
#include "core/VcGen.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "transform/Transforms.h"

#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

namespace {

struct VcSize {
  size_t Labels = 0;
  size_t Procs = 0;
  size_t Terms = 0;
  size_t Inlined = 0;
};

/// Fully inlines the instance (structure-only, DI/First strategy) and
/// reports the hash-consed term count — the static formula footprint the
/// solver would be handed if every open edge were expanded.
VcSize inlinedVcSize(const SdvParams &Params, bool UsePrepass) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);
  BoundedInstance Inst = prepareBounded(Ctx, Prog, Ctx.sym("main"), 1);
  CfgProgram Cfg = lowerToCfg(Ctx, Inst.Prog);
  ProcId Root = Cfg.findProc(Inst.Entry);
  if (UsePrepass)
    runPrepass(Ctx, Cfg, Root, Inst.ErrVar);

  TermArena Arena;
  VcContext Vc(Ctx, Cfg, Arena);
  DisjointAnalysis Disj(Cfg);
  ConsistencyChecker Check(Vc, Disj);
  StrategyOptions SOpts;
  SOpts.Kind = MergeStrategyKind::First;
  std::unique_ptr<MergeStrategy> Strategy =
      createStrategy(SOpts, Cfg, Disj, Root);
  NodeId RootNode = Vc.genPvc(Root);
  Check.onNewNode(RootNode);
  Strategy->noteNewNode(RootNode, InvalidEdge);
  while (!Vc.openEdges().empty() && Vc.numInlined() < 20000) {
    EdgeId E = Vc.openEdges().front();
    std::optional<NodeId> Pick = Strategy->pick(Vc, Check, E);
    NodeId N;
    if (Pick) {
      N = *Pick;
    } else {
      N = Vc.genPvc(Vc.edge(E).Callee);
      Check.onNewNode(N);
      Strategy->noteNewNode(N, E);
    }
    Vc.bindEdge(E, N);
    Check.onBind(E, N);
  }

  VcSize S;
  S.Labels = Cfg.Labels.size();
  S.Procs = Cfg.Procs.size();
  S.Terms = Arena.numTerms();
  S.Inlined = Vc.numInlined();
  return S;
}

struct TimedRun {
  Verdict Outcome = Verdict::Unknown;
  double Seconds = 0;
};

TimedRun timedVerify(const SdvParams &Params, bool UsePrepass,
                     double Timeout) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);
  VerifierOptions Opts;
  Opts.Bound = 1; // drivers are loop-free by construction
  Opts.UsePrepass = UsePrepass;
  Opts.Engine.Strategy.Kind = MergeStrategyKind::First;
  Opts.Engine.TimeoutSeconds = Timeout;
  Stopwatch W;
  VerifierRunResult R = verifyProgram(Ctx, Prog, Ctx.sym("main"), Opts);
  return {R.Result.Outcome, W.seconds()};
}

} // namespace

int main() {
  double Timeout = envTimeout(10);
  unsigned Count = envCount(12);

  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/2015, Count, /*BugFraction=*/110);

  std::printf("Prepass ablation — %u SDV-like instances, DI (First), "
              "bound 1, timeout %.0fs\n\n",
              Count, Timeout);

  Table T({"Instance", "Labels off", "Labels on", "Terms off", "Terms on",
           "Time off(s)", "Time on(s)", "Verdict"});
  size_t TermsOff = 0, TermsOn = 0, LabelsOff = 0, LabelsOn = 0;
  double TimeOff = 0, TimeOn = 0;
  unsigned Disagreements = 0;

  for (const SdvInstance &I : Corpus) {
    VcSize Off = inlinedVcSize(I.Params, /*UsePrepass=*/false);
    VcSize On = inlinedVcSize(I.Params, /*UsePrepass=*/true);
    TimedRun ROff = timedVerify(I.Params, /*UsePrepass=*/false, Timeout);
    TimedRun ROn = timedVerify(I.Params, /*UsePrepass=*/true, Timeout);

    bool BothAnswered =
        (ROff.Outcome == Verdict::Safe || ROff.Outcome == Verdict::Bug) &&
        (ROn.Outcome == Verdict::Safe || ROn.Outcome == Verdict::Bug);
    if (BothAnswered && ROff.Outcome != ROn.Outcome)
      ++Disagreements;

    TermsOff += Off.Terms;
    TermsOn += On.Terms;
    LabelsOff += Off.Labels;
    LabelsOn += On.Labels;
    TimeOff += ROff.Seconds;
    TimeOn += ROn.Seconds;

    T.row();
    T.cell(I.Name);
    T.cell(static_cast<int64_t>(Off.Labels));
    T.cell(static_cast<int64_t>(On.Labels));
    T.cell(static_cast<int64_t>(Off.Terms));
    T.cell(static_cast<int64_t>(On.Terms));
    T.cell(ROff.Seconds, 2);
    T.cell(ROn.Seconds, 2);
    T.cell(!BothAnswered              ? "t/o"
           : ROff.Outcome == ROn.Outcome ? verdictName(ROn.Outcome)
                                         : "MIXED");
    std::fprintf(stderr, "  %-10s terms %zu -> %zu, %.2fs -> %.2fs\n",
                 I.Name.c_str(), Off.Terms, On.Terms, ROff.Seconds,
                 ROn.Seconds);
  }

  std::printf("%s\n", T.str().c_str());
  double TermPct =
      TermsOff ? 100.0 * static_cast<double>(TermsOff - TermsOn) /
                     static_cast<double>(TermsOff)
               : 0.0;
  double LabelPct =
      LabelsOff ? 100.0 * static_cast<double>(LabelsOff - LabelsOn) /
                      static_cast<double>(LabelsOff)
                : 0.0;
  std::printf("totals: labels %zu -> %zu (-%.1f%%), VC terms %zu -> %zu "
              "(-%.1f%%), verify time %.1fs -> %.1fs\n",
              LabelsOff, LabelsOn, LabelPct, TermsOff, TermsOn, TermPct,
              TimeOff, TimeOn);
  std::printf("verdict disagreements: %u (must be 0 — the prepass is "
              "verdict-preserving)\n",
              Disagreements);
  return Disagreements == 0 && TermsOn <= TermsOff ? 0 : 1;
}
