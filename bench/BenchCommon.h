//===- BenchCommon.h - Shared benchmark harness ------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure/table reproduction benches: the SDV-like
/// corpus runner (one row per instance × engine configuration) and
/// environment knobs so a full `for b in build/bench/*; do $b; done` sweep
/// stays tractable:
///
///   RMT_BENCH_TIMEOUT  — per-instance timeout seconds (default per bench)
///   RMT_BENCH_COUNT    — corpus size (default per bench)
///   RMT_BENCH_JSON_DIR — directory for BENCH_*.json result files (default .)
///
/// Benches that feed the perf trajectory write their result table as
/// `BENCH_<name>.json` via writeBenchJson(), so runs are machine-readable
/// and diffable across commits.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_BENCH_BENCHCOMMON_H
#define RMT_BENCH_BENCHCOMMON_H

#include "core/Verifier.h"
#include "support/Table.h"
#include "workload/SdvGen.h"

#include <string>
#include <utility>
#include <vector>

namespace rmt {
namespace bench {

/// One engine configuration under comparison (a column of Fig. 12).
struct EngineConfig {
  std::string Name;          // e.g. "SI-Inv", "DI+Inv"
  MergeStrategyKind Kind = MergeStrategyKind::First;
  bool UseInvariants = false;
};

/// Result of one instance under one configuration.
struct RunRow {
  std::string Instance;
  std::string Config;
  Verdict Outcome = Verdict::Unknown;
  double Seconds = 0;
  size_t Inlined = 0;
  size_t Merged = 0;
  double MergeLookupSeconds = 0;
};

/// Runs \p Config on the driver described by \p Params.
RunRow runInstance(const std::string &Name, const SdvParams &Params,
                   const EngineConfig &Config, double TimeoutSeconds);

/// Runs every configuration over every corpus instance.
std::vector<RunRow> runCorpus(const std::vector<SdvInstance> &Corpus,
                              const std::vector<EngineConfig> &Configs,
                              double TimeoutSeconds);

/// The four Fig. 12 configurations.
std::vector<EngineConfig> standardConfigs();

/// Environment overrides with defaults.
double envTimeout(double Default);
unsigned envCount(unsigned Default);

/// Renders \p T as a JSON document
///   {"bench": <name>, "meta": {...}, "rows": [{col: value, ...}, ...]}
/// with cells that parse fully as numbers emitted unquoted.
std::string
tableJson(const std::string &BenchName, const Table &T,
          const std::vector<std::pair<std::string, std::string>> &Meta = {});

/// Writes tableJson() to `BENCH_<name>.json` under RMT_BENCH_JSON_DIR
/// (default: the working directory). Logs the path; false on I/O failure.
bool writeBenchJson(
    const std::string &BenchName, const Table &T,
    const std::vector<std::pair<std::string, std::string>> &Meta = {});

} // namespace bench
} // namespace rmt

#endif // RMT_BENCH_BENCHCOMMON_H
