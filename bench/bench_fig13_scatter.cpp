//===- bench_fig13_scatter.cpp - Reproduces Figs. 13 and 14 ----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Figs. 13/14: per-instance scatter of SI vs DI running time, with (Fig. 13)
// and without (Fig. 14) invariants. Each row is one point (x = SI seconds,
// y = DI seconds); timeouts sit on the T/O line. We also report the
// speedup-distribution summaries quoted in Section 4 ("DI+Inv was an order
// of magnitude faster on 5% of the instances ... 5x faster on 14%").
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace rmt;
using namespace rmt::bench;

namespace {

void scatter(const char *Title, const std::vector<RunRow> &Rows,
             const std::string &XConfig, const std::string &YConfig,
             double Timeout) {
  std::map<std::string, std::pair<const RunRow *, const RunRow *>> Points;
  for (const RunRow &Row : Rows) {
    if (Row.Config == XConfig)
      Points[Row.Instance].first = &Row;
    else if (Row.Config == YConfig)
      Points[Row.Instance].second = &Row;
  }

  std::printf("%s — one point per instance (x=%s, y=%s), timeout %.0fs\n\n",
              Title, XConfig.c_str(), YConfig.c_str(), Timeout);
  Table T({"instance", XConfig + "(s)", YConfig + "(s)", "speedup"});
  unsigned Both = 0, Faster5x = 0, Faster10x = 0;
  for (const auto &[Name, PR] : Points) {
    if (!PR.first || !PR.second)
      continue;
    auto Render = [&](const RunRow &R) {
      if (R.Outcome != Verdict::Bug && R.Outcome != Verdict::Safe)
        return std::string("T/O");
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2f", R.Seconds);
      return std::string(Buf);
    };
    T.row();
    T.cell(Name);
    T.cell(Render(*PR.first));
    T.cell(Render(*PR.second));
    bool XDone = PR.first->Outcome == Verdict::Bug ||
                 PR.first->Outcome == Verdict::Safe;
    bool YDone = PR.second->Outcome == Verdict::Bug ||
                 PR.second->Outcome == Verdict::Safe;
    if (XDone && YDone) {
      ++Both;
      double Speedup = PR.second->Seconds > 0
                           ? PR.first->Seconds / PR.second->Seconds
                           : 0;
      if (Speedup >= 5)
        ++Faster5x;
      if (Speedup >= 10)
        ++Faster10x;
      T.cell(Speedup, 2);
    } else {
      T.cell(std::string("-"));
    }
  }
  std::printf("%s\n", T.str().c_str());
  if (Both) {
    std::printf("on instances both finished: %s >=5x faster on %.0f%%, "
                ">=10x faster on %.0f%% (paper: 14%% and 5%% for +Inv)\n\n",
                YConfig.c_str(), 100.0 * Faster5x / Both,
                100.0 * Faster10x / Both);
  }
}

} // namespace

int main() {
  double Timeout = envTimeout(5);
  unsigned Count = envCount(20);
  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/77, Count, /*BugFraction=*/110);
  std::vector<RunRow> Rows = runCorpus(Corpus, standardConfigs(), Timeout);

  scatter("Fig. 13 — scatter SI+Inv vs DI+Inv", Rows, "SI+Inv", "DI+Inv",
          Timeout);
  scatter("Fig. 14 — scatter SI-Inv vs DI-Inv", Rows, "SI-Inv", "DI-Inv",
          Timeout);
  std::printf("Paper shape: the mass of points sits below the diagonal "
              "(DI faster), with some instances above it (heuristic, "
              "footnote 1).\n");
  return 0;
}
