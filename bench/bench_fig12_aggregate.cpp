//===- bench_fig12_aggregate.cpp - Reproduces Fig. 12 -----------------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Fig. 12: aggregate results over the SDV corpus for SI-Inv / DI-Inv /
// SI+Inv / DI+Inv: #TO (timeouts + resource-outs), #Bugs, average number of
// procedures inlined on completed instances, and cumulative time split into
// bug / no-bug instances.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <cstdio>
#include <map>

using namespace rmt;
using namespace rmt::bench;

int main() {
  double Timeout = envTimeout(5);
  unsigned Count = envCount(24);

  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/2015, Count, /*BugFraction=*/110);
  std::vector<EngineConfig> Configs = standardConfigs();
  std::vector<RunRow> Rows = runCorpus(Corpus, Configs, Timeout);

  struct Agg {
    unsigned Timeouts = 0;
    unsigned Bugs = 0;
    size_t InlinedSum = 0;
    unsigned Finished = 0;
    double BugTime = 0;
    double NoBugTime = 0;
  };
  std::map<std::string, Agg> ByConfig;
  // Cross-config verdict agreement (the paper: "whenever any of the two
  // techniques returned an answer, it was the same answer").
  std::map<std::string, Verdict> Agreed;
  unsigned Disagreements = 0;

  for (const RunRow &Row : Rows) {
    Agg &A = ByConfig[Row.Config];
    switch (Row.Outcome) {
    case Verdict::Timeout:
    case Verdict::ResourceOut:
    case Verdict::Unknown:
      ++A.Timeouts;
      break;
    case Verdict::Bug:
      ++A.Bugs;
      ++A.Finished;
      A.InlinedSum += Row.Inlined;
      A.BugTime += Row.Seconds;
      break;
    case Verdict::Safe:
      ++A.Finished;
      A.InlinedSum += Row.Inlined;
      A.NoBugTime += Row.Seconds;
      break;
    }
    if (Row.Outcome == Verdict::Bug || Row.Outcome == Verdict::Safe) {
      auto It = Agreed.find(Row.Instance);
      if (It == Agreed.end())
        Agreed.emplace(Row.Instance, Row.Outcome);
      else if (It->second != Row.Outcome)
        ++Disagreements;
    }
  }

  std::printf("Fig. 12 — aggregate over %u SDV-like instances, timeout "
              "%.0fs\n\n",
              Count, Timeout);
  Table T({"Algorithm", "#TO", "#Bugs", "#Inlined(avg)", "Time bug(s)",
           "Time no-bug(s)"});
  for (const EngineConfig &C : Configs) {
    const Agg &A = ByConfig[C.Name];
    T.row();
    T.cell(C.Name);
    T.cell(static_cast<int64_t>(A.Timeouts));
    T.cell(static_cast<int64_t>(A.Bugs));
    T.cell(A.Finished ? static_cast<double>(A.InlinedSum) / A.Finished : 0.0,
           1);
    T.cell(A.BugTime, 1);
    T.cell(A.NoBugTime, 1);
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("verdict disagreements across configurations: %u (paper: "
              "always 0)\n",
              Disagreements);
  std::printf("Paper shape: DI has fewer timeouts, more bugs, ~3x fewer "
              "inlined instances and ~2x less time than SI; +Inv helps "
              "both.\n");
  return Disagreements == 0 ? 0 : 1;
}
