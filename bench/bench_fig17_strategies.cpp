//===- bench_fig17_strategies.cpp - Reproduces Fig. 17 ----------------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Fig. 17: number of procedures inlined by the merging strategies when all
// dynamic instances must be inlined. Columns: full tree size, then DAG
// sizes under OPT / FIRST / MAXC / RANDOM / RANDOMPICK. The randomized
// strategies are averaged over five runs, as in the paper. The last row is
// each strategy's average deviation from OPT.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "cfg/Lower.h"
#include "core/Strategies.h"
#include "support/Table.h"
#include "transform/Transforms.h"

#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

namespace {

struct Prepared {
  AstContext Ctx;
  CfgProgram Cfg;
  ProcId Root = InvalidProc;
};

std::unique_ptr<Prepared> prepare(const SdvParams &Params) {
  auto P = std::make_unique<Prepared>();
  Program Prog = makeSdvProgram(P->Ctx, Params);
  BoundedInstance B = prepareBounded(P->Ctx, Prog, P->Ctx.sym("main"), 1);
  P->Cfg = lowerToCfg(P->Ctx, B.Prog);
  P->Root = P->Cfg.findProc(P->Ctx.sym("main"));
  return P;
}

/// Fully inlines with \p Kind; returns #instances (0 on cap overflow =
/// the paper's T/O).
size_t inlinedSize(Prepared &P, MergeStrategyKind Kind, uint64_t Seed,
                   size_t Cap) {
  TermArena Arena;
  VcContext Vc(P.Ctx, P.Cfg, Arena);
  DisjointAnalysis Disj(P.Cfg);
  ConsistencyChecker Check(Vc, Disj);
  StrategyOptions Opts;
  Opts.Kind = Kind;
  Opts.Seed = Seed;
  std::unique_ptr<MergeStrategy> Strategy =
      createStrategy(Opts, P.Cfg, Disj, P.Root);

  NodeId Root = Vc.genPvc(P.Root);
  Check.onNewNode(Root);
  Strategy->noteNewNode(Root, InvalidEdge);
  while (!Vc.openEdges().empty()) {
    if (Vc.numInlined() > Cap)
      return 0;
    EdgeId E = Vc.openEdges().front();
    std::optional<NodeId> Pick = Strategy->pick(Vc, Check, E);
    NodeId N;
    if (Pick && Check.canBind(E, *Pick)) {
      N = *Pick;
    } else {
      N = Vc.genPvc(Vc.edge(E).Callee);
      Check.onNewNode(N);
      Strategy->noteNewNode(N, E);
    }
    Vc.bindEdge(E, N);
    Check.onBind(E, N);
  }
  return Vc.numInlined();
}

size_t treeSize(const Prepared &P) {
  std::vector<ProcId> Work{P.Root};
  size_t Count = 0;
  while (!Work.empty()) {
    ProcId Q = Work.back();
    Work.pop_back();
    ++Count;
    for (ProcId C : P.Cfg.calleesOf(Q))
      Work.push_back(C);
  }
  return Count;
}

std::string cell(size_t V) { return V ? std::to_string(V) : "T/O"; }

} // namespace

int main() {
  unsigned Count = envCount(10);
  size_t Cap = 400000;

  std::vector<SdvInstance> Corpus = makeSdvCorpus(/*Seed=*/17, Count,
                                                  /*BugFraction=*/0);

  std::printf("Fig. 17 — procedures inlined when everything must be "
              "inlined, per merging strategy (RANDOM/RANDOMPICK averaged "
              "over 5 seeds)\n\n");
  Table T({"Tree", "Opt", "First", "MaxC", "Random", "RandomPick"});

  double DevFirst = 0, DevMaxC = 0, DevRandom = 0, DevRandomPick = 0;
  unsigned Counted = 0;

  for (const SdvInstance &Inst : Corpus) {
    auto P = prepare(Inst.Params);
    size_t Tree = treeSize(*P);
    // The paper's OPT column is the size of Do, the minimum colouring of
    // the conflict graphs ("colour it with minimum colours possible").
    // Note this is a lower bound: an arbitrary colouring need not be
    // realizable as a deterministic-edge inlining DAG, so the greedy
    // strategies can legitimately sit somewhat above it.
    DisjointAnalysis Disj(P->Cfg);
    OptPrecomputeStats OptStats =
        precomputeOptDag(P->Cfg, Disj, P->Root, Cap);
    size_t Opt = OptStats.Succeeded ? OptStats.DagSize : 0;
    size_t First = inlinedSize(*P, MergeStrategyKind::First, 1, Cap);
    size_t MaxC = inlinedSize(*P, MergeStrategyKind::MaxC, 1, Cap);
    auto Avg5 = [&](MergeStrategyKind Kind) -> size_t {
      size_t Sum = 0;
      for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
        size_t V = inlinedSize(*P, Kind, Seed, Cap);
        if (!V)
          return 0;
        Sum += V;
      }
      return Sum / 5;
    };
    size_t Random = Avg5(MergeStrategyKind::Random);
    size_t RandomPick = Avg5(MergeStrategyKind::RandomPick);

    std::fprintf(stderr, "  %-12s tree=%zu opt=%zu first=%zu\n",
                 Inst.Name.c_str(), Tree, Opt, First);
    T.row();
    T.cell(static_cast<uint64_t>(Tree));
    T.cell(cell(Opt));
    T.cell(cell(First));
    T.cell(cell(MaxC));
    T.cell(cell(Random));
    T.cell(cell(RandomPick));

    if (Opt && First && MaxC && Random && RandomPick) {
      ++Counted;
      auto Dev = [&](size_t V) {
        return 100.0 * (static_cast<double>(V) - Opt) / Opt;
      };
      DevFirst += Dev(First);
      DevMaxC += Dev(MaxC);
      DevRandom += Dev(Random);
      DevRandomPick += Dev(RandomPick);
    }
  }
  if (Counted) {
    T.row();
    T.cell(std::string("Dev:"));
    T.cell(std::string("-"));
    T.cell(DevFirst / Counted, 0);
    T.cell(DevMaxC / Counted, 0);
    T.cell(DevRandom / Counted, 0);
    T.cell(DevRandomPick / Counted, 0);
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("Paper shape: FIRST within ~8%% of OPT, MAXC close behind, "
              "RANDOM worst (129%%), RANDOMPICK in between (21%%).\n");
  return 0;
}
