//===- bench_fig3_chain.cpp - Reproduces Fig. 3 ----------------------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Fig. 3: running time of tree-based BMC tools (CBMC, Corral) vs DAG
// inlining (DI) on the Fig. 2 chain program as N grows, under a timeout.
// Our proxies: EAGER = full tree inlining then one solve (CBMC-style),
// SI = stratified tree inlining (Corral-style), DI = stratified DAG
// inlining with FIRST. The paper's shape: EAGER and SI blow up
// exponentially, DI stays linear.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"
#include "workload/Chain.h"

#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

namespace {

struct Cell {
  double Seconds = 0;
  size_t Inlined = 0;
  bool TimedOut = false;
};

Cell runChain(unsigned N, bool Eager, MergeStrategyKind Kind,
              double Timeout) {
  AstContext Ctx;
  Program P = makeChainProgram(Ctx, N);
  VerifierOptions Opts;
  Opts.Bound = 1;
  Opts.Engine.Eager = Eager;
  Opts.Engine.Strategy.Kind = Kind;
  Opts.Engine.TimeoutSeconds = Timeout;
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  Cell C;
  C.Seconds = R.Result.Seconds;
  C.Inlined = R.Result.NumInlined;
  C.TimedOut = R.Result.Outcome != Verdict::Safe;
  return C;
}

std::string fmt(const Cell &C) {
  if (C.TimedOut)
    return "T/O";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", C.Seconds);
  return Buf;
}

} // namespace

int main() {
  double Timeout = envTimeout(10);
  unsigned MaxN = envCount(16);

  std::printf("Fig. 3 — chain program of Fig. 2: time (seconds, log-scale "
              "in the paper) vs N, timeout %.0fs\n",
              Timeout);
  std::printf("EAGER = full tree inline + one solve (CBMC proxy); "
              "SI = stratified tree (Corral proxy); DI = DAG inlining\n\n");

  Table T({"N", "EAGER(s)", "SI(s)", "DI(s)", "EAGER#inl", "SI#inl",
           "DI#inl"});
  bool EagerDead = false, SiDead = false;
  for (unsigned N = 4; N <= MaxN; N += 2) {
    Cell Eager = EagerDead
                     ? Cell{Timeout, 0, true}
                     : runChain(N, true, MergeStrategyKind::None, Timeout);
    Cell Si = SiDead ? Cell{Timeout, 0, true}
                     : runChain(N, false, MergeStrategyKind::None, Timeout);
    Cell Di = runChain(N, false, MergeStrategyKind::First, Timeout);
    // Once a tree engine times out, larger N will too: skip, like the
    // paper's truncated curves.
    EagerDead = EagerDead || Eager.TimedOut;
    SiDead = SiDead || Si.TimedOut;

    T.row();
    T.cell(static_cast<int64_t>(N));
    T.cell(fmt(Eager));
    T.cell(fmt(Si));
    T.cell(fmt(Di));
    T.cell(static_cast<uint64_t>(Eager.Inlined));
    T.cell(static_cast<uint64_t>(Si.Inlined));
    T.cell(static_cast<uint64_t>(Di.Inlined));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("Expected shape: EAGER and SI hit the timeout at small N "
              "(exponential tree), DI scales linearly (N+2 instances).\n");
  return 0;
}
