//===- bench_merge_overhead.cpp - Section 4's merge-lookup overhead ---------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Section 4: "We also measured the total time spent inside the routine that
// looks for a candidate to merge ... it is 0.4% of the total time taken by
// DI. This implies that one can invest in more aggressive merging
// techniques without adding an overhead." This bench reports, per instance
// and aggregated: total DI time, time inside strategy picks, and the number
// of Disj_blk lookups.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

int main() {
  double Timeout = envTimeout(5);
  unsigned Count = envCount(12);

  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/99, Count, /*BugFraction=*/110);

  std::printf("Merge-candidate lookup overhead inside DI (paper: 0.4%% of "
              "total time)\n\n");
  Table T({"instance", "verdict", "total(s)", "lookup(s)", "overhead%"});
  double TotalAll = 0, LookupAll = 0;
  for (const SdvInstance &Inst : Corpus) {
    EngineConfig DI{"DI-Inv", MergeStrategyKind::First, false};
    RunRow Row = runInstance(Inst.Name, Inst.Params, DI, Timeout);
    TotalAll += Row.Seconds;
    LookupAll += Row.MergeLookupSeconds;
    T.row();
    T.cell(Inst.Name);
    T.cell(std::string(verdictName(Row.Outcome)));
    T.cell(Row.Seconds, 3);
    T.cell(Row.MergeLookupSeconds, 4);
    T.cell(Row.Seconds > 0 ? 100.0 * Row.MergeLookupSeconds / Row.Seconds
                           : 0.0,
           2);
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("aggregate: %.3fs total, %.4fs in merge lookup = %.2f%% "
              "(paper: 0.4%%)\n",
              TotalAll, LookupAll,
              TotalAll > 0 ? 100.0 * LookupAll / TotalAll : 0.0);
  return 0;
}
