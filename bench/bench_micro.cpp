//===- bench_micro.cpp - Microbenchmarks (google-benchmark) -----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Microbenchmarks for the paper's complexity claims (Section 3.3): the
// Disj_blk preprocessing is quadratic per procedure and linear in the
// number of procedures; a disjointness query is O(1) after preprocessing;
// the incremental compatibility check is cheap enough that "one can invest
// in more aggressive merging without adding overhead". Plus throughput
// baselines for pVC generation, term construction, parsing, and the
// evaluator.
//
//===--------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "ast/Eval.h"
#include "cfg/Lower.h"
#include "core/Consistency.h"
#include "core/Strategies.h"
#include "parser/Parser.h"
#include "transform/Transforms.h"
#include "workload/Chain.h"
#include "workload/SdvGen.h"

#include <benchmark/benchmark.h>

using namespace rmt;

namespace {

struct Prepared {
  AstContext Ctx;
  CfgProgram Cfg;
  ProcId Root = InvalidProc;
};

std::unique_ptr<Prepared> prepareDriver(unsigned Depth) {
  auto P = std::make_unique<Prepared>();
  SdvParams Params;
  Params.Seed = 5;
  Params.NumHandlers = 4;
  Params.NumUtils = 5;
  Params.UtilDepth = Depth;
  Program Prog = makeSdvProgram(P->Ctx, Params);
  BoundedInstance B = prepareBounded(P->Ctx, Prog, P->Ctx.sym("main"), 1);
  P->Cfg = lowerToCfg(P->Ctx, B.Prog);
  P->Root = P->Cfg.findProc(P->Ctx.sym("main"));
  return P;
}

void BM_DisjBlkPrecompute(benchmark::State &State) {
  auto P = prepareDriver(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    DisjointAnalysis D(P->Cfg);
    benchmark::DoNotOptimize(&D);
  }
  State.SetLabel(std::to_string(P->Cfg.Labels.size()) + " labels");
}
BENCHMARK(BM_DisjBlkPrecompute)->Arg(3)->Arg(5)->Arg(7);

void BM_DisjBlkQuery(benchmark::State &State) {
  auto P = prepareDriver(5);
  DisjointAnalysis D(P->Cfg);
  // Collect call labels of main for querying.
  std::vector<LabelId> Calls;
  for (LabelId L : P->Cfg.proc(P->Root).Labels)
    if (P->Cfg.label(L).Stmt.Kind == CfgStmtKind::Call)
      Calls.push_back(L);
  size_t I = 0;
  for (auto _ : State) {
    LabelId A = Calls[I % Calls.size()];
    LabelId B = Calls[(I + 1) % Calls.size()];
    benchmark::DoNotOptimize(D.disjointLabels(A, B));
    ++I;
  }
}
BENCHMARK(BM_DisjBlkQuery);

void BM_GenPvc(benchmark::State &State) {
  auto P = prepareDriver(4);
  for (auto _ : State) {
    TermArena Arena;
    VcContext Vc(P->Ctx, P->Cfg, Arena);
    benchmark::DoNotOptimize(Vc.genPvc(P->Root));
  }
}
BENCHMARK(BM_GenPvc);

void BM_FullDagInline(benchmark::State &State) {
  auto P = prepareDriver(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    TermArena Arena;
    VcContext Vc(P->Ctx, P->Cfg, Arena);
    DisjointAnalysis Disj(P->Cfg);
    ConsistencyChecker Check(Vc, Disj);
    StrategyOptions Opts;
    std::unique_ptr<MergeStrategy> S =
        createStrategy(Opts, P->Cfg, Disj, P->Root);
    NodeId Root = Vc.genPvc(P->Root);
    Check.onNewNode(Root);
    S->noteNewNode(Root, InvalidEdge);
    while (!Vc.openEdges().empty()) {
      EdgeId E = Vc.openEdges().front();
      std::optional<NodeId> Pick = S->pick(Vc, Check, E);
      NodeId N;
      if (Pick) {
        N = *Pick;
      } else {
        N = Vc.genPvc(Vc.edge(E).Callee);
        Check.onNewNode(N);
        S->noteNewNode(N, E);
      }
      Vc.bindEdge(E, N);
      Check.onBind(E, N);
    }
    State.counters["nodes"] = static_cast<double>(Vc.numInlined());
  }
}
BENCHMARK(BM_FullDagInline)->Arg(3)->Arg(5);

void BM_ConsistencyFullCheck(benchmark::State &State) {
  auto P = prepareDriver(5);
  TermArena Arena;
  VcContext Vc(P->Ctx, P->Cfg, Arena);
  DisjointAnalysis Disj(P->Cfg);
  ConsistencyChecker Check(Vc, Disj);
  StrategyOptions Opts;
  std::unique_ptr<MergeStrategy> S =
      createStrategy(Opts, P->Cfg, Disj, P->Root);
  NodeId Root = Vc.genPvc(P->Root);
  Check.onNewNode(Root);
  while (!Vc.openEdges().empty()) {
    EdgeId E = Vc.openEdges().front();
    std::optional<NodeId> Pick = S->pick(Vc, Check, E);
    NodeId N = InvalidNode;
    if (Pick) {
      N = *Pick;
    } else {
      N = Vc.genPvc(Vc.edge(E).Callee);
      Check.onNewNode(N);
    }
    Vc.bindEdge(E, N);
    Check.onBind(E, N);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(Check.isConsistentFull());
  State.SetLabel(std::to_string(Vc.numNodes()) + " nodes");
}
BENCHMARK(BM_ConsistencyFullCheck);

void BM_TermConstruction(benchmark::State &State) {
  AstContext Ctx;
  for (auto _ : State) {
    TermArena Arena;
    TermRef X = Arena.freshConst(Ctx.intType(), "x");
    TermRef Acc = Arena.intLit(0);
    for (int I = 0; I < 1000; ++I)
      Acc = Arena.mkAdd(Acc, Arena.mkMul(X, Arena.intLit(I)));
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_TermConstruction);

void BM_ParseAndCheck(benchmark::State &State) {
  AstContext GenCtx;
  Program Chain = makeChainProgram(GenCtx, 20);
  std::string Source = printProgram(GenCtx, Chain);
  for (auto _ : State) {
    AstContext Ctx;
    DiagEngine Diags;
    auto P = parseAndCheck(Source, Ctx, Diags);
    benchmark::DoNotOptimize(P);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Source.size()));
}
BENCHMARK(BM_ParseAndCheck);

void BM_Evaluator(benchmark::State &State) {
  AstContext Ctx;
  SdvParams Params;
  Params.Seed = 3;
  Program P = makeSdvProgram(Ctx, Params);
  uint64_t Seed = 0;
  for (auto _ : State) {
    EvalOptions Opts;
    Opts.Seed = Seed++;
    benchmark::DoNotOptimize(evaluate(Ctx, P, Ctx.sym("main"), Opts));
  }
}
BENCHMARK(BM_Evaluator);

} // namespace

BENCHMARK_MAIN();
