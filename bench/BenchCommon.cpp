//===- BenchCommon.cpp ------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Trace.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace rmt;
using namespace rmt::bench;

RunRow rmt::bench::runInstance(const std::string &Name,
                               const SdvParams &Params,
                               const EngineConfig &Config,
                               double TimeoutSeconds) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);

  VerifierOptions Opts;
  Opts.Bound = 1; // drivers are loop-free by construction
  Opts.UseInvariants = Config.UseInvariants;
  Opts.Engine.Strategy.Kind = Config.Kind;
  Opts.Engine.TimeoutSeconds = TimeoutSeconds;

  VerifierRunResult R = verifyProgram(Ctx, Prog, Ctx.sym("main"), Opts);

  RunRow Row;
  Row.Instance = Name;
  Row.Config = Config.Name;
  Row.Outcome = R.Result.Outcome;
  Row.Seconds = R.Result.Seconds;
  Row.Inlined = R.Result.NumInlined;
  Row.Merged = R.Result.NumMerged;
  Row.MergeLookupSeconds = R.Result.MergeLookupSeconds;
  return Row;
}

std::vector<RunRow>
rmt::bench::runCorpus(const std::vector<SdvInstance> &Corpus,
                      const std::vector<EngineConfig> &Configs,
                      double TimeoutSeconds) {
  std::vector<RunRow> Rows;
  Rows.reserve(Corpus.size() * Configs.size());
  for (const SdvInstance &Inst : Corpus) {
    for (const EngineConfig &Config : Configs) {
      RunRow Row = runInstance(Inst.Name, Inst.Params, Config,
                               TimeoutSeconds);
      std::fprintf(stderr, "  [%s] %-12s %-8s %7.2fs inlined=%zu\n",
                   Config.Name.c_str(), Inst.Name.c_str(),
                   verdictName(Row.Outcome), Row.Seconds, Row.Inlined);
      Rows.push_back(std::move(Row));
    }
  }
  return Rows;
}

std::vector<EngineConfig> rmt::bench::standardConfigs() {
  return {
      {"SI-Inv", MergeStrategyKind::None, false},
      {"DI-Inv", MergeStrategyKind::First, false},
      {"SI+Inv", MergeStrategyKind::None, true},
      {"DI+Inv", MergeStrategyKind::First, true},
  };
}

double rmt::bench::envTimeout(double Default) {
  if (const char *V = std::getenv("RMT_BENCH_TIMEOUT"))
    return std::atof(V);
  return Default;
}

unsigned rmt::bench::envCount(unsigned Default) {
  if (const char *V = std::getenv("RMT_BENCH_COUNT"))
    return static_cast<unsigned>(std::atoi(V));
  return Default;
}

namespace {

/// A JSON value for one cell: numeric-looking cells go out unquoted so
/// downstream tooling gets numbers, everything else as an escaped string.
std::string cellJson(const std::string &Cell) {
  if (!Cell.empty()) {
    char *End = nullptr;
    double V = std::strtod(Cell.c_str(), &End);
    if (End && *End == '\0' && End != Cell.c_str() && std::isfinite(V))
      return Cell;
  }
  return "\"" + jsonEscape(Cell) + "\"";
}

} // namespace

std::string rmt::bench::tableJson(
    const std::string &BenchName, const Table &T,
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  std::string Out = "{\n\"bench\": \"" + jsonEscape(BenchName) + "\",\n";
  Out += "\"meta\": {";
  for (size_t I = 0; I < Meta.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + jsonEscape(Meta[I].first) + "\":" + cellJson(Meta[I].second);
  }
  Out += "},\n\"rows\": [";
  const std::vector<std::string> &Header = T.header();
  for (size_t R = 0; R < T.rows().size(); ++R) {
    const std::vector<std::string> &Row = T.rows()[R];
    Out += R ? ",\n{" : "\n{";
    for (size_t C = 0; C < Row.size() && C < Header.size(); ++C) {
      if (C)
        Out += ",";
      Out += "\"" + jsonEscape(Header[C]) + "\":" + cellJson(Row[C]);
    }
    Out += "}";
  }
  Out += "\n]\n}\n";
  return Out;
}

bool rmt::bench::writeBenchJson(
    const std::string &BenchName, const Table &T,
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  std::string Dir = ".";
  if (const char *V = std::getenv("RMT_BENCH_JSON_DIR"))
    Dir = V;
  std::string Path = Dir + "/BENCH_" + BenchName + ".json";
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (Out)
    Out << tableJson(BenchName, T, Meta);
  if (!Out.flush()) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", Path.c_str());
  return true;
}
