//===- BenchCommon.cpp ------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>

using namespace rmt;
using namespace rmt::bench;

RunRow rmt::bench::runInstance(const std::string &Name,
                               const SdvParams &Params,
                               const EngineConfig &Config,
                               double TimeoutSeconds) {
  AstContext Ctx;
  Program Prog = makeSdvProgram(Ctx, Params);

  VerifierOptions Opts;
  Opts.Bound = 1; // drivers are loop-free by construction
  Opts.UseInvariants = Config.UseInvariants;
  Opts.Engine.Strategy.Kind = Config.Kind;
  Opts.Engine.TimeoutSeconds = TimeoutSeconds;

  VerifierRunResult R = verifyProgram(Ctx, Prog, Ctx.sym("main"), Opts);

  RunRow Row;
  Row.Instance = Name;
  Row.Config = Config.Name;
  Row.Outcome = R.Result.Outcome;
  Row.Seconds = R.Result.Seconds;
  Row.Inlined = R.Result.NumInlined;
  Row.Merged = R.Result.NumMerged;
  Row.MergeLookupSeconds = R.Result.MergeLookupSeconds;
  return Row;
}

std::vector<RunRow>
rmt::bench::runCorpus(const std::vector<SdvInstance> &Corpus,
                      const std::vector<EngineConfig> &Configs,
                      double TimeoutSeconds) {
  std::vector<RunRow> Rows;
  Rows.reserve(Corpus.size() * Configs.size());
  for (const SdvInstance &Inst : Corpus) {
    for (const EngineConfig &Config : Configs) {
      RunRow Row = runInstance(Inst.Name, Inst.Params, Config,
                               TimeoutSeconds);
      std::fprintf(stderr, "  [%s] %-12s %-8s %7.2fs inlined=%zu\n",
                   Config.Name.c_str(), Inst.Name.c_str(),
                   verdictName(Row.Outcome), Row.Seconds, Row.Inlined);
      Rows.push_back(std::move(Row));
    }
  }
  return Rows;
}

std::vector<EngineConfig> rmt::bench::standardConfigs() {
  return {
      {"SI-Inv", MergeStrategyKind::None, false},
      {"DI-Inv", MergeStrategyKind::First, false},
      {"SI+Inv", MergeStrategyKind::None, true},
      {"DI+Inv", MergeStrategyKind::First, true},
  };
}

double rmt::bench::envTimeout(double Default) {
  if (const char *V = std::getenv("RMT_BENCH_TIMEOUT"))
    return std::atof(V);
  return Default;
}

unsigned rmt::bench::envCount(unsigned Default) {
  if (const char *V = std::getenv("RMT_BENCH_COUNT"))
    return static_cast<unsigned>(std::atoi(V));
  return Default;
}
