//===- bench_fig4_sizes.cpp - Reproduces Fig. 4 -----------------------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Fig. 4: number of procedures inlined by full tree inlining vs full DAG
// inlining across the benchmark corpus (log-scale Y in the paper; DAG
// compression of up to ~200x). We fully inline each SDV-like instance with
// strategy NONE (tree) and FIRST (DAG) and report both sizes sorted by tree
// size, plus the compression statistics.
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "cfg/Lower.h"
#include "support/Table.h"
#include "transform/Transforms.h"

#include <algorithm>
#include <cstdio>

using namespace rmt;
using namespace rmt::bench;

namespace {

size_t fullyInlinedSize(const SdvParams &Params, MergeStrategyKind Kind,
                        size_t MaxInlined) {
  AstContext Ctx;
  Program P = makeSdvProgram(Ctx, Params);
  VerifierOptions Opts;
  Opts.Bound = 1;
  Opts.Engine.Eager = true;
  Opts.Engine.SkipSolve = true;
  Opts.Engine.Strategy.Kind = Kind;
  Opts.Engine.MaxInlined = MaxInlined;
  auto R = verifyProgram(Ctx, P, Ctx.sym("main"), Opts);
  return R.Result.NumInlined;
}

} // namespace

int main() {
  unsigned Count = envCount(30);
  size_t Cap = 300000;

  std::vector<SdvInstance> Corpus = makeSdvCorpus(/*Seed=*/41, Count,
                                                  /*BugFraction=*/0);

  struct Sizes {
    std::string Name;
    size_t Tree;
    size_t Dag;
  };
  std::vector<Sizes> Rows;
  for (const SdvInstance &Inst : Corpus) {
    Sizes S;
    S.Name = Inst.Name;
    S.Tree = fullyInlinedSize(Inst.Params, MergeStrategyKind::None, Cap);
    S.Dag = fullyInlinedSize(Inst.Params, MergeStrategyKind::First, Cap);
    std::fprintf(stderr, "  %-12s tree=%zu dag=%zu\n", S.Name.c_str(),
                 S.Tree, S.Dag);
    Rows.push_back(std::move(S));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const Sizes &A, const Sizes &B) { return A.Tree < B.Tree; });

  std::printf("Fig. 4 — procedures inlined: full tree vs full DAG "
              "(instances sorted by tree size; >= %zu means the tree hit "
              "the instance cap)\n\n",
              Cap);
  Table T({"benchmark", "tree", "dag", "compression"});
  double MaxRatio = 0, SumRatio = 0;
  for (const Sizes &S : Rows) {
    double Ratio = S.Dag ? static_cast<double>(S.Tree) / S.Dag : 0;
    MaxRatio = std::max(MaxRatio, Ratio);
    SumRatio += Ratio;
    T.row();
    T.cell(S.Name);
    T.cell(static_cast<uint64_t>(S.Tree));
    T.cell(static_cast<uint64_t>(S.Dag));
    T.cell(Ratio, 1);
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("mean compression %.1fx, max compression %.1fx over %zu "
              "instances\n",
              Rows.empty() ? 0 : SumRatio / Rows.size(), MaxRatio,
              Rows.size());
  std::printf("Paper shape: tree sizes reach millions while DAG sizes stay "
              "in the hundreds/thousands (up to ~200x compression).\n");
  return 0;
}
