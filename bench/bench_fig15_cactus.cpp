//===- bench_fig15_cactus.cpp - Reproduces Figs. 15 and 16 -----------------===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
// Figs. 15/16: cactus plots — for each technique, sort its per-instance
// solve times ascending and print the cumulative curve (x = number of
// instances solved, y = per-instance time budget needed). "DI solves more
// instances than SI irrespective of the timeout value chosen."
//
//===--------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace rmt;
using namespace rmt::bench;

namespace {

void cactus(const char *Title, const std::vector<RunRow> &Rows,
            const std::string &A, const std::string &B, double Timeout) {
  std::map<std::string, std::vector<double>> Solved;
  for (const RunRow &Row : Rows) {
    if (Row.Config != A && Row.Config != B)
      continue;
    if (Row.Outcome == Verdict::Bug || Row.Outcome == Verdict::Safe)
      Solved[Row.Config].push_back(Row.Seconds);
  }
  for (auto &[Config, Times] : Solved)
    std::sort(Times.begin(), Times.end());

  std::printf("%s — time needed (s) to solve the first k instances, "
              "timeout %.0fs\n\n",
              Title, Timeout);
  size_t MaxSolved = std::max(Solved[A].size(), Solved[B].size());
  Table T({"k", A + "(s)", B + "(s)"});
  for (size_t K = 1; K <= MaxSolved; ++K) {
    T.row();
    T.cell(static_cast<uint64_t>(K));
    auto Cell = [&](const std::string &Config) {
      const auto &V = Solved[Config];
      if (K <= V.size()) {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.2f", V[K - 1]);
        T.cell(std::string(Buf));
      } else {
        T.cell(std::string("T/O"));
      }
    };
    Cell(A);
    Cell(B);
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("instances solved: %s=%zu, %s=%zu\n\n", A.c_str(),
              Solved[A].size(), B.c_str(), Solved[B].size());
}

} // namespace

int main() {
  double Timeout = envTimeout(5);
  unsigned Count = envCount(20);
  std::vector<SdvInstance> Corpus =
      makeSdvCorpus(/*Seed=*/123, Count, /*BugFraction=*/110);
  std::vector<RunRow> Rows = runCorpus(Corpus, standardConfigs(), Timeout);

  cactus("Fig. 15 — cactus SI+Inv vs DI+Inv", Rows, "SI+Inv", "DI+Inv",
         Timeout);
  cactus("Fig. 16 — cactus SI-Inv vs DI-Inv", Rows, "SI-Inv", "DI-Inv",
         Timeout);
  std::printf("Paper shape: the DI curve dominates (more instances solved "
              "at every timeout).\n");
  return 0;
}
