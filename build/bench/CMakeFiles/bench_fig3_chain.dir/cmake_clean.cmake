file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_chain.dir/bench_fig3_chain.cpp.o"
  "CMakeFiles/bench_fig3_chain.dir/bench_fig3_chain.cpp.o.d"
  "bench_fig3_chain"
  "bench_fig3_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
