# Empty dependencies file for bench_fig13_scatter.
# This may be replaced when dependencies are built.
