# Empty dependencies file for bench_merge_overhead.
# This may be replaced when dependencies are built.
