file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_overhead.dir/bench_merge_overhead.cpp.o"
  "CMakeFiles/bench_merge_overhead.dir/bench_merge_overhead.cpp.o.d"
  "bench_merge_overhead"
  "bench_merge_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
