file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_passify.dir/bench_ablation_passify.cpp.o"
  "CMakeFiles/bench_ablation_passify.dir/bench_ablation_passify.cpp.o.d"
  "bench_ablation_passify"
  "bench_ablation_passify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_passify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
