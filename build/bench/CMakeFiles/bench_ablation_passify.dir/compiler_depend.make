# Empty compiler generated dependencies file for bench_ablation_passify.
# This may be replaced when dependencies are built.
