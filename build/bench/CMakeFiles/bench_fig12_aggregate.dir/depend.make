# Empty dependencies file for bench_fig12_aggregate.
# This may be replaced when dependencies are built.
