file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_aggregate.dir/bench_fig12_aggregate.cpp.o"
  "CMakeFiles/bench_fig12_aggregate.dir/bench_fig12_aggregate.cpp.o.d"
  "bench_fig12_aggregate"
  "bench_fig12_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
