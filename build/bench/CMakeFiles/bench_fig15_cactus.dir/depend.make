# Empty dependencies file for bench_fig15_cactus.
# This may be replaced when dependencies are built.
