file(REMOVE_RECURSE
  "../lib/librmt_bench_common.a"
)
