# Empty compiler generated dependencies file for rmt_bench_common.
# This may be replaced when dependencies are built.
