file(REMOVE_RECURSE
  "../lib/librmt_bench_common.a"
  "../lib/librmt_bench_common.pdb"
  "CMakeFiles/rmt_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/rmt_bench_common.dir/BenchCommon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
