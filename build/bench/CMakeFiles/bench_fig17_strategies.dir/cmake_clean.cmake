file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_strategies.dir/bench_fig17_strategies.cpp.o"
  "CMakeFiles/bench_fig17_strategies.dir/bench_fig17_strategies.cpp.o.d"
  "bench_fig17_strategies"
  "bench_fig17_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
