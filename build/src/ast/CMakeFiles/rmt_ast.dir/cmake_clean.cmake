file(REMOVE_RECURSE
  "CMakeFiles/rmt_ast.dir/Ast.cpp.o"
  "CMakeFiles/rmt_ast.dir/Ast.cpp.o.d"
  "CMakeFiles/rmt_ast.dir/AstContext.cpp.o"
  "CMakeFiles/rmt_ast.dir/AstContext.cpp.o.d"
  "CMakeFiles/rmt_ast.dir/AstPrinter.cpp.o"
  "CMakeFiles/rmt_ast.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/rmt_ast.dir/Eval.cpp.o"
  "CMakeFiles/rmt_ast.dir/Eval.cpp.o.d"
  "librmt_ast.a"
  "librmt_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
