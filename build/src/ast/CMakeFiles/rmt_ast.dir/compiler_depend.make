# Empty compiler generated dependencies file for rmt_ast.
# This may be replaced when dependencies are built.
