file(REMOVE_RECURSE
  "librmt_ast.a"
)
