file(REMOVE_RECURSE
  "CMakeFiles/rmt_transform.dir/Transforms.cpp.o"
  "CMakeFiles/rmt_transform.dir/Transforms.cpp.o.d"
  "librmt_transform.a"
  "librmt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
