# Empty dependencies file for rmt_transform.
# This may be replaced when dependencies are built.
