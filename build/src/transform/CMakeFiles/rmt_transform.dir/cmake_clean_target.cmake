file(REMOVE_RECURSE
  "librmt_transform.a"
)
