file(REMOVE_RECURSE
  "librmt_analysis.a"
)
