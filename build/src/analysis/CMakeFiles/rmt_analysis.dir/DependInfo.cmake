
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Interval.cpp" "src/analysis/CMakeFiles/rmt_analysis.dir/Interval.cpp.o" "gcc" "src/analysis/CMakeFiles/rmt_analysis.dir/Interval.cpp.o.d"
  "/root/repo/src/analysis/InvariantGen.cpp" "src/analysis/CMakeFiles/rmt_analysis.dir/InvariantGen.cpp.o" "gcc" "src/analysis/CMakeFiles/rmt_analysis.dir/InvariantGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/rmt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/rmt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
