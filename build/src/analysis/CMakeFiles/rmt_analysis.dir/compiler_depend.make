# Empty compiler generated dependencies file for rmt_analysis.
# This may be replaced when dependencies are built.
