file(REMOVE_RECURSE
  "CMakeFiles/rmt_analysis.dir/Interval.cpp.o"
  "CMakeFiles/rmt_analysis.dir/Interval.cpp.o.d"
  "CMakeFiles/rmt_analysis.dir/InvariantGen.cpp.o"
  "CMakeFiles/rmt_analysis.dir/InvariantGen.cpp.o.d"
  "librmt_analysis.a"
  "librmt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
