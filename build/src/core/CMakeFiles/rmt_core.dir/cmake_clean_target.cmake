file(REMOVE_RECURSE
  "librmt_core.a"
)
