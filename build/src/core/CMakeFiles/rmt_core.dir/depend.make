# Empty dependencies file for rmt_core.
# This may be replaced when dependencies are built.
