file(REMOVE_RECURSE
  "CMakeFiles/rmt_core.dir/Consistency.cpp.o"
  "CMakeFiles/rmt_core.dir/Consistency.cpp.o.d"
  "CMakeFiles/rmt_core.dir/Disjoint.cpp.o"
  "CMakeFiles/rmt_core.dir/Disjoint.cpp.o.d"
  "CMakeFiles/rmt_core.dir/DotExport.cpp.o"
  "CMakeFiles/rmt_core.dir/DotExport.cpp.o.d"
  "CMakeFiles/rmt_core.dir/Engine.cpp.o"
  "CMakeFiles/rmt_core.dir/Engine.cpp.o.d"
  "CMakeFiles/rmt_core.dir/Strategies.cpp.o"
  "CMakeFiles/rmt_core.dir/Strategies.cpp.o.d"
  "CMakeFiles/rmt_core.dir/VcGen.cpp.o"
  "CMakeFiles/rmt_core.dir/VcGen.cpp.o.d"
  "CMakeFiles/rmt_core.dir/Verifier.cpp.o"
  "CMakeFiles/rmt_core.dir/Verifier.cpp.o.d"
  "librmt_core.a"
  "librmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
