
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Consistency.cpp" "src/core/CMakeFiles/rmt_core.dir/Consistency.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/Consistency.cpp.o.d"
  "/root/repo/src/core/Disjoint.cpp" "src/core/CMakeFiles/rmt_core.dir/Disjoint.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/Disjoint.cpp.o.d"
  "/root/repo/src/core/DotExport.cpp" "src/core/CMakeFiles/rmt_core.dir/DotExport.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/DotExport.cpp.o.d"
  "/root/repo/src/core/Engine.cpp" "src/core/CMakeFiles/rmt_core.dir/Engine.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/Engine.cpp.o.d"
  "/root/repo/src/core/Strategies.cpp" "src/core/CMakeFiles/rmt_core.dir/Strategies.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/Strategies.cpp.o.d"
  "/root/repo/src/core/VcGen.cpp" "src/core/CMakeFiles/rmt_core.dir/VcGen.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/VcGen.cpp.o.d"
  "/root/repo/src/core/Verifier.cpp" "src/core/CMakeFiles/rmt_core.dir/Verifier.cpp.o" "gcc" "src/core/CMakeFiles/rmt_core.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/rmt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/rmt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/rmt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/rmt_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/rmt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
