# Empty compiler generated dependencies file for rmt_parser.
# This may be replaced when dependencies are built.
