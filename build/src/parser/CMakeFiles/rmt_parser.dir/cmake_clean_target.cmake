file(REMOVE_RECURSE
  "librmt_parser.a"
)
