file(REMOVE_RECURSE
  "CMakeFiles/rmt_parser.dir/Lexer.cpp.o"
  "CMakeFiles/rmt_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/rmt_parser.dir/Parser.cpp.o"
  "CMakeFiles/rmt_parser.dir/Parser.cpp.o.d"
  "CMakeFiles/rmt_parser.dir/TypeCheck.cpp.o"
  "CMakeFiles/rmt_parser.dir/TypeCheck.cpp.o.d"
  "librmt_parser.a"
  "librmt_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
