file(REMOVE_RECURSE
  "librmt_workload.a"
)
