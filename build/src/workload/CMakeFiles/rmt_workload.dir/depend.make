# Empty dependencies file for rmt_workload.
# This may be replaced when dependencies are built.
