file(REMOVE_RECURSE
  "CMakeFiles/rmt_workload.dir/Chain.cpp.o"
  "CMakeFiles/rmt_workload.dir/Chain.cpp.o.d"
  "CMakeFiles/rmt_workload.dir/RandomProg.cpp.o"
  "CMakeFiles/rmt_workload.dir/RandomProg.cpp.o.d"
  "CMakeFiles/rmt_workload.dir/SdvGen.cpp.o"
  "CMakeFiles/rmt_workload.dir/SdvGen.cpp.o.d"
  "librmt_workload.a"
  "librmt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
