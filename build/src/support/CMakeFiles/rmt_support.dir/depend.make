# Empty dependencies file for rmt_support.
# This may be replaced when dependencies are built.
