file(REMOVE_RECURSE
  "CMakeFiles/rmt_support.dir/Diag.cpp.o"
  "CMakeFiles/rmt_support.dir/Diag.cpp.o.d"
  "CMakeFiles/rmt_support.dir/Rng.cpp.o"
  "CMakeFiles/rmt_support.dir/Rng.cpp.o.d"
  "CMakeFiles/rmt_support.dir/Stats.cpp.o"
  "CMakeFiles/rmt_support.dir/Stats.cpp.o.d"
  "CMakeFiles/rmt_support.dir/StringInterner.cpp.o"
  "CMakeFiles/rmt_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/rmt_support.dir/Table.cpp.o"
  "CMakeFiles/rmt_support.dir/Table.cpp.o.d"
  "librmt_support.a"
  "librmt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
