file(REMOVE_RECURSE
  "librmt_support.a"
)
