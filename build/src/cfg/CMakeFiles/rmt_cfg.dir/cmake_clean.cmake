file(REMOVE_RECURSE
  "CMakeFiles/rmt_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/rmt_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/rmt_cfg.dir/Lower.cpp.o"
  "CMakeFiles/rmt_cfg.dir/Lower.cpp.o.d"
  "librmt_cfg.a"
  "librmt_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
