file(REMOVE_RECURSE
  "librmt_cfg.a"
)
