# Empty compiler generated dependencies file for rmt_cfg.
# This may be replaced when dependencies are built.
