# Empty compiler generated dependencies file for rmt_smt.
# This may be replaced when dependencies are built.
