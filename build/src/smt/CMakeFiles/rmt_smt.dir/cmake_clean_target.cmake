file(REMOVE_RECURSE
  "librmt_smt.a"
)
