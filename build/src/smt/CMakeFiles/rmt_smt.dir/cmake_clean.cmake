file(REMOVE_RECURSE
  "CMakeFiles/rmt_smt.dir/SmtLibPrinter.cpp.o"
  "CMakeFiles/rmt_smt.dir/SmtLibPrinter.cpp.o.d"
  "CMakeFiles/rmt_smt.dir/Term.cpp.o"
  "CMakeFiles/rmt_smt.dir/Term.cpp.o.d"
  "CMakeFiles/rmt_smt.dir/Translate.cpp.o"
  "CMakeFiles/rmt_smt.dir/Translate.cpp.o.d"
  "CMakeFiles/rmt_smt.dir/Z3Solver.cpp.o"
  "CMakeFiles/rmt_smt.dir/Z3Solver.cpp.o.d"
  "librmt_smt.a"
  "librmt_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmt_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
