
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/SmtLibPrinter.cpp" "src/smt/CMakeFiles/rmt_smt.dir/SmtLibPrinter.cpp.o" "gcc" "src/smt/CMakeFiles/rmt_smt.dir/SmtLibPrinter.cpp.o.d"
  "/root/repo/src/smt/Term.cpp" "src/smt/CMakeFiles/rmt_smt.dir/Term.cpp.o" "gcc" "src/smt/CMakeFiles/rmt_smt.dir/Term.cpp.o.d"
  "/root/repo/src/smt/Translate.cpp" "src/smt/CMakeFiles/rmt_smt.dir/Translate.cpp.o" "gcc" "src/smt/CMakeFiles/rmt_smt.dir/Translate.cpp.o.d"
  "/root/repo/src/smt/Z3Solver.cpp" "src/smt/CMakeFiles/rmt_smt.dir/Z3Solver.cpp.o" "gcc" "src/smt/CMakeFiles/rmt_smt.dir/Z3Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/rmt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
