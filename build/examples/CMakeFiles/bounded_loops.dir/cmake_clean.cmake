file(REMOVE_RECURSE
  "CMakeFiles/bounded_loops.dir/bounded_loops.cpp.o"
  "CMakeFiles/bounded_loops.dir/bounded_loops.cpp.o.d"
  "bounded_loops"
  "bounded_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
