# Empty compiler generated dependencies file for bounded_loops.
# This may be replaced when dependencies are built.
