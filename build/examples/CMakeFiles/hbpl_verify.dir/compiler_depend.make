# Empty compiler generated dependencies file for hbpl_verify.
# This may be replaced when dependencies are built.
