file(REMOVE_RECURSE
  "CMakeFiles/hbpl_verify.dir/hbpl_verify.cpp.o"
  "CMakeFiles/hbpl_verify.dir/hbpl_verify.cpp.o.d"
  "hbpl_verify"
  "hbpl_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbpl_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
