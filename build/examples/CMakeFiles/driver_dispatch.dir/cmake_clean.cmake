file(REMOVE_RECURSE
  "CMakeFiles/driver_dispatch.dir/driver_dispatch.cpp.o"
  "CMakeFiles/driver_dispatch.dir/driver_dispatch.cpp.o.d"
  "driver_dispatch"
  "driver_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
