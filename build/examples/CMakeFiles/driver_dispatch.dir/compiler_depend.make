# Empty compiler generated dependencies file for driver_dispatch.
# This may be replaced when dependencies are built.
