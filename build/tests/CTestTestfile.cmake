# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/disjoint_test[1]_include.cmake")
include("/root/repo/build/tests/vcgen_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/passify_test[1]_include.cmake")
include("/root/repo/build/tests/bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/programs_test[1]_include.cmake")
