# Empty compiler generated dependencies file for passify_test.
# This may be replaced when dependencies are built.
