file(REMOVE_RECURSE
  "CMakeFiles/passify_test.dir/passify_test.cpp.o"
  "CMakeFiles/passify_test.dir/passify_test.cpp.o.d"
  "passify_test"
  "passify_test.pdb"
  "passify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
