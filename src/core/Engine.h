//===- Engine.h - Eager, stratified and DAG-inlining engines ----*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reachability engines of Section 4:
///
///  * Eager     — inline every open edge up front (tree unless a merging
///                strategy is given), then one solver call. This is the
///                CBMC-style baseline of Fig. 3 and the full-inlining mode
///                of Figs. 4/17.
///  * Stratified— Corral's stratified inlining: keep open edges as havoc
///                summaries; alternate an under-approximate check (all open
///                edges blocked — SAT means a real bug) with an
///                over-approximate check (open edges free — UNSAT means
///                safe), inlining the open edges the over-approximate model
///                steps into. With the NONE strategy this is SI; with any
///                merging strategy it is DI ("We implemented DAG inlining
///                using the framework of SI").
///
/// The engine owns the TermArena, the solver, the VcContext, the
/// DisjointAnalysis/ConsistencyChecker pair and the strategy, and reports
/// the statistics the paper's tables use (#inlined, times, solver calls,
/// merge-lookup overhead).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_ENGINE_H
#define RMT_CORE_ENGINE_H

#include "core/Strategies.h"
#include "core/VcGen.h"
#include "smt/Solver.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <optional>

namespace rmt {

/// Outcome of one engine run.
enum class Verdict {
  Bug,         ///< a terminating execution reaching the error bit exists
  Safe,        ///< no such execution within the bound
  Timeout,     ///< wall-clock budget exhausted (paper's #TO)
  ResourceOut, ///< inlining limit exceeded (paper's spaceout)
  Unknown,     ///< solver gave up
};

/// Printable name of \p V.
const char *verdictName(Verdict V);

/// One step of a counterexample trace.
struct TraceStep {
  ProcId Proc = InvalidProc;
  LabelId Label = InvalidLabel;
  SrcLoc Loc;
  /// Model value of each global (aligned with CfgProgram::Globals) at this
  /// label's entry; booleans as 0/1, arrays as 0 (not rendered).
  std::vector<int64_t> GlobalValues;
};

/// Result and statistics of one engine run.
struct VerifyResult {
  Verdict Outcome = Verdict::Unknown;
  double Seconds = 0;
  /// Gen_pVC invocations — the paper's "#Inlined".
  size_t NumInlined = 0;
  /// Open-edge bindings that reused an existing node.
  size_t NumMerged = 0;
  size_t NumSolverChecks = 0;
  /// NumSolverChecks split by check kind: under-approximate (all open edges
  /// blocked; the eager engine's single exact check counts here — it has no
  /// open edges left) vs over-approximate (open edges free).
  size_t NumUnderChecks = 0;
  size_t NumOverChecks = 0;
  /// Wall time spent inside Solver::check across all checks.
  double SolverSeconds = 0;
  size_t NumIterations = 0;
  /// Wall time spent inside strategy picks (the paper reports 0.4% for
  /// FIRST).
  double MergeLookupSeconds = 0;
  uint64_t NumDisjQueries = 0;
  /// On Bug: an error trace (pre-order over the inlining structure).
  std::vector<TraceStep> Trace;

  /// Records everything above (minus the trace) into \p S under "engine.*"
  /// keys, for --stats/--stats-json style reporting.
  void record(Stats &S) const;
};

/// Engine configuration.
struct EngineOptions {
  /// Merging strategy. None = tree inlining (plain SI / eager tree).
  StrategyOptions Strategy;
  /// pVC generation mode: the paper's literal Gen_pVC or the passified
  /// variant (ablation; see PvcMode).
  PvcMode Pvc = PvcMode::Paper;
  /// Wall-clock budget; <= 0 disables.
  double TimeoutSeconds = 0;
  /// Eager mode: fully inline before the single solver call.
  bool Eager = false;
  /// Eager mode: skip solving (size-only experiments, Figs. 4/17).
  bool SkipSolve = false;
  /// Abort with ResourceOut past this many inlined instances.
  size_t MaxInlined = 1u << 20;
  /// Optional event recorder (see support/Trace.h). The engine emits
  /// per-iteration spans, under-/over-approximate check spans, one instant
  /// event per inline/merge decision, and a final verdict event. Null or
  /// disabled costs one branch per site.
  rmt::Trace *Telemetry = nullptr;
};

/// Decides the reachability query "does \p Entry have a terminating
/// execution in which global \p ErrGlobal is true on exit?" over the
/// hierarchical program \p Prog. When \p ErrGlobal is nullopt the query is
/// plain termination reachability (Definition 1).
VerifyResult solveReachability(const AstContext &Ctx, const CfgProgram &Prog,
                               ProcId Entry, std::optional<Symbol> ErrGlobal,
                               const EngineOptions &Opts);

} // namespace rmt

#endif // RMT_CORE_ENGINE_H
