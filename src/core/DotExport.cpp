//===- DotExport.cpp ------------------------------------------------------===//

#include "core/DotExport.h"

#include "ast/AstPrinter.h"

#include <map>
#include <vector>

using namespace rmt;

namespace {

/// DOT string literals need escaping for quotes and backslashes.
std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

std::string rmt::inliningDagToDot(const AstContext &Ctx,
                                  const VcContext &Vc) {
  std::vector<unsigned> InDegree(Vc.numNodes(), 0);
  for (EdgeId E = 0; E < Vc.numEdges(); ++E)
    if (!Vc.edge(E).isOpen())
      ++InDegree[Vc.edge(E).Dest];

  std::string Out = "digraph inlining_dag {\n"
                    "  rankdir=TB;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId N = 0; N < Vc.numNodes(); ++N) {
    const VcNode &Node = Vc.node(N);
    std::string Name = Ctx.name(Vc.program().proc(Node.Proc).Name);
    Out += "  n" + std::to_string(N) + " [label=\"" + escape(Name) + " #" +
           std::to_string(N) + "\"";
    if (InDegree[N] > 1)
      Out += ", style=filled, fillcolor=lightblue"; // a merged instance
    Out += "];\n";
  }
  unsigned OpenCount = 0;
  for (EdgeId E = 0; E < Vc.numEdges(); ++E) {
    const VcEdge &Edge = Vc.edge(E);
    std::string Label = "L" + std::to_string(Edge.CallSite);
    if (Edge.isOpen()) {
      // Render the open edge to a placeholder node.
      std::string Stub = "open" + std::to_string(OpenCount++);
      Out += "  " + Stub + " [label=\"open: " +
             escape(Ctx.name(Vc.program().proc(Edge.Callee).Name)) +
             "\", shape=ellipse, style=dashed];\n";
      Out += "  n" + std::to_string(Edge.Src) + " -> " + Stub +
             " [label=\"" + Label + "\", style=dashed];\n";
      continue;
    }
    Out += "  n" + std::to_string(Edge.Src) + " -> n" +
           std::to_string(Edge.Dest) + " [label=\"" + Label + "\"];\n";
  }
  Out += "}\n";
  return Out;
}

std::string rmt::callGraphToDot(const AstContext &Ctx,
                                const CfgProgram &Prog) {
  std::string Out = "digraph call_graph {\n  node [shape=box];\n";
  for (ProcId P = 0; P < Prog.Procs.size(); ++P)
    Out += "  p" + std::to_string(P) + " [label=\"" +
           escape(Ctx.name(Prog.proc(P).Name)) + "\"];\n";
  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    std::map<ProcId, unsigned> Multiplicity;
    for (ProcId C : Prog.calleesOf(P))
      ++Multiplicity[C];
    for (const auto &[Callee, Count] : Multiplicity) {
      Out += "  p" + std::to_string(P) + " -> p" + std::to_string(Callee);
      if (Count > 1)
        Out += " [label=\"x" + std::to_string(Count) + "\"]";
      Out += ";\n";
    }
  }
  Out += "}\n";
  return Out;
}

std::string rmt::cfgToDot(const AstContext &Ctx, const CfgProgram &Prog,
                          ProcId P) {
  const CfgProc &Proc = Prog.proc(P);
  std::string Out = "digraph cfg_" + Ctx.name(Proc.Name) +
                    " {\n  node [shape=box, fontname=\"monospace\"];\n";
  for (LabelId L : Proc.Labels) {
    const CfgLabel &Lbl = Prog.label(L);
    std::string Text = "L" + std::to_string(L) + ": ";
    switch (Lbl.Stmt.Kind) {
    case CfgStmtKind::Assume:
      Text += "assume " + printExpr(Ctx, Lbl.Stmt.E);
      break;
    case CfgStmtKind::Assign:
      Text += Ctx.name(Lbl.Stmt.Target) + " := " +
              printExpr(Ctx, Lbl.Stmt.E);
      break;
    case CfgStmtKind::Havoc:
      Text += "havoc";
      break;
    case CfgStmtKind::Call:
      Text += "call " + Ctx.name(Prog.proc(Lbl.Stmt.Callee).Name);
      break;
    }
    Out += "  l" + std::to_string(L) + " [label=\"" + escape(Text) + "\"";
    if (L == Proc.Entry)
      Out += ", style=bold";
    if (Lbl.Targets.empty())
      Out += ", peripheries=2"; // exit label
    Out += "];\n";
  }
  for (LabelId L : Proc.Labels)
    for (LabelId T : Prog.label(L).Targets)
      Out += "  l" + std::to_string(L) + " -> l" + std::to_string(T) +
             ";\n";
  Out += "}\n";
  return Out;
}
