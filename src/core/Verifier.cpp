//===- Verifier.cpp -------------------------------------------------------===//

#include "core/Verifier.h"

#include "analysis/InvariantGen.h"
#include "ast/AstPrinter.h"
#include "cfg/Lower.h"
#include "transform/Transforms.h"

#include <algorithm>

using namespace rmt;

VerifierRunResult rmt::verifyProgram(AstContext &Ctx, const Program &Prog,
                                     Symbol Entry,
                                     const VerifierOptions &Opts) {
  VerifierRunResult Out;
  TraceSpan VerifySpan(Opts.Telemetry, "verify",
                       {{"entry", Ctx.name(Entry)}, {"bound", Opts.Bound}});

  TraceSpan BoundSpan(Opts.Telemetry, "verify.bound");
  BoundedInstance Instance = prepareBounded(Ctx, Prog, Entry, Opts.Bound);
  BoundSpan.close();
  Out.NumAsserts = Instance.NumAsserts;

  TraceSpan LowerSpan(Opts.Telemetry, "verify.lower");
  CfgProgram Cfg = lowerToCfg(Ctx, Instance.Prog);
  LowerSpan.note({"labels", Cfg.Labels.size()});
  LowerSpan.close();
  assert(Cfg.isHierarchical() && "bounding must yield a hierarchical program");
  Out.NumProcs = Cfg.Procs.size();
  Out.NumLabels = Cfg.Labels.size();

  ProcId EntryProc = Cfg.findProc(Instance.Entry);
  assert(EntryProc != InvalidProc && "entry lost during lowering");

  Out.NumProcsSolved = Out.NumProcs;
  Out.NumLabelsSolved = Out.NumLabels;
  if (Opts.UsePrepass) {
    // +Inv rides the pipeline as its last pass (unless an explicit
    // --passes list took over the ordering).
    PrepassOptions PO = Opts.Prepass;
    PO.Invariants = PO.Invariants || Opts.UseInvariants;
    if (!PO.Telemetry)
      PO.Telemetry = Opts.Telemetry;
    Out.Prepass = runPrepass(Ctx, Cfg, EntryProc, Instance.ErrVar, PO,
                             &Out.PrepassStats);
    Out.Prepass.record(Out.PrepassStats);
    Out.InvariantConjuncts = Out.Prepass.InvariantConjuncts;
    Out.NumProcsSolved = Cfg.Procs.size();
    Out.NumLabelsSolved = Cfg.Labels.size();
    if (!Out.Prepass.ok()) {
      // A pass broke a structural invariant (--verify-each) or the pipeline
      // spec did not parse: the rewritten program cannot be trusted, so
      // refuse to solve it rather than risk a wrong verdict.
      Out.Result.Outcome = Verdict::Unknown;
      return Out;
    }
  } else if (Opts.UseInvariants) {
    InvariantReport Report = injectInvariants(Ctx, Cfg, EntryProc);
    Out.InvariantConjuncts = Report.Conjuncts;
  }

  EngineOptions EO = Opts.Engine;
  if (!EO.Telemetry)
    EO.Telemetry = Opts.Telemetry;
  Out.Result = solveReachability(Ctx, Cfg, EntryProc, Instance.ErrVar, EO);
  VerifySpan.note({"verdict", verdictName(Out.Result.Outcome)});
  if (Out.Result.Outcome == Verdict::Bug)
    Out.TraceText = renderTrace(Ctx, Cfg, Out.Result.Trace);
  return Out;
}

DeepeningResult rmt::verifyIterativeDeepening(AstContext &Ctx,
                                              const Program &Prog,
                                              Symbol Entry,
                                              VerifierOptions Opts,
                                              unsigned MaxBound) {
  assert(MaxBound >= 1 && "need at least bound 1");
  Deadline Budget(Opts.Engine.TimeoutSeconds);
  DeepeningResult Out;

  unsigned Bound = 1;
  for (;;) {
    Opts.Bound = Bound;
    Opts.Engine.TimeoutSeconds =
        Budget.enabled() ? std::max(Budget.remaining(), 0.001) : 0;
    Out.BoundsTried.push_back(Bound);
    Out.Last = verifyProgram(Ctx, Prog, Entry, Opts);

    switch (Out.Last.Result.Outcome) {
    case Verdict::Bug:
      Out.ReachedBound = Bound;
      return Out; // a bug at any bound is a real bug
    case Verdict::Safe:
      Out.ReachedBound = Bound;
      break; // escalate
    case Verdict::Timeout:
    case Verdict::ResourceOut:
    case Verdict::Unknown:
      return Out; // ReachedBound reports the last decided bound
    }
    if (Bound >= MaxBound)
      return Out;
    Bound = std::min(Bound * 2, MaxBound);
    if (Budget.expired()) {
      Out.Last.Result.Outcome = Verdict::Timeout;
      return Out;
    }
  }
}

std::string rmt::renderTrace(const AstContext &Ctx, const CfgProgram &Prog,
                             const std::vector<TraceStep> &Trace) {
  std::string Out;
  std::vector<int64_t> LastValues;
  for (const TraceStep &Step : Trace) {
    Out += Ctx.name(Prog.proc(Step.Proc).Name);
    Out += " L" + std::to_string(Step.Label);
    if (Step.Loc.isValid())
      Out += " (line " + std::to_string(Step.Loc.Line) + ")";
    const CfgStmt &S = Prog.label(Step.Label).Stmt;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      Out += ": assume " + printExpr(Ctx, S.E);
      break;
    case CfgStmtKind::Assign:
      Out += ": " + Ctx.name(S.Target) + " := " + printExpr(Ctx, S.E);
      break;
    case CfgStmtKind::Havoc:
      Out += ": havoc";
      break;
    case CfgStmtKind::Call:
      Out += ": call " + Ctx.name(Prog.proc(S.Callee).Name);
      break;
    }
    // Show global model values whenever they changed since the last step
    // (skipping arrays, which are captured as 0).
    if (!Step.GlobalValues.empty() && Step.GlobalValues != LastValues) {
      std::string Values;
      for (size_t I = 0; I < Prog.Globals.size(); ++I) {
        const VarDecl &G = Prog.Globals[I];
        if (G.Ty->isArray())
          continue;
        if (!Values.empty())
          Values += ", ";
        Values += Ctx.name(G.Name) + "=";
        if (G.Ty->isBool())
          Values += Step.GlobalValues[I] ? "true" : "false";
        else
          Values += std::to_string(Step.GlobalValues[I]);
      }
      if (!Values.empty())
        Out += "   [" + Values + "]";
      LastValues = Step.GlobalValues;
    }
    Out += "\n";
  }
  return Out;
}
