//===- Strategies.cpp -----------------------------------------------------===//

#include "core/Strategies.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

using namespace rmt;

MergeStrategy::~MergeStrategy() = default;
void MergeStrategy::noteNewNode(NodeId, EdgeId) {}

std::optional<MergeStrategyKind>
rmt::parseStrategyKind(const std::string &Name) {
  if (Name == "none")
    return MergeStrategyKind::None;
  if (Name == "first")
    return MergeStrategyKind::First;
  if (Name == "random")
    return MergeStrategyKind::Random;
  if (Name == "randompick")
    return MergeStrategyKind::RandomPick;
  if (Name == "maxc")
    return MergeStrategyKind::MaxC;
  if (Name == "opt")
    return MergeStrategyKind::Opt;
  return std::nullopt;
}

const char *rmt::strategyName(MergeStrategyKind Kind) {
  switch (Kind) {
  case MergeStrategyKind::None:
    return "none";
  case MergeStrategyKind::First:
    return "first";
  case MergeStrategyKind::Random:
    return "random";
  case MergeStrategyKind::RandomPick:
    return "randompick";
  case MergeStrategyKind::MaxC:
    return "maxc";
  case MergeStrategyKind::Opt:
    return "opt";
  }
  return "?";
}

namespace {

/// Candidates for edge \p C: instances of the callee that pass canBind, in
/// chronological order (the paper's set M).
std::vector<NodeId> compatibleNodes(const VcContext &Vc,
                                    ConsistencyChecker &Checker, EdgeId C) {
  std::vector<NodeId> M;
  for (NodeId N : Vc.instancesOf(Vc.edge(C).Callee))
    if (Checker.canBind(C, N))
      M.push_back(N);
  return M;
}

class NoneStrategy final : public MergeStrategy {
public:
  std::optional<NodeId> pick(const VcContext &, ConsistencyChecker &,
                             EdgeId) override {
    return std::nullopt;
  }
};

class FirstStrategy final : public MergeStrategy {
public:
  std::optional<NodeId> pick(const VcContext &Vc, ConsistencyChecker &Checker,
                             EdgeId C) override {
    for (NodeId N : Vc.instancesOf(Vc.edge(C).Callee))
      if (Checker.canBind(C, N))
        return N;
    return std::nullopt;
  }
};

class RandomStrategy final : public MergeStrategy {
public:
  RandomStrategy(uint64_t Seed, unsigned NoneChance, bool AlwaysPick)
      : Gen(Seed), NoneChance(NoneChance), AlwaysPick(AlwaysPick) {}

  std::optional<NodeId> pick(const VcContext &Vc, ConsistencyChecker &Checker,
                             EdgeId C) override {
    if (!AlwaysPick && Gen.chance(NoneChance, 256))
      return std::nullopt;
    std::vector<NodeId> M = compatibleNodes(Vc, Checker, C);
    if (M.empty())
      return std::nullopt;
    return M[Gen.below(M.size())];
  }

private:
  Rng Gen;
  unsigned NoneChance;
  bool AlwaysPick; // true => RANDOMPICK, false => RANDOM
};

class MaxCStrategy final : public MergeStrategy {
public:
  std::optional<NodeId> pick(const VcContext &Vc, ConsistencyChecker &Checker,
                             EdgeId C) override {
    std::optional<NodeId> Best;
    size_t BestSize = 0;
    for (NodeId N : compatibleNodes(Vc, Checker, C)) {
      size_t Size = Checker.numDescendants(N);
      if (!Best || Size > BestSize) {
        Best = N;
        BestSize = Size;
      }
    }
    return Best;
  }
};

//===----------------------------------------------------------------------===//
// OPT
//===----------------------------------------------------------------------===//

/// The precomputed optimal-compression DAG Do.
struct OptDag {
  bool Ok = false;
  size_t TreeSize = 0;
  uint32_t RootDoNode = 0;
  size_t NumDoNodes = 0;
  /// (DoSrc, call-site) -> DoDst. First writer wins; the engine-side canBind
  /// re-validation keeps any residual ambiguity sound.
  std::unordered_map<uint64_t, uint32_t> Edge;

  static uint64_t key(uint32_t DoSrc, LabelId Site) {
    return (static_cast<uint64_t>(DoSrc) << 32) | Site;
  }
};

OptDag buildOptDag(const CfgProgram &Prog, const DisjointAnalysis &Disj,
                   ProcId Root, size_t MaxTreeNodes) {
  OptDag Do;

  struct TNode {
    ProcId Proc;
    uint32_t Parent;   // ~0u for the root
    LabelId Site;      // call site in the parent
    uint32_t Depth;
  };
  std::vector<TNode> Tree;
  Tree.push_back({Root, ~0u, InvalidLabel, 0});

  // Call labels per procedure, cached.
  std::unordered_map<ProcId, std::vector<LabelId>> CallLabels;
  auto callsOf = [&](ProcId P) -> const std::vector<LabelId> & {
    auto It = CallLabels.find(P);
    if (It != CallLabels.end())
      return It->second;
    std::vector<LabelId> Calls;
    for (LabelId L : Prog.proc(P).Labels)
      if (Prog.label(L).Stmt.Kind == CfgStmtKind::Call)
        Calls.push_back(L);
    return CallLabels.emplace(P, std::move(Calls)).first->second;
  };

  // Breadth-first full unrolling of the call graph.
  for (size_t I = 0; I < Tree.size(); ++I) {
    if (Tree.size() > MaxTreeNodes)
      return Do; // Ok stays false: the paper's OPT T/O case
    for (LabelId Call : callsOf(Tree[I].Proc))
      Tree.push_back({Prog.label(Call).Stmt.Callee, static_cast<uint32_t>(I),
                      Call, Tree[I].Depth + 1});
  }
  Do.TreeSize = Tree.size();

  // Two instances of one procedure conflict iff their configurations are
  // not disjoint, i.e. iff the call sites where their root paths diverge
  // are not Disj_blk (Lemma 1). Instances of one procedure are never
  // ancestor-related (the call graph is acyclic).
  auto conflicts = [&](uint32_t A, uint32_t B) {
    while (Tree[A].Depth > Tree[B].Depth)
      A = Tree[A].Parent;
    while (Tree[B].Depth > Tree[A].Depth)
      B = Tree[B].Parent;
    assert(A != B && "instances of one procedure cannot be nested");
    while (Tree[A].Parent != Tree[B].Parent) {
      A = Tree[A].Parent;
      B = Tree[B].Parent;
    }
    return !Disj.disjointLabels(Tree[A].Site, Tree[B].Site);
  };

  // Group instances per procedure (tree order == chronological order).
  std::unordered_map<ProcId, std::vector<uint32_t>> ByProc;
  for (uint32_t I = 0; I < Tree.size(); ++I)
    ByProc[Tree[I].Proc].push_back(I);

  // Colour each per-procedure conflict graph. Minimum colouring is NP-hard;
  // "colour with minimum colours possible" becomes the best of three
  // heuristics: chronological first-fit (optimal for the interval-like
  // graphs sequential control flow induces), Welsh-Powell, and DSATUR.
  std::vector<uint32_t> ColorOf(Tree.size(), 0);
  uint32_t NextDoNode = 0;
  for (auto &[Proc, Instances] : ByProc) {
    (void)Proc;
    size_t K = Instances.size();
    std::vector<Bitset> Adj(K);
    std::vector<size_t> Degree(K, 0);
    for (size_t I = 0; I < K; ++I)
      for (size_t J = I + 1; J < K; ++J)
        if (conflicts(Instances[I], Instances[J])) {
          Adj[I].set(J);
          Adj[J].set(I);
          ++Degree[I];
          ++Degree[J];
        }

    auto FirstFit = [&](const std::vector<size_t> &Order,
                        std::vector<uint32_t> &Colors) -> uint32_t {
      Colors.assign(K, ~0u);
      uint32_t NumColors = 0;
      for (size_t Pos : Order) {
        std::vector<bool> Used(NumColors, false);
        for (size_t J = 0; J < K; ++J)
          if (Colors[J] != ~0u && Adj[Pos].test(J))
            Used[Colors[J]] = true;
        uint32_t Color = 0;
        while (Color < NumColors && Used[Color])
          ++Color;
        if (Color == NumColors)
          ++NumColors;
        Colors[Pos] = Color;
      }
      return NumColors;
    };

    std::vector<size_t> Chrono(K);
    for (size_t I = 0; I < K; ++I)
      Chrono[I] = I;
    std::vector<size_t> ByDegree = Chrono;
    std::stable_sort(ByDegree.begin(), ByDegree.end(),
                     [&](size_t A, size_t B) { return Degree[A] > Degree[B]; });

    std::vector<uint32_t> Best, Candidate;
    uint32_t BestColors = FirstFit(Chrono, Best);
    if (uint32_t N = FirstFit(ByDegree, Candidate); N < BestColors) {
      BestColors = N;
      Best = Candidate;
    }

    // DSATUR: colour the vertex with the most distinctly-coloured
    // neighbours next (ties by degree).
    {
      std::vector<uint32_t> Colors(K, ~0u);
      std::vector<std::set<uint32_t>> Saturation(K);
      uint32_t NumColors = 0;
      for (size_t Step = 0; Step < K; ++Step) {
        size_t Pick = K;
        for (size_t I = 0; I < K; ++I) {
          if (Colors[I] != ~0u)
            continue;
          if (Pick == K ||
              Saturation[I].size() > Saturation[Pick].size() ||
              (Saturation[I].size() == Saturation[Pick].size() &&
               Degree[I] > Degree[Pick]))
            Pick = I;
        }
        uint32_t Color = 0;
        while (Saturation[Pick].count(Color))
          ++Color;
        Colors[Pick] = Color;
        if (Color >= NumColors)
          NumColors = Color + 1;
        for (size_t J = 0; J < K; ++J)
          if (Adj[Pick].test(J) && Colors[J] == ~0u)
            Saturation[J].insert(Color);
      }
      if (NumColors < BestColors) {
        BestColors = NumColors;
        Best = Colors;
      }
    }

    for (size_t I = 0; I < K; ++I)
      ColorOf[Instances[I]] = NextDoNode + Best[I];
    NextDoNode += BestColors;
  }
  Do.NumDoNodes = NextDoNode;
  Do.RootDoNode = ColorOf[0];

  for (uint32_t I = 1; I < Tree.size(); ++I)
    Do.Edge.emplace(OptDag::key(ColorOf[Tree[I].Parent], Tree[I].Site),
                    ColorOf[I]);

  Do.Ok = true;
  return Do;
}

class OptStrategy final : public MergeStrategy {
public:
  OptStrategy(OptDag Do) : Do(std::move(Do)) {
    if (this->Do.Ok)
      Host.assign(this->Do.NumDoNodes, InvalidNode);
  }

  std::optional<NodeId> pick(const VcContext &Vc, ConsistencyChecker &Checker,
                             EdgeId C) override {
    if (!Do.Ok) {
      // Precompute overflowed: fall back to FIRST (documented behaviour).
      for (NodeId N : Vc.instancesOf(Vc.edge(C).Callee))
        if (Checker.canBind(C, N))
          return N;
      return std::nullopt;
    }
    std::optional<uint32_t> Target = imageOfEdgeTarget(Vc, C);
    if (!Target)
      return std::nullopt;
    NodeId H = Host[*Target];
    if (H == InvalidNode)
      return std::nullopt; // fresh node will claim this Do slot
    if (!Checker.canBind(C, H))
      return std::nullopt; // safety net; should not trigger
    return H;
  }

  void noteNewNode(NodeId N, EdgeId Cause) override {
    if (!Do.Ok)
      return;
    if (Cause == InvalidEdge) {
      setImage(N, Do.RootDoNode);
      return;
    }
    if (std::optional<uint32_t> Target = imageOfEdgeTarget(LastVc, Cause))
      setImage(N, *Target);
  }

  std::optional<uint32_t> imageOfEdgeTarget(const VcContext &Vc, EdgeId C) {
    LastVc = &Vc;
    const VcEdge &E = Vc.edge(C);
    auto ImgIt = Image.find(E.Src);
    if (ImgIt == Image.end())
      return std::nullopt;
    auto It = Do.Edge.find(OptDag::key(ImgIt->second, E.CallSite));
    if (It == Do.Edge.end())
      return std::nullopt;
    return It->second;
  }

private:
  // noteNewNode has no VcContext parameter; remember the last one seen.
  // Engines use a single VcContext per run, so this is stable.
  std::optional<uint32_t> imageOfEdgeTarget(const VcContext *Vc, EdgeId C) {
    assert(Vc && "noteNewNode before any pick");
    return imageOfEdgeTarget(*Vc, C);
  }

  void setImage(NodeId N, uint32_t DoNode) {
    Image[N] = DoNode;
    if (Host[DoNode] == InvalidNode)
      Host[DoNode] = N;
  }

  OptDag Do;
  std::vector<NodeId> Host;                    // Do node -> hosting D node
  std::unordered_map<NodeId, uint32_t> Image;  // D node -> Do node
  const VcContext *LastVc = nullptr;
};

} // namespace

std::unique_ptr<MergeStrategy> rmt::createStrategy(const StrategyOptions &Opts,
                                                   const CfgProgram &Prog,
                                                   const DisjointAnalysis &Disj,
                                                   ProcId Root) {
  switch (Opts.Kind) {
  case MergeStrategyKind::None:
    return std::make_unique<NoneStrategy>();
  case MergeStrategyKind::First:
    return std::make_unique<FirstStrategy>();
  case MergeStrategyKind::Random:
    return std::make_unique<RandomStrategy>(Opts.Seed, Opts.NoneChance,
                                            /*AlwaysPick=*/false);
  case MergeStrategyKind::RandomPick:
    return std::make_unique<RandomStrategy>(Opts.Seed, Opts.NoneChance,
                                            /*AlwaysPick=*/true);
  case MergeStrategyKind::MaxC:
    return std::make_unique<MaxCStrategy>();
  case MergeStrategyKind::Opt:
    return std::make_unique<OptStrategy>(
        buildOptDag(Prog, Disj, Root, Opts.MaxTreeNodes));
  }
  return std::make_unique<FirstStrategy>();
}

OptPrecomputeStats rmt::precomputeOptDag(const CfgProgram &Prog,
                                         const DisjointAnalysis &Disj,
                                         ProcId Root, size_t MaxTreeNodes) {
  OptDag Do = buildOptDag(Prog, Disj, Root, MaxTreeNodes);
  OptPrecomputeStats Stats;
  Stats.Succeeded = Do.Ok;
  Stats.TreeSize = Do.TreeSize;
  Stats.DagSize = Do.NumDoNodes;
  return Stats;
}
