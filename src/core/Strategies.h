//===- Strategies.h - Merging strategies (Section 3.4) ----------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's strategies for resolving the nondeterministic "pick compatible
/// n" of Fig. 8 line 20:
///
///  * NONE       — always inline fresh (degenerates to tree inlining / SI).
///  * FIRST      — first compatible node in chronological order (the paper's
///                 default: "fast in practice yet provides compression close
///                 to OPT in the limit").
///  * RANDOM     — with low probability returns None even when candidates
///                 exist; otherwise a uniformly random candidate.
///  * RANDOMPICK — uniformly random compatible candidate.
///  * MAXC       — compatible candidate with the most descendants.
///  * OPT        — precomputes the best-compression DAG Do of the fully
///                 inlined tree (conflict-graph colouring per procedure) and
///                 keeps the working DAG embedded in Do.
///
/// Engines re-validate every pick with ConsistencyChecker::canBind before
/// committing, so a strategy can never compromise soundness.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_STRATEGIES_H
#define RMT_CORE_STRATEGIES_H

#include "core/Consistency.h"
#include "core/Disjoint.h"
#include "core/VcGen.h"

#include <memory>
#include <optional>
#include <string>

namespace rmt {

/// Selector for createStrategy.
enum class MergeStrategyKind { None, First, Random, RandomPick, MaxC, Opt };

/// Parses "none"/"first"/"random"/"randompick"/"maxc"/"opt".
std::optional<MergeStrategyKind> parseStrategyKind(const std::string &Name);
/// Printable name of \p Kind.
const char *strategyName(MergeStrategyKind Kind);

/// A policy object answering line 20 of Fig. 8.
class MergeStrategy {
public:
  virtual ~MergeStrategy();

  /// Returns the node to merge open edge \p C into, or nullopt for None
  /// (inline a fresh copy). Implementations must only return nodes passing
  /// Checker.canBind(C, n).
  virtual std::optional<NodeId> pick(const VcContext &Vc,
                                     ConsistencyChecker &Checker,
                                     EdgeId C) = 0;

  /// Notifies the strategy that a fresh node \p N was inlined to resolve
  /// edge \p Cause (InvalidEdge for the root).
  virtual void noteNewNode(NodeId N, EdgeId Cause);
};

/// Configuration for strategy construction.
struct StrategyOptions {
  MergeStrategyKind Kind = MergeStrategyKind::First;
  /// Seed for the randomized strategies.
  uint64_t Seed = 1;
  /// RANDOM's probability of declining a merge, as NoneChance/256.
  unsigned NoneChance = 32;
  /// OPT: give up precomputing Do beyond this many tree instances and fall
  /// back to FIRST behaviour (the paper's OPT column shows a T/O as well).
  /// The colouring is quadratic per procedure, so keep this moderate.
  size_t MaxTreeNodes = 500000;
};

/// Creates a strategy. OPT needs the analysis and the root procedure to
/// precompute Do; the others ignore those arguments.
std::unique_ptr<MergeStrategy> createStrategy(const StrategyOptions &Opts,
                                              const CfgProgram &Prog,
                                              const DisjointAnalysis &Disj,
                                              ProcId Root);

/// Statistics of an OPT precomputation; exposed for tests and Fig. 17.
struct OptPrecomputeStats {
  bool Succeeded = false;
  size_t TreeSize = 0;  ///< dynamic instances in the full tree
  size_t DagSize = 0;   ///< colour classes = nodes of Do
};

/// Runs only the OPT precomputation (full-tree enumeration + colouring) and
/// reports its sizes. Used by the Fig. 17 bench to get the Tree and OPT
/// columns without solving.
OptPrecomputeStats precomputeOptDag(const CfgProgram &Prog,
                                    const DisjointAnalysis &Disj, ProcId Root,
                                    size_t MaxTreeNodes);

} // namespace rmt

#endif // RMT_CORE_STRATEGIES_H
