//===- DotExport.h - Graphviz rendering of verifier structures --*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) renderers for the three graphs the paper draws: the
/// program call graph, a procedure's control-flow graph, and — the paper's
/// Figs. 1(b)/1(c)/11 — the inlining tree/DAG built by Gen_VC. Useful for
/// debugging merge decisions and for documentation; `hbpl_verify
/// --dump-dag` emits the last one.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_DOTEXPORT_H
#define RMT_CORE_DOTEXPORT_H

#include "core/VcGen.h"

#include <string>

namespace rmt {

/// The inlining DAG: one node per dynamic procedure instance, solid edges
/// for bound calls (labelled with their call site), dashed edges for open
/// calls. Merged nodes (in-degree > 1) are highlighted.
std::string inliningDagToDot(const AstContext &Ctx, const VcContext &Vc);

/// The static call graph of \p Prog (edge multiplicity = #call sites).
std::string callGraphToDot(const AstContext &Ctx, const CfgProgram &Prog);

/// The flow graph of one procedure, one node per label.
std::string cfgToDot(const AstContext &Ctx, const CfgProgram &Prog,
                     ProcId P);

} // namespace rmt

#endif // RMT_CORE_DOTEXPORT_H
