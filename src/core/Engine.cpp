//===- Engine.cpp ---------------------------------------------------------===//

#include "core/Engine.h"

#include "smt/Z3Solver.h"

#include <algorithm>
#include <cassert>

using namespace rmt;

const char *rmt::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Bug:
    return "bug";
  case Verdict::Safe:
    return "safe";
  case Verdict::Timeout:
    return "timeout";
  case Verdict::ResourceOut:
    return "resourceout";
  case Verdict::Unknown:
    return "unknown";
  }
  return "?";
}

namespace {

class Engine {
public:
  Engine(const AstContext &Ctx, const CfgProgram &Prog, ProcId Entry,
         std::optional<Symbol> ErrGlobal, const EngineOptions &Opts)
      : Ctx(Ctx), Prog(Prog), Entry(Entry), ErrGlobal(ErrGlobal), Opts(Opts),
        Budget(Opts.TimeoutSeconds), Solver(createZ3Solver(Arena)),
        Vc(Ctx, Prog, Arena, [this](TermRef T) { Solver->assertTerm(T); },
           Opts.Pvc),
        Disj(Prog), Checker(Vc, Disj),
        Strategy(createStrategy(Opts.Strategy, Prog, Disj, Entry)) {}

  VerifyResult run() {
    NodeId Root = Vc.genPvc(Entry);
    Checker.onNewNode(Root);
    Strategy->noteNewNode(Root, InvalidEdge);

    // Line 28: Push(Control[Root]); plus the error-bit query.
    Solver->assertTerm(Vc.node(Root).Control);
    if (ErrGlobal)
      Solver->assertTerm(errOutTerm(Root));

    if (Opts.Eager)
      runEager(Root);
    else
      runStratified(Root);
    return finish();
  }

private:
  /// The Out-interface term of the error-bit global of \p N (a boolean
  /// constant; asserting it requires the error to be set on exit).
  TermRef errOutTerm(NodeId N) {
    assert(ErrGlobal && "no error global configured");
    for (size_t I = 0; I < Prog.Globals.size(); ++I)
      if (Prog.Globals[I].Name == *ErrGlobal)
        return Vc.node(N).Out[I];
    assert(false && "error global not found in program globals");
    return TermRef();
  }

  VerifyResult finish() {
    Result.Seconds = Budget.elapsed();
    Result.NumInlined = Vc.numInlined();
    Result.NumSolverChecks = Solver->numChecks();
    Result.NumDisjQueries = Checker.numDisjQueries();
    return Result;
  }

  bool outOfTime() {
    if (!Budget.expired())
      return false;
    Result.Outcome = Verdict::Timeout;
    return true;
  }

  bool overInlineLimit() {
    if (Vc.numInlined() <= Opts.MaxInlined)
      return false;
    Result.Outcome = Verdict::ResourceOut;
    return true;
  }

  /// Resolves open edge \p C: ask the strategy for a compatible node, else
  /// inline a fresh copy; bind either way.
  void resolveEdge(EdgeId C) {
    Stopwatch PickWatch;
    std::optional<NodeId> Picked = Strategy->pick(Vc, Checker, C);
    Result.MergeLookupSeconds += PickWatch.seconds();

    NodeId N;
    if (Picked) {
      assert(Checker.canBind(C, *Picked) &&
             "strategy returned an incompatible node");
      N = *Picked;
      ++Result.NumMerged;
    } else {
      N = Vc.genPvc(Vc.edge(C).Callee);
      Checker.onNewNode(N);
      Strategy->noteNewNode(N, C);
    }
    Vc.bindEdge(C, N);
    Checker.onBind(C, N);
  }

  void runEager(NodeId /*Root*/) {
    // Fully unfold: FIFO over open edges.
    while (!Vc.openEdges().empty()) {
      if (outOfTime() || overInlineLimit())
        return;
      resolveEdge(Vc.openEdges().front());
    }
    Result.NumIterations = 1;
    if (Opts.SkipSolve)
      return; // size-only run; Outcome stays Unknown by design
    switch (Solver->check({}, Budget.enabled() ? Budget.remaining() : 0)) {
    case SolveResult::Sat:
      Result.Outcome = Verdict::Bug;
      extractTrace();
      return;
    case SolveResult::Unsat:
      Result.Outcome = Verdict::Safe;
      return;
    case SolveResult::Unknown:
      Result.Outcome = Budget.expired() ? Verdict::Timeout : Verdict::Unknown;
      return;
    }
  }

  void runStratified(NodeId /*Root*/) {
    for (;;) {
      ++Result.NumIterations;
      if (outOfTime() || overInlineLimit())
        return;

      // Under-approximate check: block every open call. A model is an
      // execution entirely within the inlined region — a real bug.
      std::vector<TermRef> Blocked;
      for (EdgeId E : Vc.openEdges())
        Blocked.push_back(Arena.mkNot(Vc.edge(E).Control));
      switch (Solver->check(Blocked, checkBudget())) {
      case SolveResult::Sat:
        Result.Outcome = Verdict::Bug;
        extractTrace();
        return;
      case SolveResult::Unsat:
        break;
      case SolveResult::Unknown:
        Result.Outcome =
            Budget.expired() ? Verdict::Timeout : Verdict::Unknown;
        return;
      }

      // Fully inlined and under-approximation unsat: exact answer.
      if (Vc.openEdges().empty()) {
        Result.Outcome = Verdict::Safe;
        return;
      }

      // Over-approximate check: open calls stay havoc summaries. Unsat here
      // proves safety without further inlining (SI's early stop).
      switch (Solver->check({}, checkBudget())) {
      case SolveResult::Unsat:
        Result.Outcome = Verdict::Safe;
        return;
      case SolveResult::Unknown:
        Result.Outcome =
            Budget.expired() ? Verdict::Timeout : Verdict::Unknown;
        return;
      case SolveResult::Sat:
        break;
      }

      // Inline the frontier: open edges the abstract counterexample enters.
      std::vector<EdgeId> Frontier;
      for (EdgeId E : Vc.openEdges())
        if (Solver->modelBool(Vc.edge(E).Control))
          Frontier.push_back(E);
      assert(!Frontier.empty() &&
             "over-approximate model avoiding all open calls would have "
             "satisfied the under-approximate check");
      for (EdgeId E : Frontier) {
        if (outOfTime() || overInlineLimit())
          return;
        resolveEdge(E);
      }
    }
  }

  /// Per-check solver timeout from the remaining wall budget.
  double checkBudget() {
    if (!Budget.enabled())
      return 0;
    double Left = Budget.remaining();
    return Left < 0.001 ? 0.001 : Left;
  }

  //===--------------------------------------------------------------------===//
  // Trace reconstruction
  //===--------------------------------------------------------------------===//

  void extractTrace() { traceNode(0); }

  void traceNode(NodeId N) {
    const VcNode &Node = Vc.node(N);
    // Guard against pathological model shapes; flow graphs are acyclic so
    // |labels| steps suffice.
    size_t Fuel = Prog.proc(Node.Proc).Labels.size() + 1;
    LabelId Y = Node.Entry;
    if (!Solver->modelBool(Node.BlockConst.at(Y)))
      return;
    while (Fuel--) {
      TraceStep Step{Node.Proc, Y, Prog.label(Y).Loc, {}};
      // Capture the globals' model values at this label's entry state.
      const VarTermMap &Vars = Node.VarsAt.at(Y);
      Step.GlobalValues.reserve(Prog.Globals.size());
      for (const VarDecl &G : Prog.Globals) {
        TermRef T = Vars.at(G.Name);
        if (G.Ty->isBool())
          Step.GlobalValues.push_back(Solver->modelBool(T) ? 1 : 0);
        else if (G.Ty->isInt() || G.Ty->isBv())
          Step.GlobalValues.push_back(Solver->modelInt(T));
        else
          Step.GlobalValues.push_back(0); // arrays are not rendered
      }
      Result.Trace.push_back(std::move(Step));
      const CfgLabel &Lbl = Prog.label(Y);
      if (Lbl.Stmt.Kind == CfgStmtKind::Call) {
        // Control[edge] equals BS[Y]; if the edge is bound and taken,
        // descend into the callee instance.
        for (EdgeId E : Node.OutEdges) {
          const VcEdge &Edge = Vc.edge(E);
          if (Edge.CallSite == Y && !Edge.isOpen() &&
              Solver->modelBool(Edge.Control)) {
            traceNode(Edge.Dest);
            break;
          }
        }
      }
      LabelId Next = InvalidLabel;
      for (LabelId T : Lbl.Targets)
        if (Solver->modelBool(Node.BlockConst.at(T))) {
          Next = T;
          break;
        }
      if (Next == InvalidLabel)
        return; // procedure exit
      Y = Next;
    }
  }

  const AstContext &Ctx;
  const CfgProgram &Prog;
  ProcId Entry;
  std::optional<Symbol> ErrGlobal;
  const EngineOptions &Opts;
  Deadline Budget;
  TermArena Arena;
  std::unique_ptr<rmt::Solver> Solver;
  VcContext Vc;
  DisjointAnalysis Disj;
  ConsistencyChecker Checker;
  std::unique_ptr<MergeStrategy> Strategy;
  VerifyResult Result;
};

} // namespace

VerifyResult rmt::solveReachability(const AstContext &Ctx,
                                    const CfgProgram &Prog, ProcId Entry,
                                    std::optional<Symbol> ErrGlobal,
                                    const EngineOptions &Opts) {
  Engine E(Ctx, Prog, Entry, ErrGlobal, Opts);
  return E.run();
}
