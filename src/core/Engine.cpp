//===- Engine.cpp ---------------------------------------------------------===//

#include "core/Engine.h"

#include "smt/Z3Solver.h"

#include <algorithm>
#include <cassert>

using namespace rmt;

void VerifyResult::record(Stats &S) const {
  S.add("engine.inlined", static_cast<int64_t>(NumInlined));
  S.add("engine.merged", static_cast<int64_t>(NumMerged));
  S.add("engine.solver_checks", static_cast<int64_t>(NumSolverChecks));
  S.add("engine.under_checks", static_cast<int64_t>(NumUnderChecks));
  S.add("engine.over_checks", static_cast<int64_t>(NumOverChecks));
  S.add("engine.iterations", static_cast<int64_t>(NumIterations));
  S.add("engine.disj_queries", static_cast<int64_t>(NumDisjQueries));
  S.add("engine.verdict." + std::string(verdictName(Outcome)));
  S.addTime("engine.seconds", Seconds);
  S.addTime("engine.solver.seconds", SolverSeconds);
  S.addTime("engine.merge_lookup.seconds", MergeLookupSeconds);
}

const char *rmt::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Bug:
    return "bug";
  case Verdict::Safe:
    return "safe";
  case Verdict::Timeout:
    return "timeout";
  case Verdict::ResourceOut:
    return "resourceout";
  case Verdict::Unknown:
    return "unknown";
  }
  return "?";
}

namespace {

class Engine {
public:
  Engine(const AstContext &Ctx, const CfgProgram &Prog, ProcId Entry,
         std::optional<Symbol> ErrGlobal, const EngineOptions &Opts)
      : Ctx(Ctx), Prog(Prog), Entry(Entry), ErrGlobal(ErrGlobal), Opts(Opts),
        Budget(Opts.TimeoutSeconds),
        Solver(createZ3Solver(Arena, Opts.Telemetry)),
        Vc(Ctx, Prog, Arena, [this](TermRef T) { Solver->assertTerm(T); },
           Opts.Pvc),
        Disj(Prog), Checker(Vc, Disj),
        Strategy(createStrategy(Opts.Strategy, Prog, Disj, Entry)) {}

  VerifyResult run() {
    TraceSpan RunSpan(Opts.Telemetry, "engine.run",
                      {{"entry", Ctx.name(Prog.proc(Entry).Name)},
                       {"mode", Opts.Eager ? "eager" : "stratified"},
                       {"strategy", strategyName(Opts.Strategy.Kind)}});
    NodeId Root = Vc.genPvc(Entry);
    Checker.onNewNode(Root);
    Strategy->noteNewNode(Root, InvalidEdge);

    // Line 28: Push(Control[Root]); plus the error-bit query.
    Solver->assertTerm(Vc.node(Root).Control);
    if (ErrGlobal)
      Solver->assertTerm(errOutTerm(Root));

    if (Opts.Eager)
      runEager(Root);
    else
      runStratified(Root);
    RunSpan.note({"verdict", verdictName(Result.Outcome)});
    return finish();
  }

private:
  /// The Out-interface term of the error-bit global of \p N (a boolean
  /// constant; asserting it requires the error to be set on exit).
  TermRef errOutTerm(NodeId N) {
    assert(ErrGlobal && "no error global configured");
    for (size_t I = 0; I < Prog.Globals.size(); ++I)
      if (Prog.Globals[I].Name == *ErrGlobal)
        return Vc.node(N).Out[I];
    assert(false && "error global not found in program globals");
    return TermRef();
  }

  VerifyResult finish() {
    Result.Seconds = Budget.elapsed();
    Result.NumInlined = Vc.numInlined();
    Result.NumSolverChecks = Solver->numChecks();
    Result.NumDisjQueries = Checker.numDisjQueries();
    if (Trace *T = Opts.Telemetry; T && T->enabled())
      T->instant("engine.verdict",
                 {{"verdict", verdictName(Result.Outcome)},
                  {"inlined", Result.NumInlined},
                  {"merged", Result.NumMerged},
                  {"solver_checks", Result.NumSolverChecks},
                  {"iterations", Result.NumIterations}});
    return Result;
  }

  bool outOfTime() {
    if (!Budget.expired())
      return false;
    Result.Outcome = Verdict::Timeout;
    return true;
  }

  bool overInlineLimit() {
    if (Vc.numInlined() <= Opts.MaxInlined)
      return false;
    Result.Outcome = Verdict::ResourceOut;
    return true;
  }

  /// Resolves open edge \p C: ask the strategy for a compatible node, else
  /// inline a fresh copy; bind either way.
  void resolveEdge(EdgeId C) {
    uint64_t DisjBefore = Checker.numDisjQueries();
    Stopwatch PickWatch;
    std::optional<NodeId> Picked = Strategy->pick(Vc, Checker, C);
    double PickSeconds = PickWatch.seconds();
    Result.MergeLookupSeconds += PickSeconds;

    NodeId N;
    if (Picked) {
      assert(Checker.canBind(C, *Picked) &&
             "strategy returned an incompatible node");
      N = *Picked;
      ++Result.NumMerged;
    } else {
      N = Vc.genPvc(Vc.edge(C).Callee);
      Checker.onNewNode(N);
      Strategy->noteNewNode(N, C);
    }
    if (Trace *T = Opts.Telemetry; T && T->enabled())
      T->instant(Picked ? "engine.merge" : "engine.inline",
                 {{"callee", Ctx.name(Prog.proc(Vc.edge(C).Callee).Name)},
                  {"disj_queries", Checker.numDisjQueries() - DisjBefore},
                  {"lookup_us", PickSeconds * 1e6}});
    Vc.bindEdge(C, N);
    Checker.onBind(C, N);
  }

  /// One solver check with telemetry and the per-check stat split. \p Under
  /// marks the under-approximate (open edges blocked) check; the eager
  /// engine's single exact check also counts as under (no open edges left).
  SolveResult timedCheck(const std::vector<TermRef> &Assumptions,
                         bool Under) {
    TraceSpan Span(Opts.Telemetry,
                   Under ? "engine.under_check" : "engine.over_check",
                   {{"open_edges", Vc.openEdges().size()}});
    Stopwatch Watch;
    SolveResult R = Solver->check(Assumptions, checkBudget());
    Result.SolverSeconds += Watch.seconds();
    if (Under)
      ++Result.NumUnderChecks;
    else
      ++Result.NumOverChecks;
    Span.note({"result", solveResultName(R)});
    return R;
  }

  void runEager(NodeId /*Root*/) {
    // Fully unfold: FIFO over open edges.
    while (!Vc.openEdges().empty()) {
      if (outOfTime() || overInlineLimit())
        return;
      resolveEdge(Vc.openEdges().front());
    }
    Result.NumIterations = 1;
    if (Opts.SkipSolve)
      return; // size-only run; Outcome stays Unknown by design
    switch (timedCheck({}, /*Under=*/true)) {
    case SolveResult::Sat:
      Result.Outcome = Verdict::Bug;
      extractTrace();
      return;
    case SolveResult::Unsat:
      Result.Outcome = Verdict::Safe;
      return;
    case SolveResult::Unknown:
      Result.Outcome = Budget.expired() ? Verdict::Timeout : Verdict::Unknown;
      return;
    }
  }

  void runStratified(NodeId /*Root*/) {
    for (;;) {
      ++Result.NumIterations;
      TraceSpan Iter(Opts.Telemetry, "engine.iteration",
                     {{"iteration", Result.NumIterations},
                      {"open_edges", Vc.openEdges().size()},
                      {"inlined", Vc.numInlined()}});
      if (outOfTime() || overInlineLimit())
        return;

      // Under-approximate check: block every open call. A model is an
      // execution entirely within the inlined region — a real bug.
      std::vector<TermRef> Blocked;
      for (EdgeId E : Vc.openEdges())
        Blocked.push_back(Arena.mkNot(Vc.edge(E).Control));
      switch (timedCheck(Blocked, /*Under=*/true)) {
      case SolveResult::Sat:
        Result.Outcome = Verdict::Bug;
        extractTrace();
        return;
      case SolveResult::Unsat:
        break;
      case SolveResult::Unknown:
        Result.Outcome =
            Budget.expired() ? Verdict::Timeout : Verdict::Unknown;
        return;
      }

      // Fully inlined and under-approximation unsat: exact answer.
      if (Vc.openEdges().empty()) {
        Result.Outcome = Verdict::Safe;
        return;
      }

      // Over-approximate check: open calls stay havoc summaries. Unsat here
      // proves safety without further inlining (SI's early stop).
      switch (timedCheck({}, /*Under=*/false)) {
      case SolveResult::Unsat:
        Result.Outcome = Verdict::Safe;
        return;
      case SolveResult::Unknown:
        Result.Outcome =
            Budget.expired() ? Verdict::Timeout : Verdict::Unknown;
        return;
      case SolveResult::Sat:
        break;
      }

      // Inline the frontier: open edges the abstract counterexample enters.
      std::vector<EdgeId> Frontier;
      for (EdgeId E : Vc.openEdges())
        if (Solver->modelBool(Vc.edge(E).Control))
          Frontier.push_back(E);
      assert(!Frontier.empty() &&
             "over-approximate model avoiding all open calls would have "
             "satisfied the under-approximate check");
      for (EdgeId E : Frontier) {
        if (outOfTime() || overInlineLimit())
          return;
        resolveEdge(E);
      }
    }
  }

  /// Per-check solver timeout from the remaining wall budget.
  double checkBudget() {
    if (!Budget.enabled())
      return 0;
    double Left = Budget.remaining();
    return Left < 0.001 ? 0.001 : Left;
  }

  //===--------------------------------------------------------------------===//
  // Trace reconstruction
  //===--------------------------------------------------------------------===//

  void extractTrace() { traceNode(0); }

  void traceNode(NodeId N) {
    const VcNode &Node = Vc.node(N);
    // Guard against pathological model shapes; flow graphs are acyclic so
    // |labels| steps suffice.
    size_t Fuel = Prog.proc(Node.Proc).Labels.size() + 1;
    LabelId Y = Node.Entry;
    if (!Solver->modelBool(Node.BlockConst.at(Y)))
      return;
    while (Fuel--) {
      TraceStep Step{Node.Proc, Y, Prog.label(Y).Loc, {}};
      // Capture the globals' model values at this label's entry state.
      const VarTermMap &Vars = Node.VarsAt.at(Y);
      Step.GlobalValues.reserve(Prog.Globals.size());
      for (const VarDecl &G : Prog.Globals) {
        TermRef T = Vars.at(G.Name);
        if (G.Ty->isBool())
          Step.GlobalValues.push_back(Solver->modelBool(T) ? 1 : 0);
        else if (G.Ty->isInt() || G.Ty->isBv())
          Step.GlobalValues.push_back(Solver->modelInt(T));
        else
          Step.GlobalValues.push_back(0); // arrays are not rendered
      }
      Result.Trace.push_back(std::move(Step));
      const CfgLabel &Lbl = Prog.label(Y);
      if (Lbl.Stmt.Kind == CfgStmtKind::Call) {
        // Control[edge] equals BS[Y]; if the edge is bound and taken,
        // descend into the callee instance.
        for (EdgeId E : Node.OutEdges) {
          const VcEdge &Edge = Vc.edge(E);
          if (Edge.CallSite == Y && !Edge.isOpen() &&
              Solver->modelBool(Edge.Control)) {
            traceNode(Edge.Dest);
            break;
          }
        }
      }
      LabelId Next = InvalidLabel;
      for (LabelId T : Lbl.Targets)
        if (Solver->modelBool(Node.BlockConst.at(T))) {
          Next = T;
          break;
        }
      if (Next == InvalidLabel)
        return; // procedure exit
      Y = Next;
    }
  }

  const AstContext &Ctx;
  const CfgProgram &Prog;
  ProcId Entry;
  std::optional<Symbol> ErrGlobal;
  const EngineOptions &Opts;
  Deadline Budget;
  TermArena Arena;
  std::unique_ptr<rmt::Solver> Solver;
  VcContext Vc;
  DisjointAnalysis Disj;
  ConsistencyChecker Checker;
  std::unique_ptr<MergeStrategy> Strategy;
  VerifyResult Result;
};

} // namespace

VerifyResult rmt::solveReachability(const AstContext &Ctx,
                                    const CfgProgram &Prog, ProcId Entry,
                                    std::optional<Symbol> ErrGlobal,
                                    const EngineOptions &Opts) {
  Engine E(Ctx, Prog, Entry, ErrGlobal, Opts);
  return E.run();
}
