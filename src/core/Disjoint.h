//===- Disjoint.h - Disj_blk tables and configuration disjointness -*- C++ -*-//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3 of the paper. Two control locations γ1, γ2 of one procedure
/// satisfy Disj_blk(γ1, γ2) iff there is no intraprocedural path from
/// Blk(γ1) to Blk(γ2) or back. The tables are computed per procedure by a
/// quadratic reachability pass ("time quadratic in the size of a single
/// procedure and linear in the number of procedures"). Lemma 1 then reduces
/// disjointness of two configurations uγ1w, vγ2w to one table lookup at
/// their divergence point.
///
/// A brute-force oracle over the pushdown transition relation (Section 3.2's
/// rules 1–4) is provided for differential testing of Lemma 1 and Alg. 1.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_DISJOINT_H
#define RMT_CORE_DISJOINT_H

#include "cfg/Cfg.h"
#include "support/Bitset.h"

#include <vector>

namespace rmt {

/// Precomputed intraprocedural reachability for every procedure.
class DisjointAnalysis {
public:
  explicit DisjointAnalysis(const CfgProgram &Prog);

  /// True when a (possibly empty) flow path From -> To exists. Both labels
  /// must belong to the same procedure; reflexive by definition.
  bool reaches(LabelId From, LabelId To) const;

  /// Disj_blk(A, B): no flow path between A and B in either direction.
  /// Labels of different procedures are never Disj_blk-comparable; calling
  /// with such labels is a programming error.
  bool disjointLabels(LabelId A, LabelId B) const {
    return !reaches(A, B) && !reaches(B, A);
  }

  /// Lemma 1 applied to two configurations (call stacks, innermost frame
  /// first, each entry the *call-site label* of the frame below — the be
  /// letters of the paper — with the final entry a label in the root).
  /// Returns true when the configurations are provably disjoint. Identical
  /// configurations and prefix-related configurations are not disjoint.
  bool disjointConfigs(const std::vector<LabelId> &C1,
                       const std::vector<LabelId> &C2) const;

  const CfgProgram &program() const { return Prog; }

private:
  const CfgProgram &Prog;
  /// Reach[L] = labels reachable from L (within its procedure), indexed by
  /// global LabelId. Rows are only as long as needed.
  std::vector<Bitset> Reach;
};

/// Brute-force oracle: decides Disj(c1, c2) by exploring the transition
/// relation of Section 3.2 from each configuration. Configurations use the
/// explicit (label, after-flag) alphabet Γ. Exponential; tests only.
///
/// \p C1, \p C2 use the same encoding as disjointConfigs: innermost frame's
/// current label first, then the call-site labels of the suspended frames.
bool bruteForceDisjoint(const CfgProgram &Prog, const std::vector<LabelId> &C1,
                        const std::vector<LabelId> &C2, unsigned MaxStates);

} // namespace rmt

#endif // RMT_CORE_DISJOINT_H
