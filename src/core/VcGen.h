//===- VcGen.h - Fig. 8: pVC generation and the inlining DAG ----*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The imperative state of the paper's Fig. 8: nodes are dynamic procedure
/// instances, edges are calls, and the maps Src/Dest/Entry/Callee/CallSite/
/// Control/In/Out hang off them. genPvc() is Gen_pVC (lines 31–75): it mints
/// the BS/VS/VS' symbolic constants for every label of a procedure and emits
/// the procedural VC clauses. bindEdge() is lines 24–25: binding an open
/// edge to a node and emitting Control[c] ⇒ (Control[n] ∧ In[c] = In[n] ∧
/// Out[c] = Out[n]).
///
/// One generalization over the paper's formal language: procedures carry
/// parameters and returns, so a node interface is globals⧺params on entry
/// and globals⧺returns on exit, and an edge interface is the globals at the
/// call site ⧺ the actual-argument terms / the globals after the call ⧺ the
/// result-binding constants. This matches the worked VC of Fig. 6
/// (v1 == a1 ∧ r == b1). Merging only relates instances of one procedure,
/// so interfaces always have equal shape.
///
/// Emitted clauses are recorded on their node/edge *and* handed to a sink
/// callback, so engines can assert them into an incremental solver as they
/// are produced (the paper's Push).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_VCGEN_H
#define RMT_CORE_VCGEN_H

#include "ast/AstContext.h"
#include "cfg/Cfg.h"
#include "smt/Term.h"
#include "smt/Translate.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace rmt {

/// Index of a node / edge in the VcContext.
using NodeId = uint32_t;
using EdgeId = uint32_t;
constexpr NodeId InvalidNode = ~0u;
constexpr EdgeId InvalidEdge = ~0u;

/// A dynamic procedure instance (a DAG node).
struct VcNode {
  ProcId Proc = InvalidProc;
  LabelId Entry = InvalidLabel;
  TermRef Control;
  /// Interface: [globals..., params...] on entry.
  std::vector<TermRef> In;
  /// Interface: [globals..., returns...] on exit.
  std::vector<TermRef> Out;
  /// Out-going call edges, in call-site order.
  std::vector<EdgeId> OutEdges;
  /// The pVC clauses pushed for this node.
  std::vector<TermRef> Clauses;
  /// BS[y] for every label y of the procedure (trace reconstruction).
  std::unordered_map<LabelId, TermRef> BlockConst;
  /// VS[y] for every label y (model inspection / trace values).
  std::unordered_map<LabelId, VarTermMap> VarsAt;
};

/// A call (a DAG edge). Open until Dest is bound.
struct VcEdge {
  NodeId Src = InvalidNode;
  NodeId Dest = InvalidNode;
  ProcId Callee = InvalidProc;
  LabelId CallSite = InvalidLabel;
  TermRef Control;
  std::vector<TermRef> In;
  std::vector<TermRef> Out;

  bool isOpen() const { return Dest == InvalidNode; }
};

/// How procedural VCs are generated.
enum class PvcMode {
  /// The paper's Fig. 8 Gen_pVC, literally: fresh VS[y]/VS'[y] constants
  /// for every label and variable, frame equalities per statement.
  Paper,
  /// Boogie-style passification: values flow through terms; fresh
  /// constants only at procedure entry, join labels, havocs and call
  /// outputs. Same models, far fewer constants — the engineering the paper
  /// alludes to with "inlining at the VC level".
  Passified,
};

/// Fig. 8's global state plus the pVC generator.
class VcContext {
public:
  /// \p Sink receives every pushed clause (may be empty). \p Ctx provides
  /// the canonical types (for the boolean control constants).
  VcContext(const AstContext &Ctx, const CfgProgram &Prog, TermArena &Arena,
            std::function<void(TermRef)> Sink = {},
            PvcMode Mode = PvcMode::Paper);

  /// Gen_pVC(q): creates a fresh node with fresh constants and pushes its
  /// procedural VC. New out-edges start open.
  NodeId genPvc(ProcId Q);

  /// Binds open edge \p C to node \p N (Dest[c] = n) and pushes the
  /// interface-equality clause. \p N must be an instance of Callee[c].
  /// Returns the pushed clause.
  TermRef bindEdge(EdgeId C, NodeId N);

  const VcNode &node(NodeId N) const { return Nodes[N]; }
  const VcEdge &edge(EdgeId E) const { return Edges[E]; }
  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }

  /// Ids of currently open edges, in creation order.
  const std::vector<EdgeId> &openEdges() const { return Open; }

  /// All nodes that are instances of \p Q, in creation order (merge-candidate
  /// lists for the strategies).
  const std::vector<NodeId> &instancesOf(ProcId Q) const;

  const CfgProgram &program() const { return Prog; }
  TermArena &arena() { return Arena; }

  /// Number of Gen_pVC invocations == number of procedures inlined — the
  /// size metric of Figs. 4 and 17.
  size_t numInlined() const { return Nodes.size(); }

  /// Every clause pushed so far (pVCs and bindings), for dumping complete
  /// SMT-LIB scripts.
  const std::vector<TermRef> &allClauses() const { return AllClauses; }

  PvcMode mode() const { return Mode; }

private:
  void push(TermRef Clause);
  NodeId genPvcPaper(ProcId Q);
  NodeId genPvcPassified(ProcId Q);

  /// Scope variables of \p Q in canonical order: globals, params, returns,
  /// locals (cached).
  const std::vector<VarDecl> &scopeVars(ProcId Q);

  const AstContext &Ctx;
  const CfgProgram &Prog;
  TermArena &Arena;
  std::function<void(TermRef)> Sink;
  PvcMode Mode;
  std::vector<VcNode> Nodes;
  std::vector<VcEdge> Edges;
  std::vector<EdgeId> Open;
  std::vector<TermRef> AllClauses;
  std::unordered_map<ProcId, std::vector<VarDecl>> ScopeCache;
  std::unordered_map<ProcId, std::vector<NodeId>> Instances;
  std::vector<NodeId> NoInstances;
};

} // namespace rmt

#endif // RMT_CORE_VCGEN_H
