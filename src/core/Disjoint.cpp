//===- Disjoint.cpp -------------------------------------------------------===//

#include "core/Disjoint.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace rmt;

DisjointAnalysis::DisjointAnalysis(const CfgProgram &Prog) : Prog(Prog) {
  Reach.resize(Prog.Labels.size());
  // Reach[L] = {L} ∪ ⋃_{T ∈ ts(L)} Reach[T]; compute in reverse topological
  // order per procedure. This is the quadratic-per-procedure preprocessing
  // of Section 3.3.
  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    std::vector<LabelId> Order = Prog.topoOrder(P);
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      LabelId L = *It;
      Bitset &Row = Reach[L];
      Row.set(L);
      for (LabelId T : Prog.label(L).Targets)
        Row.orWith(Reach[T]);
    }
  }
}

bool DisjointAnalysis::reaches(LabelId From, LabelId To) const {
  assert(Prog.procOf(From) == Prog.procOf(To) &&
         "Disj_blk is defined within one procedure");
  return Reach[From].test(To);
}

bool DisjointAnalysis::disjointConfigs(const std::vector<LabelId> &C1,
                                       const std::vector<LabelId> &C2) const {
  // Find the longest common suffix.
  size_t N1 = C1.size(), N2 = C2.size();
  size_t Common = 0;
  while (Common < N1 && Common < N2 &&
         C1[N1 - 1 - Common] == C2[N2 - 1 - Common])
    ++Common;
  // Identical or prefix-related stacks can reach one another by popping /
  // running: never disjoint.
  if (Common == N1 || Common == N2)
    return false;
  LabelId G1 = C1[N1 - 1 - Common];
  LabelId G2 = C2[N2 - 1 - Common];
  // Lemma 1: Disj(uγ1w, vγ2w) if Disj_blk(γ1, γ2).
  return disjointLabels(G1, G2);
}

//===----------------------------------------------------------------------===//
// Brute-force oracle over the Section 3.2 transition relation
//===----------------------------------------------------------------------===//

namespace {

/// Γ letter: label id with an "after the statement" flag (the paper's be).
using Letter = uint32_t;
Letter letter(LabelId L, bool After) { return (L << 1) | (After ? 1 : 0); }

using Config = std::vector<Letter>; // top of stack first

/// Successors of a configuration under rules 1-4.
std::vector<Config> successors(const CfgProgram &Prog, const Config &C) {
  std::vector<Config> Out;
  if (C.empty())
    return Out;
  LabelId B = C.front() >> 1;
  bool After = C.front() & 1;
  const CfgLabel &Lbl = Prog.label(B);
  if (!After) {
    if (Lbl.Stmt.Kind == CfgStmtKind::Call) {
      // Rule 2: b u ; init(p) be u.
      Config Next;
      Next.push_back(letter(Prog.proc(Lbl.Stmt.Callee).Entry, false));
      Next.push_back(letter(B, true));
      Next.insert(Next.end(), C.begin() + 1, C.end());
      Out.push_back(std::move(Next));
    } else {
      // Rule 1: b u ; be u.
      Config Next = C;
      Next.front() = letter(B, true);
      Out.push_back(std::move(Next));
    }
    return Out;
  }
  if (!Lbl.Targets.empty()) {
    // Rule 3: be1 u ; b2 u for each successor.
    for (LabelId T : Lbl.Targets) {
      Config Next = C;
      Next.front() = letter(T, false);
      Out.push_back(std::move(Next));
    }
    return Out;
  }
  // Rule 4: be u ; u for nonempty u.
  if (C.size() > 1)
    Out.push_back(Config(C.begin() + 1, C.end()));
  return Out;
}

/// Can \p From reach \p To under ;* ? Bounded BFS.
bool reachesConfig(const CfgProgram &Prog, const Config &From,
                   const Config &To, unsigned MaxStates) {
  std::set<Config> Seen{From};
  std::vector<Config> Work{From};
  while (!Work.empty()) {
    Config C = std::move(Work.back());
    Work.pop_back();
    if (C == To)
      return true;
    if (Seen.size() > MaxStates)
      return false; // caller keeps test programs small enough
    for (Config &S : successors(Prog, C))
      if (Seen.insert(S).second)
        Work.push_back(std::move(S));
  }
  return false;
}

Config toConfig(const std::vector<LabelId> &Stack) {
  Config C;
  C.reserve(Stack.size());
  for (size_t I = 0; I < Stack.size(); ++I)
    C.push_back(letter(Stack[I], /*After=*/I != 0));
  return C;
}

} // namespace

bool rmt::bruteForceDisjoint(const CfgProgram &Prog,
                             const std::vector<LabelId> &C1,
                             const std::vector<LabelId> &C2,
                             unsigned MaxStates) {
  Config A = toConfig(C1), B = toConfig(C2);
  return !reachesConfig(Prog, A, B, MaxStates) &&
         !reachesConfig(Prog, B, A, MaxStates);
}
