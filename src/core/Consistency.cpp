//===- Consistency.cpp ----------------------------------------------------===//

#include "core/Consistency.h"

#include <cassert>

using namespace rmt;

ConsistencyChecker::ConsistencyChecker(const VcContext &Vc,
                                       const DisjointAnalysis &Disj)
    : Vc(Vc), Disj(Disj) {
  // Catch up with nodes that already exist (engines usually construct the
  // checker right after the root's genPvc).
  for (NodeId N = 0; N < Vc.numNodes(); ++N)
    onNewNode(N);
}

void ConsistencyChecker::onNewNode(NodeId N) {
  if (N < Desc.size())
    return;
  assert(N == Desc.size() && "nodes must be registered in creation order");
  Desc.emplace_back();
  Desc.back().set(N);
}

bool ConsistencyChecker::canBind(EdgeId C, NodeId N) {
  ++NumCanBind;
  const VcEdge &E = Vc.edge(C);
  NodeId S = E.Src;
  assert(E.isOpen() && "checking an already-bound edge");
  assert(!Desc[N].test(S) && "binding would create a cycle (impossible for "
                             "hierarchical programs)");

  const Bitset &DescN = Desc[N];

  // New sibling pairs at S: the candidate edge against every bound out-edge
  // of S whose destination shares a descendant with N's sub-DAG.
  for (EdgeId Sib : Vc.node(S).OutEdges) {
    if (Sib == C)
      continue;
    const VcEdge &SibE = Vc.edge(Sib);
    if (SibE.isOpen())
      continue;
    if (!Desc[SibE.Dest].intersects(DescN))
      continue;
    if (!disjSites(SibE.CallSite, E.CallSite))
      return false;
  }

  // Pairs elsewhere that become newly common through the prospective edge:
  // (a, b) at some node x where Dest[a] reaches S and Dest[b] reaches N's
  // sub-DAG. Pairs with a pre-existing common descendant were validated when
  // their own later edge was committed, so only these mixed pairs matter.
  for (NodeId X = 0; X < Vc.numNodes(); ++X) {
    const VcNode &Node = Vc.node(X);
    if (Node.OutEdges.size() < 2)
      continue;
    for (EdgeId A : Node.OutEdges) {
      const VcEdge &EA = Vc.edge(A);
      if (EA.isOpen() || !Desc[EA.Dest].test(S))
        continue;
      for (EdgeId B : Node.OutEdges) {
        if (A == B)
          continue;
        const VcEdge &EB = Vc.edge(B);
        if (EB.isOpen() || !Desc[EB.Dest].intersects(DescN))
          continue;
        if (!disjSites(EA.CallSite, EB.CallSite))
          return false;
      }
    }
  }
  return true;
}

void ConsistencyChecker::onBind(EdgeId C, NodeId N) {
  const VcEdge &E = Vc.edge(C);
  assert(E.Dest == N && "commit order: VcContext::bindEdge first");
  NodeId S = E.Src;
  const Bitset Delta = Desc[N];
  for (NodeId X = 0; X < Vc.numNodes(); ++X)
    if (Desc[X].test(S))
      Desc[X].orWith(Delta);
}

bool ConsistencyChecker::isConsistentFull() const {
  for (NodeId X = 0; X < Vc.numNodes(); ++X) {
    const VcNode &Node = Vc.node(X);
    const auto &Out = Node.OutEdges;
    for (size_t I = 0; I < Out.size(); ++I) {
      const VcEdge &EA = Vc.edge(Out[I]);
      if (EA.isOpen())
        continue;
      for (size_t J = I + 1; J < Out.size(); ++J) {
        const VcEdge &EB = Vc.edge(Out[J]);
        if (EB.isOpen())
          continue;
        if (!Desc[EA.Dest].intersects(Desc[EB.Dest]))
          continue;
        if (!Disj.disjointLabels(EA.CallSite, EB.CallSite))
          return false;
      }
    }
  }
  return true;
}

std::vector<std::vector<LabelId>> rmt::allConfigsOf(const VcContext &Vc,
                                                    NodeId N) {
  // Parent edges per node (edges whose Dest is that node).
  std::vector<std::vector<EdgeId>> Parents(Vc.numNodes());
  for (EdgeId E = 0; E < Vc.numEdges(); ++E)
    if (!Vc.edge(E).isOpen())
      Parents[Vc.edge(E).Dest].push_back(E);

  std::vector<std::vector<LabelId>> Out;
  // DFS over reversed edges accumulating call-site suffixes.
  struct Frame {
    NodeId Node;
    std::vector<LabelId> Suffix;
  };
  std::vector<Frame> Work{{N, {}}};
  while (!Work.empty()) {
    Frame F = std::move(Work.back());
    Work.pop_back();
    if (Parents[F.Node].empty()) {
      // Reached the root (only the root has no parents in Gen_VC's DAG).
      std::vector<LabelId> Config;
      Config.push_back(Vc.node(N).Entry);
      Config.insert(Config.end(), F.Suffix.begin(), F.Suffix.end());
      Out.push_back(std::move(Config));
      continue;
    }
    for (EdgeId P : Parents[F.Node]) {
      Frame Next;
      Next.Node = Vc.edge(P).Src;
      Next.Suffix = F.Suffix;
      Next.Suffix.push_back(Vc.edge(P).CallSite);
      Work.push_back(std::move(Next));
    }
  }
  return Out;
}
