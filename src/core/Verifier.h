//===- Verifier.h - End-to-end bounded verification API ---------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public one-call API: take a (possibly loopy, recursive) checked
/// program with assertions, a bound R, an engine configuration, and decide
/// whether an assertion can fail within the bound. Composes the whole
/// pipeline:
///
///   unroll(R) → unfold(R) → error-bit instrumentation → CFG lowering
///   → [interval-invariant injection]  → eager / SI / DI engine.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_VERIFIER_H
#define RMT_CORE_VERIFIER_H

#include "analysis/Dataflow.h"
#include "core/Engine.h"

#include <string>

namespace rmt {

/// End-to-end options.
struct VerifierOptions {
  /// Loop-iteration / recursion-depth bound R.
  unsigned Bound = 2;
  /// Run the interval-invariant prepass ("+Inv" of Section 4).
  bool UseInvariants = false;
  /// Run the static-analysis prepass pipeline (constant folding, branch
  /// pruning, GVN/copy propagation, assume-redundancy elimination, query
  /// slicing, skip splicing, dead-procedure elimination) on the lowered
  /// program before the engine. On by default; --no-prepass in the CLI. With
  /// UseInvariants, invariant injection runs as the pipeline's last pass. A
  /// pipeline failure (--verify-each violation or a bad --passes spec) makes
  /// the run return Verdict::Unknown with diagnostics in
  /// Prepass.PipelineErrors rather than solve a possibly-miscompiled
  /// program.
  bool UsePrepass = true;
  /// Fine-grained prepass toggles, explicit pass list, and pipeline knobs
  /// (only consulted when UsePrepass).
  PrepassOptions Prepass;
  /// Engine configuration (strategy, timeout, eager mode, limits).
  EngineOptions Engine;
  /// Optional event recorder for the whole pipeline (support/Trace.h):
  /// bounding, lowering, the prepass pipeline, and the engine all record
  /// onto it. Propagated to Prepass/Engine unless those set their own.
  rmt::Trace *Telemetry = nullptr;
};

/// End-to-end result.
struct VerifierRunResult {
  VerifyResult Result;
  /// Assert statements found and instrumented.
  unsigned NumAsserts = 0;
  /// Procedures after bounding (hierarchical program size).
  size_t NumProcs = 0;
  /// Labels after bounding.
  size_t NumLabels = 0;
  /// Program size the engine actually saw (== the above with the prepass
  /// off).
  size_t NumProcsSolved = 0;
  size_t NumLabelsSolved = 0;
  /// What the prepass did (all zeros with the prepass off).
  PrepassReport Prepass;
  /// Per-pass reduction counters under "prepass.*" keys.
  Stats PrepassStats;
  /// Invariant conjuncts injected (0 without +Inv).
  unsigned InvariantConjuncts = 0;
  /// Rendered counterexample (empty unless the verdict is Bug).
  std::string TraceText;
};

/// Verifies \p Prog starting at procedure \p Entry. \p Prog must be
/// resolved/type-checked (parseAndCheck or the typed builder API). \p Ctx
/// must be the context owning \p Prog's nodes.
VerifierRunResult verifyProgram(AstContext &Ctx, const Program &Prog,
                                Symbol Entry, const VerifierOptions &Opts);

/// Corral-style bound escalation: runs verifyProgram at bounds 1, 2, 4, ...
/// up to \p MaxBound (inclusive, clamped to a power-of-two ladder plus
/// MaxBound itself), sharing one wall-clock budget
/// (Opts.Engine.TimeoutSeconds). Returns on the first Bug; a Safe verdict
/// means "safe up to MaxBound". Opts.Bound is ignored. The result's
/// ReachedBound (see below) reports the largest bound fully decided.
struct DeepeningResult {
  VerifierRunResult Last;
  /// Largest bound that produced a definite verdict.
  unsigned ReachedBound = 0;
  /// Bounds attempted (for reporting).
  std::vector<unsigned> BoundsTried;
};
DeepeningResult verifyIterativeDeepening(AstContext &Ctx,
                                         const Program &Prog, Symbol Entry,
                                         VerifierOptions Opts,
                                         unsigned MaxBound);

/// Renders a counterexample trace with procedure names and source lines.
std::string renderTrace(const AstContext &Ctx, const CfgProgram &Prog,
                        const std::vector<TraceStep> &Trace);

} // namespace rmt

#endif // RMT_CORE_VERIFIER_H
