//===- Consistency.h - DAG consistency (Def. 2, Alg. 1, Fig. 10) -*- C++ -*-=//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides whether binding an open edge to an existing node keeps the
/// inlining DAG *consistent* (Definition 2: every node's set of represented
/// configurations is mutually disjoint).
///
/// The batch check generalizes Algorithm 1 from successor-node pairs to
/// out-edge pairs, which also covers parallel edges from one node to the
/// same destination through different call sites (two such edges give the
/// destination two configurations diverging exactly at those call sites).
///
/// The incremental check used inside the inlining loop (resolving line 20 of
/// Fig. 8 per Fig. 10) exploits that the committed DAG is consistent: adding
/// edge s→n can only create new common descendants for an edge pair (a, b)
/// when a's destination reaches s and b's destination reaches n's sub-DAG
/// (or symmetrically). Only those pairs are re-examined, against the same
/// Disj_blk tables. Descendant sets are maintained as dense bitsets and
/// updated on every commit.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CORE_CONSISTENCY_H
#define RMT_CORE_CONSISTENCY_H

#include "core/Disjoint.h"
#include "core/VcGen.h"
#include "support/Bitset.h"

#include <cstdint>
#include <vector>

namespace rmt {

/// Incrementally maintained consistency oracle over a VcContext's DAG.
/// Drive it in lock-step with the VcContext: call onNewNode after genPvc and
/// onBind after bindEdge.
class ConsistencyChecker {
public:
  ConsistencyChecker(const VcContext &Vc, const DisjointAnalysis &Disj);

  /// Registers a freshly created node.
  void onNewNode(NodeId N);

  /// True when Dest[C] = N keeps the DAG consistent (the `compatible` test
  /// of Fig. 10). Does not modify state.
  bool canBind(EdgeId C, NodeId N);

  /// Commits the binding (updates descendant sets).
  void onBind(EdgeId C, NodeId N);

  /// Batch generalized Algorithm 1 over the currently bound DAG.
  bool isConsistentFull() const;

  /// Number of descendants of \p N, including itself (the MaxC strategy's
  /// ranking key).
  size_t numDescendants(NodeId N) const { return Desc[N].count(); }

  /// Total Disj_blk lookups performed (merge-overhead accounting).
  uint64_t numDisjQueries() const { return NumDisjQueries; }
  /// Total canBind calls.
  uint64_t numCanBindCalls() const { return NumCanBind; }

private:
  bool disjSites(LabelId A, LabelId B) {
    ++NumDisjQueries;
    return Disj.disjointLabels(A, B);
  }

  const VcContext &Vc;
  const DisjointAnalysis &Disj;
  /// Desc[N] = descendants of N in the bound DAG, including N itself.
  std::vector<Bitset> Desc;
  uint64_t NumDisjQueries = 0;
  uint64_t NumCanBind = 0;
};

/// All configurations represented by node \p N: each is the node's entry
/// label followed by the call-site labels along one root path (innermost
/// first). Exponential in general; tests and the OPT strategy only.
std::vector<std::vector<LabelId>> allConfigsOf(const VcContext &Vc, NodeId N);

} // namespace rmt

#endif // RMT_CORE_CONSISTENCY_H
