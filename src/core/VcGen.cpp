//===- VcGen.cpp ----------------------------------------------------------===//

#include "core/VcGen.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace rmt;

VcContext::VcContext(const AstContext &Ctx, const CfgProgram &Prog,
                     TermArena &Arena, std::function<void(TermRef)> Sink,
                     PvcMode Mode)
    : Ctx(Ctx), Prog(Prog), Arena(Arena), Sink(std::move(Sink)), Mode(Mode) {}

void VcContext::push(TermRef Clause) {
  AllClauses.push_back(Clause);
  if (Sink)
    Sink(Clause);
}

const std::vector<VarDecl> &VcContext::scopeVars(ProcId Q) {
  auto It = ScopeCache.find(Q);
  if (It != ScopeCache.end())
    return It->second;
  std::vector<VarDecl> Scope;
  for (const VarDecl &G : Prog.Globals)
    Scope.push_back(G);
  const CfgProc &P = Prog.proc(Q);
  for (const auto *Decls : {&P.Params, &P.Returns, &P.Locals})
    for (const VarDecl &D : *Decls)
      Scope.push_back(D);
  return ScopeCache.emplace(Q, std::move(Scope)).first->second;
}

const std::vector<NodeId> &VcContext::instancesOf(ProcId Q) const {
  auto It = Instances.find(Q);
  return It == Instances.end() ? NoInstances : It->second;
}

namespace {

/// Conjunction of m1[v] == m2[v] over \p Vars, skipping those in \p Except.
TermRef eqVarsExcept(TermArena &Arena, const VarTermMap &M1,
                     const VarTermMap &M2, const std::vector<VarDecl> &Vars,
                     const std::unordered_set<Symbol> &Except) {
  TermRef Acc = Arena.mkTrue();
  for (const VarDecl &D : Vars) {
    if (Except.count(D.Name))
      continue;
    Acc = Arena.mkAnd(Acc, Arena.mkEq(M1.at(D.Name), M2.at(D.Name)));
  }
  return Acc;
}

TermRef eqVars(TermArena &Arena, const VarTermMap &M1, const VarTermMap &M2,
               const std::vector<VarDecl> &Vars) {
  return eqVarsExcept(Arena, M1, M2, Vars, {});
}

} // namespace

NodeId VcContext::genPvc(ProcId Q) {
  return Mode == PvcMode::Paper ? genPvcPaper(Q) : genPvcPassified(Q);
}

NodeId VcContext::genPvcPaper(ProcId Q) {
  const CfgProc &P = Prog.proc(Q);
  const std::vector<VarDecl> &Scope = scopeVars(Q);
  size_t NumGlobals = Prog.Globals.size();

  NodeId NId = static_cast<NodeId>(Nodes.size());
  Nodes.emplace_back();
  VcNode &N = Nodes.back();
  N.Proc = Q;
  N.Entry = P.Entry;
  Instances[Q].push_back(NId);

  // Lines 39–46: fresh BS[y], VS[y][v], VS'[y][v] for every label y and
  // every variable v in scope.
  std::unordered_map<LabelId, VarTermMap> VSOut;
  std::string Prefix = "n" + std::to_string(NId);
  for (LabelId Y : P.Labels) {
    std::string LTag = Prefix + ".L" + std::to_string(Y);
    N.BlockConst[Y] = Arena.freshConst(Ctx.boolType(), LTag + ".bs");
    VarTermMap &In = N.VarsAt[Y];
    VarTermMap &Out = VSOut[Y];
    for (const VarDecl &D : Scope) {
      std::string VTag = LTag + ".v" + std::to_string(D.Name.id());
      In[D.Name] = Arena.freshConst(D.Ty, VTag);
      Out[D.Name] = Arena.freshConst(D.Ty, VTag + "'");
    }
  }

  // Lines 47–49: entry control and input interface (globals ⧺ params).
  N.Control = N.BlockConst.at(P.Entry);
  const VarTermMap &EntryVars = N.VarsAt.at(P.Entry);
  for (const VarDecl &G : Prog.Globals)
    N.In.push_back(EntryVars.at(G.Name));
  for (const VarDecl &D : P.Params)
    N.In.push_back(EntryVars.at(D.Name));

  // Lines 50–51: fresh output interface (globals ⧺ returns).
  for (const VarDecl &G : Prog.Globals)
    N.Out.push_back(
        Arena.freshConst(G.Ty, Prefix + ".out.v" + std::to_string(G.Name.id())));
  for (const VarDecl &D : P.Returns)
    N.Out.push_back(
        Arena.freshConst(D.Ty, Prefix + ".out.v" + std::to_string(D.Name.id())));

  auto PushClause = [&](TermRef Clause) {
    N.Clauses.push_back(Clause);
    push(Clause);
  };

  // Lines 52–72: one transition clause and one successor clause per label.
  for (LabelId Y : P.Labels) {
    const CfgLabel &Lbl = Prog.label(Y);
    TermRef BS = N.BlockConst.at(Y);
    const VarTermMap &VY = N.VarsAt.at(Y);
    const VarTermMap &VYp = VSOut.at(Y);

    switch (Lbl.Stmt.Kind) {
    case CfgStmtKind::Assume: {
      TermRef Cond = translateExpr(Arena, Lbl.Stmt.E, VY);
      PushClause(Arena.mkImplies(
          BS, Arena.mkAnd(Cond, eqVars(Arena, VYp, VY, Scope))));
      break;
    }
    case CfgStmtKind::Assign: {
      TermRef Value = translateExpr(Arena, Lbl.Stmt.E, VY);
      TermRef Frame = eqVarsExcept(Arena, VYp, VY, Scope, {Lbl.Stmt.Target});
      PushClause(Arena.mkImplies(
          BS,
          Arena.mkAnd(Arena.mkEq(VYp.at(Lbl.Stmt.Target), Value), Frame)));
      break;
    }
    case CfgStmtKind::Havoc: {
      std::unordered_set<Symbol> Havocked(Lbl.Stmt.Vars.begin(),
                                          Lbl.Stmt.Vars.end());
      PushClause(
          Arena.mkImplies(BS, eqVarsExcept(Arena, VYp, VY, Scope, Havocked)));
      break;
    }
    case CfgStmtKind::Call: {
      // Lines 60–67: mint the open edge.
      EdgeId CId = static_cast<EdgeId>(Edges.size());
      VcEdge E;
      E.Src = NId;
      E.Callee = Lbl.Stmt.Callee;
      E.CallSite = Y;
      E.Control = BS;
      for (const VarDecl &G : Prog.Globals)
        E.In.push_back(VY.at(G.Name));
      for (const Expr *Arg : Lbl.Stmt.Args)
        E.In.push_back(translateExpr(Arena, Arg, VY));
      for (const VarDecl &G : Prog.Globals)
        E.Out.push_back(VYp.at(G.Name));
      for (Symbol Lhs : Lbl.Stmt.Vars)
        E.Out.push_back(VYp.at(Lhs));
      Edges.push_back(std::move(E));
      Open.push_back(CId);
      N.OutEdges.push_back(CId);

      // Line 68: locals are preserved across the call, except result
      // bindings; globals at VYp are the call's outputs (unconstrained until
      // the edge is bound — this is exactly the havoc summary Proc'(n) of
      // Section 3.2 when the edge stays open).
      std::unordered_set<Symbol> Except(Lbl.Stmt.Vars.begin(),
                                        Lbl.Stmt.Vars.end());
      for (const VarDecl &G : Prog.Globals)
        Except.insert(G.Name);
      PushClause(
          Arena.mkImplies(BS, eqVarsExcept(Arena, VYp, VY, Scope, Except)));
      break;
    }
    }

    // Lines 69–72: successor clause.
    if (Lbl.Targets.empty()) {
      TermRef Eq = Arena.mkTrue();
      for (size_t I = 0; I < NumGlobals; ++I)
        Eq = Arena.mkAnd(
            Eq, Arena.mkEq(VYp.at(Prog.Globals[I].Name), N.Out[I]));
      for (size_t I = 0; I < P.Returns.size(); ++I)
        Eq = Arena.mkAnd(Eq, Arena.mkEq(VYp.at(P.Returns[I].Name),
                                        N.Out[NumGlobals + I]));
      PushClause(Arena.mkImplies(BS, Eq));
    } else {
      TermRef Disj = Arena.mkFalse();
      for (LabelId X : Lbl.Targets) {
        TermRef Step = Arena.mkAnd(N.BlockConst.at(X),
                                   eqVars(Arena, VYp, N.VarsAt.at(X), Scope));
        Disj = Arena.mkOr(Disj, Step);
      }
      PushClause(Arena.mkImplies(BS, Disj));
    }
  }
  return NId;
}

NodeId VcContext::genPvcPassified(ProcId Q) {
  const CfgProc &P = Prog.proc(Q);
  const std::vector<VarDecl> &Scope = scopeVars(Q);
  size_t NumGlobals = Prog.Globals.size();

  NodeId NId = static_cast<NodeId>(Nodes.size());
  Nodes.emplace_back();
  VcNode &N = Nodes.back();
  N.Proc = Q;
  N.Entry = P.Entry;
  Instances[Q].push_back(NId);

  std::string Prefix = "n" + std::to_string(NId);
  auto FreshVars = [&](LabelId Y) {
    VarTermMap M;
    std::string LTag = Prefix + ".L" + std::to_string(Y);
    for (const VarDecl &D : Scope)
      M[D.Name] = Arena.freshConst(
          D.Ty, LTag + ".v" + std::to_string(D.Name.id()));
    return M;
  };

  // Predecessor counts decide which labels need join constants.
  std::unordered_map<LabelId, unsigned> PredCount;
  for (LabelId Y : P.Labels)
    PredCount[Y];
  for (LabelId Y : P.Labels)
    for (LabelId T : Prog.label(Y).Targets)
      ++PredCount[T];

  // BS constants for every label; entry/join/orphan labels get fresh
  // variable incarnations, everything else inherits its predecessor's
  // outgoing terms.
  for (LabelId Y : P.Labels) {
    N.BlockConst[Y] = Arena.freshConst(
        Ctx.boolType(), Prefix + ".L" + std::to_string(Y) + ".bs");
    if (Y == P.Entry || PredCount[Y] != 1)
      N.VarsAt[Y] = FreshVars(Y);
  }

  N.Control = N.BlockConst.at(P.Entry);
  const VarTermMap &EntryVars = N.VarsAt.at(P.Entry);
  for (const VarDecl &G : Prog.Globals)
    N.In.push_back(EntryVars.at(G.Name));
  for (const VarDecl &D : P.Params)
    N.In.push_back(EntryVars.at(D.Name));
  for (const VarDecl &G : Prog.Globals)
    N.Out.push_back(Arena.freshConst(
        G.Ty, Prefix + ".out.v" + std::to_string(G.Name.id())));
  for (const VarDecl &D : P.Returns)
    N.Out.push_back(Arena.freshConst(
        D.Ty, Prefix + ".out.v" + std::to_string(D.Name.id())));

  auto PushClause = [&](TermRef Clause) {
    if (Arena.isTrue(Clause))
      return;
    N.Clauses.push_back(Clause);
    push(Clause);
  };

  // Topological walk: each label's outgoing environment is a term map, not
  // a fresh constant vector, so straight-line code contributes no frame
  // equalities at all.
  for (LabelId Y : Prog.topoOrder(Q)) {
    const CfgLabel &Lbl = Prog.label(Y);
    TermRef BS = N.BlockConst.at(Y);
    const VarTermMap &VY = N.VarsAt.at(Y);
    VarTermMap Out = VY;

    switch (Lbl.Stmt.Kind) {
    case CfgStmtKind::Assume:
      PushClause(
          Arena.mkImplies(BS, translateExpr(Arena, Lbl.Stmt.E, VY)));
      break;
    case CfgStmtKind::Assign:
      Out[Lbl.Stmt.Target] = translateExpr(Arena, Lbl.Stmt.E, VY);
      break;
    case CfgStmtKind::Havoc: {
      std::string LTag = Prefix + ".L" + std::to_string(Y) + ".hv";
      for (Symbol Var : Lbl.Stmt.Vars)
        Out[Var] = Arena.freshConst(P.typeOf(Var),
                                    LTag + std::to_string(Var.id()));
      break;
    }
    case CfgStmtKind::Call: {
      EdgeId CId = static_cast<EdgeId>(Edges.size());
      VcEdge E;
      E.Src = NId;
      E.Callee = Lbl.Stmt.Callee;
      E.CallSite = Y;
      E.Control = BS;
      for (const VarDecl &G : Prog.Globals)
        E.In.push_back(VY.at(G.Name));
      for (const Expr *Arg : Lbl.Stmt.Args)
        E.In.push_back(translateExpr(Arena, Arg, VY));
      // Call outputs are genuinely fresh (the open edge is the havoc
      // summary); locals flow through untouched.
      std::string LTag = Prefix + ".L" + std::to_string(Y) + ".co";
      for (const VarDecl &G : Prog.Globals) {
        TermRef Fresh =
            Arena.freshConst(G.Ty, LTag + std::to_string(G.Name.id()));
        Out[G.Name] = Fresh;
        E.Out.push_back(Fresh);
      }
      for (Symbol Lhs : Lbl.Stmt.Vars) {
        TermRef Fresh = Arena.freshConst(P.typeOf(Lhs),
                                         LTag + std::to_string(Lhs.id()));
        Out[Lhs] = Fresh;
        E.Out.push_back(Fresh);
      }
      Edges.push_back(std::move(E));
      Open.push_back(CId);
      N.OutEdges.push_back(CId);
      break;
    }
    }

    if (Lbl.Targets.empty()) {
      TermRef Eq = Arena.mkTrue();
      for (size_t I = 0; I < NumGlobals; ++I)
        Eq = Arena.mkAnd(Eq,
                         Arena.mkEq(Out.at(Prog.Globals[I].Name), N.Out[I]));
      for (size_t I = 0; I < P.Returns.size(); ++I)
        Eq = Arena.mkAnd(Eq, Arena.mkEq(Out.at(P.Returns[I].Name),
                                        N.Out[NumGlobals + I]));
      PushClause(Arena.mkImplies(BS, Eq));
    } else {
      TermRef Disj = Arena.mkFalse();
      for (LabelId X : Lbl.Targets) {
        TermRef Step = N.BlockConst.at(X);
        if (PredCount[X] != 1) {
          // Join: bind the join incarnations to this path's values.
          TermRef Eq = Arena.mkTrue();
          const VarTermMap &JoinVars = N.VarsAt.at(X);
          for (const VarDecl &D : Scope)
            Eq = Arena.mkAnd(
                Eq, Arena.mkEq(Out.at(D.Name), JoinVars.at(D.Name)));
          Step = Arena.mkAnd(Step, Eq);
        } else {
          // Single predecessor: the successor reads our terms directly.
          N.VarsAt[X] = Out;
        }
        Disj = Arena.mkOr(Disj, Step);
      }
      PushClause(Arena.mkImplies(BS, Disj));
    }
  }
  return NId;
}

TermRef VcContext::bindEdge(EdgeId C, NodeId N) {
  VcEdge &E = Edges[C];
  assert(E.isOpen() && "edge already bound");
  const VcNode &Target = Nodes[N];
  assert(E.Callee == Target.Proc && "binding to an instance of the wrong "
                                    "procedure");
  assert(E.In.size() == Target.In.size() &&
         E.Out.size() == Target.Out.size() && "interface shape mismatch");

  E.Dest = N;
  Open.erase(std::find(Open.begin(), Open.end(), C));

  // Line 25: Control[c] ⇒ Control[n] ∧ In[c] = In[n] ∧ Out[c] = Out[n].
  TermRef Eq = Target.Control;
  for (size_t I = 0; I < E.In.size(); ++I)
    Eq = Arena.mkAnd(Eq, Arena.mkEq(E.In[I], Target.In[I]));
  for (size_t I = 0; I < E.Out.size(); ++I)
    Eq = Arena.mkAnd(Eq, Arena.mkEq(E.Out[I], Target.Out[I]));
  TermRef Clause = Arena.mkImplies(E.Control, Eq);
  push(Clause);
  return Clause;
}
