//===- SdvGen.cpp ---------------------------------------------------------===//

#include "workload/SdvGen.h"

#include "support/Rng.h"

using namespace rmt;

namespace {

class DriverBuilder {
public:
  DriverBuilder(AstContext &Ctx, const SdvParams &P)
      : Ctx(Ctx), P(P), Gen(P.Seed) {}

  Program run() {
    Lock = Ctx.sym("lock");
    Irql = Ctx.sym("irql");
    State = Ctx.sym("state");
    Prog.Globals.push_back({Lock, Ctx.boolType(), SrcLoc()});
    Prog.Globals.push_back({Irql, Ctx.intType(), SrcLoc()});
    Prog.Globals.push_back({State, Ctx.intType(), SrcLoc()});

    buildRule();
    buildUtils();
    buildHandlers();
    buildHarness();
    return std::move(Prog);
  }

private:
  const Expr *lockRef() { return Ctx.tVar(Lock, Ctx.boolType()); }
  const Expr *irqlRef() { return Ctx.tVar(Irql, Ctx.intType()); }
  const Expr *stateRef() { return Ctx.tVar(State, Ctx.intType()); }

  /// The instrumented rule: spinlock discipline, as SDV's
  /// SpinLock/DoubleKeAcquireSpinLock rules check it.
  void buildRule() {
    {
      Procedure Acq;
      Acq.Name = Ctx.sym("KeAcquireLock");
      Acq.Body.push_back(
          Ctx.assertStmt(Ctx.tUnary(UnOp::Not, lockRef())));
      Acq.Body.push_back(Ctx.assign(Lock, Ctx.tBool(true)));
      Acq.Body.push_back(Ctx.assign(
          Irql, Ctx.tBinary(BinOp::Add, irqlRef(), Ctx.tInt(1))));
      Prog.Procedures.push_back(std::move(Acq));
    }
    {
      Procedure Rel;
      Rel.Name = Ctx.sym("KeReleaseLock");
      Rel.Body.push_back(Ctx.assertStmt(lockRef()));
      Rel.Body.push_back(Ctx.assign(Lock, Ctx.tBool(false)));
      Rel.Body.push_back(Ctx.assign(
          Irql, Ctx.tBinary(BinOp::Sub, irqlRef(), Ctx.tInt(1))));
      Prog.Procedures.push_back(std::move(Rel));
    }
  }

  Symbol utilName(unsigned Layer, unsigned K) {
    return Ctx.sym("util_" + std::to_string(Layer) + "_" +
                   std::to_string(K));
  }

  /// `if (*) call a(); else call b();` — the disjoint-call pattern.
  const Stmt *branchCalls(Symbol A, Symbol B) {
    return Ctx.ifStmt(nullptr, {Ctx.call(A, {}, {})},
                      {Ctx.call(B, {}, {})});
  }

  const Stmt *bumpState(int64_t Amount) {
    return Ctx.assign(State,
                      Ctx.tBinary(BinOp::Add, stateRef(), Ctx.tInt(Amount)));
  }

  /// Compiled-driver idiom: the status value threads through a chain of
  /// temporaries before reaching the state update (`s0 := state; s1 := s0;
  /// state := s1 + k`). Semantically the same as bumpState — value numbering
  /// collapses the chain so slicing can reclaim the dead copies.
  void pushStatusChain(Procedure &U, int64_t Amount) {
    unsigned Len = static_cast<unsigned>(Gen.range(2, 3));
    Symbol Prev;
    for (unsigned I = 0; I < Len; ++I) {
      Symbol S = Ctx.sym("status" + std::to_string(I));
      U.Locals.push_back({S, Ctx.intType(), SrcLoc()});
      U.Body.push_back(Ctx.assign(
          S, I == 0 ? stateRef() : Ctx.tVar(Prev, Ctx.intType())));
      Prev = S;
    }
    U.Body.push_back(Ctx.assign(
        State, Ctx.tBinary(BinOp::Add, Ctx.tVar(Prev, Ctx.intType()),
                           Ctx.tInt(Amount))));
  }

  /// Layered utility DAG. Layer L utilities call layer L+1 utilities through
  /// both arms of a nondeterministic branch: a full tree unrolling doubles
  /// per layer while the DAG stays linear in depth.
  void buildUtils() {
    for (unsigned Layer = 0; Layer < P.UtilDepth; ++Layer) {
      for (unsigned K = 0; K < P.NumUtils; ++K) {
        Procedure U;
        U.Name = utilName(Layer, K);
        bool UsesLock = Gen.chance(1, 3);
        if (UsesLock) {
          U.Body.push_back(Ctx.call(Ctx.sym("KeAcquireLock"), {}, {}));
          U.Body.push_back(bumpState(Gen.range(0, 3)));
          U.Body.push_back(Ctx.call(Ctx.sym("KeReleaseLock"), {}, {}));
        } else {
          pushStatusChain(U, Gen.range(0, 3));
        }
        // The monotone state invariant the rule checks everywhere.
        if (Gen.chance(1, 2))
          U.Body.push_back(Ctx.assertStmt(
              Ctx.tBinary(BinOp::Ge, stateRef(), Ctx.tInt(0))));
        if (Layer + 1 < P.UtilDepth) {
          Symbol A = utilName(Layer + 1, Gen.below(P.NumUtils));
          Symbol B = utilName(Layer + 1, Gen.below(P.NumUtils));
          U.Body.push_back(branchCalls(A, B));
        }
        Prog.Procedures.push_back(std::move(U));
      }
    }
  }

  void buildHandlers() {
    // Place the seeded bug on one handler, behind an opcode test.
    unsigned BugHandler = P.InjectBug
                              ? static_cast<unsigned>(Gen.below(P.NumHandlers))
                              : P.NumHandlers;
    unsigned BugKind = static_cast<unsigned>(Gen.below(3));

    for (unsigned H = 0; H < P.NumHandlers; ++H) {
      Procedure Handler;
      Handler.Name = Ctx.sym("handler_" + std::to_string(H));
      Symbol Opcode = Ctx.sym("opcode");
      Handler.Params.push_back({Opcode, Ctx.intType(), SrcLoc()});
      const Expr *OpRef = Ctx.tVar(Opcode, Ctx.intType());

      // Opcode validation at entry, re-checked after the utility calls — the
      // inlined-macro pattern compiled drivers are full of. The calls never
      // touch the opcode, so the re-check is entailed on every path and
      // assume-redundancy elimination drops it.
      const Expr *OpValid = Ctx.tBinary(BinOp::Ge, OpRef, Ctx.tInt(0));
      Handler.Body.push_back(Ctx.assume(OpValid));
      for (unsigned C = 0; C < P.CallsPerHandler; ++C) {
        Symbol A = utilName(0, Gen.below(P.NumUtils));
        Symbol B = utilName(0, Gen.below(P.NumUtils));
        Handler.Body.push_back(branchCalls(A, B));
        Handler.Body.push_back(Ctx.assume(OpValid));
      }
      Handler.Body.push_back(
          Ctx.assertStmt(Ctx.tUnary(UnOp::Not, lockRef())));

      if (H == BugHandler) {
        // The violation hides behind an opcode window inside one arm.
        std::vector<const Stmt *> BugBlock;
        switch (BugKind) {
        case 0:
          // Double acquire: take the lock, then enter the utility layer
          // (some utility acquires again).
          BugBlock.push_back(Ctx.call(Ctx.sym("KeAcquireLock"), {}, {}));
          BugBlock.push_back(
              Ctx.call(utilName(0, Gen.below(P.NumUtils)), {}, {}));
          break;
        case 1:
          // Leaked lock: acquire without release; the harness's final
          // `assert !lock` fires.
          BugBlock.push_back(Ctx.call(Ctx.sym("KeAcquireLock"), {}, {}));
          break;
        default:
          // IRQL imbalance: raise without lowering; the harness's final
          // `assert irql == 0` fires.
          BugBlock.push_back(Ctx.assign(
              Irql, Ctx.tBinary(BinOp::Add, irqlRef(), Ctx.tInt(1))));
          break;
        }
        int64_t Window = Gen.range(2, 9);
        Handler.Body.push_back(Ctx.ifStmt(
            Ctx.tBinary(BinOp::Eq,
                        Ctx.tBinary(BinOp::Mod, OpRef, Ctx.tInt(Window + 1)),
                        Ctx.tInt(Window)),
            std::move(BugBlock), {}));
      }
      Prog.Procedures.push_back(std::move(Handler));
    }
  }

  /// The SDV harness: initialize the rule state, dispatch a havoc'd request
  /// through the switch, check the rule's exit conditions.
  void buildHarness() {
    Procedure Main;
    Main.Name = Ctx.sym("main");
    Symbol Req = Ctx.sym("req");
    Symbol Op = Ctx.sym("op");
    Main.Locals.push_back({Req, Ctx.intType(), SrcLoc()});
    Main.Locals.push_back({Op, Ctx.intType(), SrcLoc()});
    const Expr *ReqRef = Ctx.tVar(Req, Ctx.intType());
    const Expr *OpRef = Ctx.tVar(Op, Ctx.intType());

    Main.Body.push_back(Ctx.assign(Lock, Ctx.tBool(false)));
    Main.Body.push_back(Ctx.assign(Irql, Ctx.tInt(0)));
    Main.Body.push_back(Ctx.assign(State, Ctx.tInt(0)));
    // The request code selects the handler; the operand travels with it and
    // stays unconstrained (the driver's input buffer).
    Main.Body.push_back(Ctx.havoc({Req, Op}));

    // Dispatch switch: if (req == 0) handler_0(op); else if ...
    const Stmt *Dispatch = Ctx.call(
        Ctx.sym("handler_" + std::to_string(P.NumHandlers - 1)), {OpRef},
        {});
    for (unsigned H = P.NumHandlers - 1; H-- > 0;) {
      Dispatch = Ctx.ifStmt(
          Ctx.tBinary(BinOp::Eq, ReqRef, Ctx.tInt(H)),
          {Ctx.call(Ctx.sym("handler_" + std::to_string(H)), {OpRef}, {})},
          {Dispatch});
    }
    Main.Body.push_back(Dispatch);

    // The rule's exit conditions.
    Main.Body.push_back(
        Ctx.assertStmt(Ctx.tUnary(UnOp::Not, lockRef())));
    Main.Body.push_back(Ctx.assertStmt(
        Ctx.tBinary(BinOp::Eq, irqlRef(), Ctx.tInt(0))));
    Prog.Procedures.push_back(std::move(Main));
  }

  AstContext &Ctx;
  const SdvParams &P;
  Rng Gen;
  Program Prog;
  Symbol Lock, Irql, State;
};

} // namespace

Program rmt::makeSdvProgram(AstContext &Ctx, const SdvParams &Params) {
  DriverBuilder B(Ctx, Params);
  return B.run();
}

std::vector<SdvInstance> rmt::makeSdvCorpus(uint64_t Seed, unsigned Count,
                                            unsigned BugFraction) {
  Rng Gen(Seed);
  std::vector<SdvInstance> Corpus;
  Corpus.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    SdvParams P;
    P.Seed = Gen.next();
    P.NumHandlers = 3 + static_cast<unsigned>(Gen.below(5));
    P.NumUtils = 3 + static_cast<unsigned>(Gen.below(6));
    P.UtilDepth = 3 + static_cast<unsigned>(Gen.below(5));
    P.CallsPerHandler = 2 + static_cast<unsigned>(Gen.below(3));
    P.InjectBug = Gen.chance(BugFraction, 256);
    SdvInstance Inst;
    Inst.Name = "drv" + std::to_string(I) + (P.InjectBug ? "_bug" : "_safe");
    Inst.Params = P;
    Corpus.push_back(std::move(Inst));
  }
  return Corpus;
}
