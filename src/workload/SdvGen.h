//===- SdvGen.h - Synthetic SDV-like driver corpus ---------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on Static Driver Verifier instances: a driver is
/// compiled with an instrumented rule into a program with assertions, and
/// Corral checks it. That corpus is proprietary, so (per the reproduction
/// ground rules) we synthesize drivers that manufacture exactly the
/// structures Section 2 credits for merging opportunity:
///
///  * a harness that dispatches a havoc'd request code through a switch
///    (if/else chain) to one of several handlers — disjoint by construction;
///  * handlers that branch internally and call *shared utility procedures*
///    — transitive disjointness ("fooi and fooj end up calling the same
///    procedure bar");
///  * a lock-discipline rule (acquire/release around device accesses, assert
///    no double acquire / no release while free / lock free on exit) plus
///    arithmetic state assertions — the instrumented property;
///  * layered utility procedures where each layer calls the next through
///    both sides of a branch — the Fig. 2 pattern that makes tree inlining
///    exponential in the depth;
///  * optional seeded bugs (a forgotten release or an off-by-one in a state
///    update) on one dispatch path, so bug-finding requires goal-directed
///    search.
///
/// Sizes, sharing degree, depth and bug placement are all seed-derived, so a
/// corpus is reproducible from (seed, params).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_WORKLOAD_SDVGEN_H
#define RMT_WORKLOAD_SDVGEN_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rmt {

/// Shape of one synthetic driver instance.
struct SdvParams {
  uint64_t Seed = 1;
  /// Dispatch arms in the harness (request kinds).
  unsigned NumHandlers = 4;
  /// Shared utility procedures (the merge targets).
  unsigned NumUtils = 6;
  /// Layered depth of the utility DAG (each layer calls the next through
  /// both branch arms — tree size doubles per layer).
  unsigned UtilDepth = 4;
  /// Calls a handler makes into the utility layer.
  unsigned CallsPerHandler = 3;
  /// Inject a rule violation on one dispatch path.
  bool InjectBug = false;
};

/// Builds one synthetic driver. Entry procedure is `main`.
Program makeSdvProgram(AstContext &Ctx, const SdvParams &Params);

/// A corpus instance descriptor (for benchmark tables).
struct SdvInstance {
  std::string Name;
  SdvParams Params;
};

/// The deterministic benchmark corpus used by the Fig. 12–16 benches:
/// \p Count instances of increasing size, alternating safe/buggy per
/// \p BugFraction (out of 256).
std::vector<SdvInstance> makeSdvCorpus(uint64_t Seed, unsigned Count,
                                       unsigned BugFraction = 96);

} // namespace rmt

#endif // RMT_WORKLOAD_SDVGEN_H
