//===- Chain.cpp ----------------------------------------------------------===//

#include "workload/Chain.h"

using namespace rmt;

Program rmt::makeChainProgram(AstContext &Ctx, unsigned N, bool Buggy) {
  Program Prog;
  Symbol G = Ctx.sym("g");
  Prog.Globals.push_back({G, Ctx.intType(), SrcLoc()});

  auto ProcName = [&](unsigned I) {
    return Ctx.sym("P" + std::to_string(I));
  };
  auto CallTwice = [&](Symbol Callee) {
    // if (*) call C(); else call C();  — the disjointness pattern.
    const Stmt *Then = Ctx.call(Callee, {}, {});
    const Stmt *Else = Ctx.call(Callee, {}, {});
    return Ctx.ifStmt(nullptr, {Then}, {Else});
  };
  auto GRef = [&] { return Ctx.tVar(G, Ctx.intType()); };

  // main.
  {
    Procedure Main;
    Main.Name = Ctx.sym("main");
    Main.Body.push_back(Ctx.assign(G, Ctx.tInt(0)));
    Main.Body.push_back(CallTwice(ProcName(0)));
    Prog.Procedures.push_back(std::move(Main));
  }
  // P0 .. PN-1.
  for (unsigned I = 0; I < N; ++I) {
    Procedure P;
    P.Name = ProcName(I);
    P.Body.push_back(
        Ctx.assign(G, Ctx.tBinary(BinOp::Add, GRef(), Ctx.tInt(1))));
    P.Body.push_back(CallTwice(ProcName(I + 1)));
    Prog.Procedures.push_back(std::move(P));
  }
  // PN: the assertion.
  {
    Procedure P;
    P.Name = ProcName(N);
    int64_t Expected = Buggy ? static_cast<int64_t>(N) + 1 : N;
    P.Body.push_back(Ctx.assertStmt(
        Ctx.tBinary(BinOp::Eq, GRef(), Ctx.tInt(Expected))));
    Prog.Procedures.push_back(std::move(P));
  }
  return Prog;
}
