//===- Chain.h - The Fig. 2 chain-program family -----------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generator for the paper's Fig. 2 program, parameterized by N:
///
///   var g: int;
///   procedure main() { g := 0; if (*) call P0(); else call P0(); }
///   procedure Pi()   { g := g + 1; if (*) call Pi+1(); else call Pi+1(); }
///   procedure PN()   { assert g == N; }
///
/// Tree inlining is exponential in N (every Pi is duplicated down both
/// branches), DAG inlining is linear — the Fig. 3 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_WORKLOAD_CHAIN_H
#define RMT_WORKLOAD_CHAIN_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"

namespace rmt {

/// Builds the chain program for \p N (N >= 1). With \p Buggy the final
/// assertion is `g == N + 1`, which every execution violates.
Program makeChainProgram(AstContext &Ctx, unsigned N, bool Buggy = false);

} // namespace rmt

#endif // RMT_WORKLOAD_CHAIN_H
