//===- RandomProg.cpp -----------------------------------------------------===//

#include "workload/RandomProg.h"

#include "support/Rng.h"

#include <string>
#include <vector>

using namespace rmt;

namespace {

class Generator {
public:
  Generator(AstContext &Ctx, const RandomProgParams &P)
      : Ctx(Ctx), P(P), Gen(P.Seed) {}

  Program run() {
    // Globals.
    for (unsigned I = 0; I < P.NumIntGlobals; ++I) {
      Symbol S = Ctx.sym("g" + std::to_string(I));
      Prog.Globals.push_back({S, Ctx.intType(), SrcLoc()});
      IntVars.push_back(S);
    }
    for (unsigned I = 0; I < P.NumBoolGlobals; ++I) {
      Symbol S = Ctx.sym("b" + std::to_string(I));
      Prog.Globals.push_back({S, Ctx.boolType(), SrcLoc()});
      BoolVars.push_back(S);
    }
    if (P.AllowArrays) {
      ArrayVar = Ctx.sym("arr");
      Prog.Globals.push_back(
          {ArrayVar, Ctx.arrayType(Ctx.intType(), Ctx.intType()), SrcLoc()});
    }
    if (P.AllowBitvectors) {
      for (const char *Name : {"w0", "w1"}) {
        Symbol S = Ctx.sym(Name);
        Prog.Globals.push_back({S, Ctx.bvType(8), SrcLoc()});
        BvVars.push_back(S);
      }
    }

    // Procedure shells first (so call targets exist).
    for (unsigned I = 0; I < P.NumProcs; ++I) {
      Procedure Proc;
      Proc.Name = I == 0 ? Ctx.sym("main")
                         : Ctx.sym("proc" + std::to_string(I));
      if (I != 0) {
        // main has no parameters (it is the entry).
        unsigned NumParams = static_cast<unsigned>(Gen.below(3));
        for (unsigned J = 0; J < NumParams; ++J)
          Proc.Params.push_back({Ctx.sym("p" + std::to_string(I) + "_" +
                                         std::to_string(J)),
                                 Ctx.intType(),
                                 SrcLoc()});
        if (Gen.chance(1, 2))
          Proc.Returns.push_back(
              {Ctx.sym("r" + std::to_string(I)), Ctx.intType(), SrcLoc()});
      }
      Proc.Locals.push_back(
          {Ctx.sym("t" + std::to_string(I)), Ctx.intType(), SrcLoc()});
      Prog.Procedures.push_back(std::move(Proc));
    }

    for (unsigned I = 0; I < P.NumProcs; ++I) {
      CurrentProc = I;
      Prog.Procedures[I].Body = genBlock(P.MaxNesting);
    }
    return std::move(Prog);
  }

private:
  /// Int-typed variables in scope of the current procedure.
  std::vector<Symbol> intScope() const {
    std::vector<Symbol> Scope = IntVars;
    const Procedure &Proc = Prog.Procedures[CurrentProc];
    for (const auto *Decls : {&Proc.Params, &Proc.Returns, &Proc.Locals})
      for (const VarDecl &D : *Decls)
        if (D.Ty->isInt())
          Scope.push_back(D.Name);
    return Scope;
  }

  const Expr *genIntExpr(unsigned Depth) {
    std::vector<Symbol> Scope = intScope();
    if (Depth == 0 || Gen.chance(1, 3)) {
      if (!Scope.empty() && Gen.chance(3, 4))
        return Ctx.tVar(Scope[Gen.below(Scope.size())], Ctx.intType());
      return Ctx.tInt(Gen.range(-5, 5));
    }
    switch (Gen.below(5)) {
    case 0:
      return Ctx.tBinary(BinOp::Add, genIntExpr(Depth - 1),
                         genIntExpr(Depth - 1));
    case 1:
      return Ctx.tBinary(BinOp::Sub, genIntExpr(Depth - 1),
                         genIntExpr(Depth - 1));
    case 2:
      // Multiplication by a constant keeps Z3 in linear arithmetic.
      return Ctx.tBinary(BinOp::Mul, Ctx.tInt(Gen.range(-3, 3)),
                         genIntExpr(Depth - 1));
    case 3:
      return Ctx.tUnary(UnOp::Neg, genIntExpr(Depth - 1));
    default:
      if (ArrayVar.isValid())
        return Ctx.tSelect(arrayRef(), genIntExpr(Depth - 1));
      return Ctx.tIte(genBoolExpr(0), genIntExpr(Depth - 1),
                      genIntExpr(Depth - 1));
    }
  }

  const Expr *arrayRef() {
    return Ctx.tVar(ArrayVar, Ctx.arrayType(Ctx.intType(), Ctx.intType()));
  }

  /// A bv8-typed expression over the bv globals.
  const Expr *genBvExpr(unsigned Depth) {
    if (Depth == 0 || Gen.chance(1, 3)) {
      if (!BvVars.empty() && Gen.chance(2, 3))
        return Ctx.tVar(BvVars[Gen.below(BvVars.size())], Ctx.bvType(8));
      return Ctx.tBv(Gen.below(256), 8);
    }
    static const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                BinOp::Div, BinOp::Mod};
    return Ctx.tBinary(Ops[Gen.below(5)], genBvExpr(Depth - 1),
                       genBvExpr(Depth - 1));
  }

  const Expr *genBoolExpr(unsigned Depth) {
    if (Depth == 0 || Gen.chance(1, 2)) {
      if (!BoolVars.empty() && Gen.chance(1, 3))
        return Ctx.tVar(BoolVars[Gen.below(BoolVars.size())],
                        Ctx.boolType());
      static const BinOp Cmps[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                                   BinOp::Le, BinOp::Gt, BinOp::Ge};
      if (!BvVars.empty() && Gen.chance(1, 4))
        return Ctx.tBinary(Cmps[Gen.below(6)], genBvExpr(1), genBvExpr(1));
      return Ctx.tBinary(Cmps[Gen.below(6)], genIntExpr(1), genIntExpr(1));
    }
    switch (Gen.below(3)) {
    case 0:
      return Ctx.tBinary(BinOp::And, genBoolExpr(Depth - 1),
                         genBoolExpr(Depth - 1));
    case 1:
      return Ctx.tBinary(BinOp::Or, genBoolExpr(Depth - 1),
                         genBoolExpr(Depth - 1));
    default:
      return Ctx.tUnary(UnOp::Not, genBoolExpr(Depth - 1));
    }
  }

  std::vector<const Stmt *> genBlock(unsigned Nesting) {
    std::vector<const Stmt *> Block;
    unsigned Count = 1 + static_cast<unsigned>(Gen.below(P.MaxStmts));
    for (unsigned I = 0; I < Count; ++I)
      Block.push_back(genStmt(Nesting));
    return Block;
  }

  const Stmt *genStmt(unsigned Nesting) {
    // Assertion sites, biased toward (but not guaranteeing) validity: the
    // asserted shape `e*e >= 0 || cond` holds unless cond picks badly.
    if (Gen.chance(P.AssertChance, 256)) {
      if (Gen.chance(3, 4)) {
        // assert v <= v + k for k >= 0: always true (sanity pruning for the
        // solver), or a comparison that may fail.
        const Expr *V = genIntExpr(1);
        int64_t K = Gen.range(0, 6);
        return Ctx.assertStmt(Ctx.tBinary(
            BinOp::Le, V, Ctx.tBinary(BinOp::Add, V, Ctx.tInt(K))));
      }
      return Ctx.assertStmt(genBoolExpr(P.MaxExprDepth));
    }

    std::vector<Symbol> Scope = intScope();
    switch (Gen.below(10)) {
    case 0:
    case 1:
    case 2: {
      Symbol Target = Scope[Gen.below(Scope.size())];
      return Ctx.assign(Target, genIntExpr(P.MaxExprDepth));
    }
    case 3: {
      if (BoolVars.empty())
        return Ctx.assign(Scope[Gen.below(Scope.size())], genIntExpr(1));
      Symbol Target = BoolVars[Gen.below(BoolVars.size())];
      return Ctx.assign(Target, genBoolExpr(P.MaxExprDepth));
    }
    case 4:
      return Ctx.havoc({Scope[Gen.below(Scope.size())]});
    case 5: {
      // Satisfiable-biased assume: v <= big or v >= small.
      const Expr *V = genIntExpr(1);
      if (Gen.chance(1, 2))
        return Ctx.assume(Ctx.tBinary(BinOp::Le, V, Ctx.tInt(100)));
      return Ctx.assume(Ctx.tBinary(BinOp::Ge, V, Ctx.tInt(-100)));
    }
    case 6:
      return genCall();
    case 7:
      if (Nesting > 0) {
        const Expr *Guard = Gen.chance(1, 3) ? nullptr
                                             : genBoolExpr(P.MaxExprDepth);
        return Ctx.ifStmt(Guard, genBlock(Nesting - 1),
                          Gen.chance(1, 2)
                              ? genBlock(Nesting - 1)
                              : std::vector<const Stmt *>{});
      }
      return genCall();
    case 8:
      if (P.AllowLoops && Nesting > 0)
        return Ctx.whileStmt(nullptr, genBlock(Nesting - 1));
      return genCall();
    default:
      if (!BvVars.empty() && Gen.chance(1, 2))
        return Ctx.assign(BvVars[Gen.below(BvVars.size())],
                          genBvExpr(P.MaxExprDepth));
      if (ArrayVar.isValid() && Gen.chance(1, 2))
        return Ctx.assign(ArrayVar, Ctx.tStore(arrayRef(), genIntExpr(1),
                                               genIntExpr(1)));
      return genCall();
    }
  }

  const Stmt *genCall() {
    // Procedure i only calls j > i: acyclic by construction.
    if (CurrentProc + 1 >= P.NumProcs) {
      // Leaf: fall back to an assignment.
      std::vector<Symbol> Scope = intScope();
      return Ctx.assign(Scope[Gen.below(Scope.size())], genIntExpr(1));
    }
    unsigned Callee = CurrentProc + 1 +
                      static_cast<unsigned>(
                          Gen.below(P.NumProcs - CurrentProc - 1));
    const Procedure &Target = Prog.Procedures[Callee];
    std::vector<const Expr *> Args;
    for (size_t I = 0; I < Target.Params.size(); ++I)
      Args.push_back(genIntExpr(1));
    std::vector<Symbol> Lhs;
    if (!Target.Returns.empty()) {
      std::vector<Symbol> Scope = intScope();
      Lhs.push_back(Scope[Gen.below(Scope.size())]);
    }
    return Ctx.call(Target.Name, std::move(Args), std::move(Lhs));
  }

  AstContext &Ctx;
  const RandomProgParams &P;
  Rng Gen;
  Program Prog;
  std::vector<Symbol> IntVars;  // int globals
  std::vector<Symbol> BoolVars; // bool globals
  std::vector<Symbol> BvVars;   // bv8 globals
  Symbol ArrayVar;
  unsigned CurrentProc = 0;
};

} // namespace

Program rmt::makeRandomProgram(AstContext &Ctx,
                               const RandomProgParams &Params) {
  Generator G(Ctx, Params);
  return G.run();
}
