//===- RandomProg.h - Random program generator ------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generator of well-typed programs, used by the property
/// tests: every engine/strategy must agree with every other on the verdict,
/// and with the concrete evaluator on found bugs. Call structure is acyclic
/// by construction (procedure i only calls j > i); loops are optional and
/// nondeterministically guarded so every run terminates.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_WORKLOAD_RANDOMPROG_H
#define RMT_WORKLOAD_RANDOMPROG_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"

#include <cstdint>

namespace rmt {

/// Shape knobs for makeRandomProgram.
struct RandomProgParams {
  uint64_t Seed = 1;
  unsigned NumIntGlobals = 3;
  unsigned NumBoolGlobals = 1;
  unsigned NumProcs = 6;      ///< including main (procedure 0)
  unsigned MaxStmts = 5;      ///< per block
  unsigned MaxNesting = 2;    ///< if/while nesting
  unsigned MaxExprDepth = 2;
  bool AllowLoops = false;    ///< emit `while (*)` loops
  bool AllowArrays = false;   ///< one [int]int global with select/store
  bool AllowBitvectors = false; ///< two bv8 globals with modular arithmetic
  /// Probability (out of 256) that an assert is generated at a statement
  /// position; asserts are biased toward holding but not always.
  unsigned AssertChance = 40;
};

/// Builds a random program. The result is type-correct and uses `main`
/// (procedure 0) as entry.
Program makeRandomProgram(AstContext &Ctx, const RandomProgParams &Params);

} // namespace rmt

#endif // RMT_WORKLOAD_RANDOMPROG_H
