//===- Translate.cpp ------------------------------------------------------===//

#include "smt/Translate.h"

#include <cassert>

using namespace rmt;

TermRef rmt::translateExpr(TermArena &Arena, const Expr *E,
                           const VarTermMap &Subst) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    if (E->type() && E->type()->isBv())
      return Arena.bvLit(static_cast<uint64_t>(E->intValue()), E->type());
    return Arena.intLit(E->intValue());
  case ExprKind::BoolLit:
    return Arena.boolLit(E->boolValue());
  case ExprKind::Var: {
    auto It = Subst.find(E->var());
    assert(It != Subst.end() && "free variable not bound in substitution");
    return It->second;
  }
  case ExprKind::Unary: {
    TermRef Sub = translateExpr(Arena, E->op0(), Subst);
    return E->unOp() == UnOp::Not ? Arena.mkNot(Sub) : Arena.mkNeg(Sub);
  }
  case ExprKind::Binary: {
    TermRef L = translateExpr(Arena, E->op0(), Subst);
    TermRef R = translateExpr(Arena, E->op1(), Subst);
    switch (E->binOp()) {
    case BinOp::Add:
      return Arena.mkAdd(L, R);
    case BinOp::Sub:
      return Arena.mkSub(L, R);
    case BinOp::Mul:
      return Arena.mkMul(L, R);
    case BinOp::Div:
      return Arena.mkDiv(L, R);
    case BinOp::Mod:
      return Arena.mkMod(L, R);
    case BinOp::Eq:
      return Arena.mkEq(L, R);
    case BinOp::Ne:
      return Arena.mkNot(Arena.mkEq(L, R));
    case BinOp::Lt:
      return Arena.mkLt(L, R);
    case BinOp::Le:
      return Arena.mkLe(L, R);
    case BinOp::Gt:
      return Arena.mkLt(R, L);
    case BinOp::Ge:
      return Arena.mkLe(R, L);
    case BinOp::And:
      return Arena.mkAnd(L, R);
    case BinOp::Or:
      return Arena.mkOr(L, R);
    case BinOp::Implies:
      return Arena.mkImplies(L, R);
    case BinOp::Iff:
      return Arena.mkEq(L, R);
    }
    break;
  }
  case ExprKind::Ite:
    return Arena.mkIte(translateExpr(Arena, E->op0(), Subst),
                       translateExpr(Arena, E->op1(), Subst),
                       translateExpr(Arena, E->op2(), Subst));
  case ExprKind::Select:
    return Arena.mkSelect(translateExpr(Arena, E->op0(), Subst),
                          translateExpr(Arena, E->op1(), Subst));
  case ExprKind::Store:
    return Arena.mkStore(translateExpr(Arena, E->op0(), Subst),
                         translateExpr(Arena, E->op1(), Subst),
                         translateExpr(Arena, E->op2(), Subst));
  }
  assert(false && "unhandled expression kind");
  return TermRef();
}
