//===- Solver.h - Abstract incremental SMT solver ---------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver seam between VC generation and backends. The inlining engines
/// need exactly this interface: incremental assertion (the paper's Push),
/// scoped push/pop (for the stratified under-approximation checks),
/// checking under assumption literals, and model extraction for constants.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SMT_SOLVER_H
#define RMT_SMT_SOLVER_H

#include "smt/Term.h"

#include <cstdint>
#include <vector>

namespace rmt {

/// Outcome of a satisfiability check.
enum class SolveResult { Sat, Unsat, Unknown };

/// Printable name of \p R ("sat", "unsat", "unknown").
const char *solveResultName(SolveResult R);

/// An incremental solver over terms of one TermArena.
class Solver {
public:
  virtual ~Solver();

  /// Conjoins \p T with the current assertion stack ("Push(e)" in Fig. 8).
  virtual void assertTerm(TermRef T) = 0;

  /// Opens / closes an assertion scope.
  virtual void push() = 0;
  virtual void pop() = 0;

  /// Checks satisfiability of the asserted formulas plus \p Assumptions
  /// (boolean literals: constants or their negations). \p TimeoutSeconds
  /// <= 0 means no timeout. Unknown covers timeouts and resource limits.
  virtual SolveResult check(const std::vector<TermRef> &Assumptions,
                            double TimeoutSeconds) = 0;
  SolveResult check() { return check({}, 0); }

  /// Model access; valid only directly after a Sat result. \p ConstTerm must
  /// be a TermOp::Const term. Unconstrained constants yield an arbitrary
  /// value of their sort.
  virtual bool modelBool(TermRef ConstTerm) = 0;
  virtual int64_t modelInt(TermRef ConstTerm) = 0;

  /// Number of check() calls made so far.
  unsigned numChecks() const { return NumChecks; }

  /// Number of assertTerm() calls made so far (assertion-stack size as the
  /// backend sees it; scopes are not subtracted).
  unsigned numAsserts() const { return NumAsserts; }

protected:
  unsigned NumChecks = 0;
  unsigned NumAsserts = 0;
};

} // namespace rmt

#endif // RMT_SMT_SOLVER_H
