//===- Term.cpp -----------------------------------------------------------===//

#include "smt/Term.h"

#include <unordered_set>

using namespace rmt;

TermRef TermArena::makeLeaf(TermOp Op, const Type *Sort, int64_t Payload) {
  // Literals are consed through the same table (no kids).
  if (Op != TermOp::Const) {
    AppKey Key{Op, Payload, Sort, {}};
    auto It = ConsTable.find(Key);
    if (It != ConsTable.end())
      return TermRef(It->second);
    uint32_t Id = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back({Op, Sort, Payload, 0, 0});
    ConsTable.emplace(std::move(Key), Id);
    return TermRef(Id);
  }
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back({Op, Sort, Payload, 0, 0});
  return TermRef(Id);
}

TermRef TermArena::makeApp(TermOp Op, const Type *Sort,
                           std::initializer_list<TermRef> Kids) {
  AppKey Key{Op, 0, Sort, {}};
  Key.Kids.reserve(Kids.size());
  for (TermRef K : Kids) {
    assert(K.isValid() && "invalid child");
    Key.Kids.push_back(K.id());
  }
  auto It = ConsTable.find(Key);
  if (It != ConsTable.end())
    return TermRef(It->second);

  uint32_t First = static_cast<uint32_t>(Operands.size());
  for (TermRef K : Kids)
    Operands.push_back(K);
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(
      {Op, Sort, 0, First, static_cast<uint32_t>(Kids.size())});
  ConsTable.emplace(std::move(Key), Id);
  return TermRef(Id);
}

TermRef TermArena::freshConst(const Type *Sort, const std::string &BaseName) {
  int64_t Index = static_cast<int64_t>(ConstNames.size());
  ConstNames.push_back(BaseName + "!" + std::to_string(Index));
  return makeLeaf(TermOp::Const, Sort, Index);
}

TermRef TermArena::intLit(int64_t Value) {
  // The sort pointer must be stable; literals only ever appear where a
  // context-provided int type exists, but the arena cannot reach it. Use a
  // sentinel-free approach: literals carry a null sort and backends treat
  // IntLit/BoolLit structurally.
  return makeLeaf(TermOp::IntLit, nullptr, Value);
}

TermRef TermArena::boolLit(bool Value) {
  return makeLeaf(TermOp::BoolLit, nullptr, Value ? 1 : 0);
}

TermRef TermArena::bvLit(uint64_t Value, const Type *Sort) {
  assert(Sort && Sort->isBv() && "bvLit needs a bitvector sort");
  unsigned Width = Sort->bvWidth();
  uint64_t Mask = Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  return makeLeaf(TermOp::IntLit, Sort, static_cast<int64_t>(Value & Mask));
}

TermRef TermArena::mkNot(TermRef A) {
  if (isTrue(A))
    return mkFalse();
  if (isFalse(A))
    return mkTrue();
  if (op(A) == TermOp::Not)
    return kid(A, 0);
  return makeApp(TermOp::Not, nullptr, {A});
}

TermRef TermArena::mkAnd(TermRef A, TermRef B) {
  if (isTrue(A))
    return B;
  if (isTrue(B))
    return A;
  if (isFalse(A) || isFalse(B))
    return mkFalse();
  if (A == B)
    return A;
  return makeApp(TermOp::And, nullptr, {A, B});
}

TermRef TermArena::mkOr(TermRef A, TermRef B) {
  if (isFalse(A))
    return B;
  if (isFalse(B))
    return A;
  if (isTrue(A) || isTrue(B))
    return mkTrue();
  if (A == B)
    return A;
  return makeApp(TermOp::Or, nullptr, {A, B});
}

TermRef TermArena::mkImplies(TermRef A, TermRef B) {
  if (isTrue(A))
    return B;
  if (isFalse(A) || isTrue(B))
    return mkTrue();
  if (isFalse(B))
    return mkNot(A);
  return makeApp(TermOp::Implies, nullptr, {A, B});
}

TermRef TermArena::mkAndMany(const std::vector<TermRef> &Terms) {
  TermRef Acc = mkTrue();
  for (TermRef T : Terms)
    Acc = mkAnd(Acc, T);
  return Acc;
}

TermRef TermArena::mkOrMany(const std::vector<TermRef> &Terms) {
  TermRef Acc = mkFalse();
  for (TermRef T : Terms)
    Acc = mkOr(Acc, T);
  return Acc;
}

namespace {

/// True when \p Sort designates mathematical integers (the default).
bool isIntSort(const rmt::Type *Sort) { return !Sort || Sort->isInt(); }

} // namespace

/// Value sort of a binary arithmetic application: whichever operand knows.
static const Type *jointSort(const TermArena &A, TermRef X, TermRef Y) {
  return A.sort(X) ? A.sort(X) : A.sort(Y);
}

TermRef TermArena::mkEq(TermRef A, TermRef B) {
  if (A == B)
    return mkTrue();
  // Literal folding is only valid when both literals have the same sort
  // (payloads of bitvector literals are stored in canonical masked form).
  if (op(A) == TermOp::IntLit && op(B) == TermOp::IntLit &&
      sort(A) == sort(B))
    return boolLit(node(A).Payload == node(B).Payload);
  if (op(A) == TermOp::BoolLit && op(B) == TermOp::BoolLit)
    return boolLit(node(A).Payload == node(B).Payload);
  return makeApp(TermOp::Eq, nullptr, {A, B});
}

TermRef TermArena::mkLt(TermRef A, TermRef B) {
  if (A == B)
    return mkFalse();
  if (op(A) == TermOp::IntLit && op(B) == TermOp::IntLit &&
      isIntSort(sort(A)) && isIntSort(sort(B)))
    return boolLit(node(A).Payload < node(B).Payload);
  return makeApp(TermOp::Lt, nullptr, {A, B});
}

TermRef TermArena::mkLe(TermRef A, TermRef B) {
  if (A == B)
    return mkTrue();
  if (op(A) == TermOp::IntLit && op(B) == TermOp::IntLit &&
      isIntSort(sort(A)) && isIntSort(sort(B)))
    return boolLit(node(A).Payload <= node(B).Payload);
  return makeApp(TermOp::Le, nullptr, {A, B});
}

TermRef TermArena::mkNeg(TermRef A) {
  if (op(A) == TermOp::IntLit && isIntSort(sort(A)))
    return intLit(-node(A).Payload);
  return makeApp(TermOp::Neg, sort(A), {A});
}

TermRef TermArena::mkAdd(TermRef A, TermRef B) {
  if (op(A) == TermOp::IntLit && node(A).Payload == 0)
    return B;
  if (op(B) == TermOp::IntLit && node(B).Payload == 0)
    return A;
  return makeApp(TermOp::Add, jointSort(*this, A, B), {A, B});
}

TermRef TermArena::mkSub(TermRef A, TermRef B) {
  if (op(B) == TermOp::IntLit && node(B).Payload == 0)
    return A;
  return makeApp(TermOp::Sub, jointSort(*this, A, B), {A, B});
}

TermRef TermArena::mkMul(TermRef A, TermRef B) {
  if (op(A) == TermOp::IntLit && node(A).Payload == 1)
    return B;
  if (op(B) == TermOp::IntLit && node(B).Payload == 1)
    return A;
  return makeApp(TermOp::Mul, jointSort(*this, A, B), {A, B});
}

TermRef TermArena::mkDiv(TermRef A, TermRef B) {
  return makeApp(TermOp::Div, jointSort(*this, A, B), {A, B});
}

TermRef TermArena::mkMod(TermRef A, TermRef B) {
  return makeApp(TermOp::Mod, jointSort(*this, A, B), {A, B});
}

TermRef TermArena::mkIte(TermRef C, TermRef T, TermRef E) {
  if (isTrue(C))
    return T;
  if (isFalse(C))
    return E;
  if (T == E)
    return T;
  return makeApp(TermOp::Ite, sort(T), {C, T, E});
}

TermRef TermArena::mkSelect(TermRef Array, TermRef Index) {
  const Type *ArrSort = sort(Array);
  assert(ArrSort && ArrSort->isArray() && "select needs a sorted array term");
  return makeApp(TermOp::Select, ArrSort->elementType(), {Array, Index});
}

TermRef TermArena::mkStore(TermRef Array, TermRef Index, TermRef Value) {
  const Type *ArrSort = sort(Array);
  assert(ArrSort && ArrSort->isArray() && "store needs a sorted array term");
  return makeApp(TermOp::Store, ArrSort, {Array, Index, Value});
}

size_t TermArena::dagSize(TermRef T) const {
  std::unordered_set<uint32_t> Seen;
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur.id()).second)
      continue;
    for (unsigned I = 0, N = numKids(Cur); I < N; ++I)
      Work.push_back(kid(Cur, I));
  }
  return Seen.size();
}
