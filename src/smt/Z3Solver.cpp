//===- Z3Solver.cpp -------------------------------------------------------===//

#include "smt/Z3Solver.h"

#include "support/Trace.h"

#include <z3.h>

#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

using namespace rmt;

Solver::~Solver() = default;

const char *rmt::solveResultName(SolveResult R) {
  switch (R) {
  case SolveResult::Sat:
    return "sat";
  case SolveResult::Unsat:
    return "unsat";
  case SolveResult::Unknown:
    return "unknown";
  }
  return "?";
}

namespace {

/// Z3 reports API misuse through an error handler; we record and keep going
/// (checks then return Unknown). Using a thread-unsafe global is acceptable:
/// each Z3SolverImpl owns its own context, and the handler only flags.
void z3ErrorHandler(Z3_context Ctx, Z3_error_code Code) {
  std::fprintf(stderr, "z3 error %d: %s\n", static_cast<int>(Code),
               Z3_get_error_msg(Ctx, Code));
}

class Z3SolverImpl final : public Solver {
public:
  Z3SolverImpl(const TermArena &Arena, Trace *Telemetry)
      : Arena(Arena), Telemetry(Telemetry) {
    Z3_config Config = Z3_mk_config();
    Z3_set_param_value(Config, "model", "true");
    Ctx = Z3_mk_context(Config);
    Z3_del_config(Config);
    Z3_set_error_handler(Ctx, z3ErrorHandler);
    Sol = Z3_mk_solver(Ctx);
    Z3_solver_inc_ref(Ctx, Sol);
  }

  ~Z3SolverImpl() override {
    clearModel();
    Z3_solver_dec_ref(Ctx, Sol);
    Z3_del_context(Ctx);
  }

  void assertTerm(TermRef T) override {
    ++NumAsserts;
    Z3_solver_assert(Ctx, Sol, translate(T));
  }

  void push() override { Z3_solver_push(Ctx, Sol); }
  void pop() override { Z3_solver_pop(Ctx, Sol, 1); }

  SolveResult check(const std::vector<TermRef> &Assumptions,
                    double TimeoutSeconds) override {
    ++NumChecks;
    TraceSpan Span(Telemetry, "z3.check_sat",
                   {{"asserts", NumAsserts},
                    {"assumptions", Assumptions.size()}});
    clearModel();
    if (TimeoutSeconds > 0) {
      Z3_params Params = Z3_mk_params(Ctx);
      Z3_params_inc_ref(Ctx, Params);
      unsigned Ms = static_cast<unsigned>(TimeoutSeconds * 1000.0);
      Z3_params_set_uint(Ctx, Params,
                         Z3_mk_string_symbol(Ctx, "timeout"),
                         Ms == 0 ? 1 : Ms);
      Z3_solver_set_params(Ctx, Sol, Params);
      Z3_params_dec_ref(Ctx, Params);
    }
    std::vector<Z3_ast> Lits;
    Lits.reserve(Assumptions.size());
    for (TermRef A : Assumptions)
      Lits.push_back(translate(A));
    Z3_lbool R = Z3_solver_check_assumptions(
        Ctx, Sol, static_cast<unsigned>(Lits.size()), Lits.data());
    SolveResult Out = SolveResult::Unknown;
    if (R == Z3_L_TRUE) {
      Model = Z3_solver_get_model(Ctx, Sol);
      Z3_model_inc_ref(Ctx, Model);
      Out = SolveResult::Sat;
    } else if (R == Z3_L_FALSE) {
      Out = SolveResult::Unsat;
    }
    Span.note({"result", solveResultName(Out)});
    return Out;
  }

  bool modelBool(TermRef ConstTerm) override {
    Z3_ast Value = evalInModel(ConstTerm);
    return Value && Z3_get_bool_value(Ctx, Value) == Z3_L_TRUE;
  }

  int64_t modelInt(TermRef ConstTerm) override {
    Z3_ast Value = evalInModel(ConstTerm);
    int64_t Out = 0;
    if (Value && !Z3_get_numeral_int64(Ctx, Value, &Out)) {
      // Wide bitvector values may only fit unsigned extraction.
      uint64_t U = 0;
      if (Z3_get_numeral_uint64(Ctx, Value, &U))
        Out = static_cast<int64_t>(U);
    }
    return Out;
  }

private:
  void clearModel() {
    if (Model) {
      Z3_model_dec_ref(Ctx, Model);
      Model = nullptr;
    }
  }

  Z3_ast evalInModel(TermRef T) {
    assert(Model && "model access without a preceding Sat result");
    Z3_ast Out = nullptr;
    if (!Z3_model_eval(Ctx, Model, translate(T), /*model_completion=*/true,
                       &Out))
      return nullptr;
    return Out;
  }

  Z3_sort sortOf(const Type *Ty) {
    if (!Ty || Ty->isInt())
      return Z3_mk_int_sort(Ctx);
    if (Ty->isBool())
      return Z3_mk_bool_sort(Ctx);
    if (Ty->isBv())
      return Z3_mk_bv_sort(Ctx, Ty->bvWidth());
    return Z3_mk_array_sort(Ctx, sortOf(Ty->indexType()),
                            sortOf(Ty->elementType()));
  }

  /// True when the value sort of \p T is a bitvector (arithmetic then uses
  /// the bv variants). Sorts are propagated bottom-up by the arena.
  bool isBvValued(TermRef T) {
    const Type *S = Arena.sort(T);
    return S && S->isBv();
  }

  /// Translates \p T, memoizing per TermRef. Iterative worklist: VC terms
  /// can be deep (long implication chains), so no recursion.
  Z3_ast translate(TermRef Root) {
    if (Root.id() < Cache.size() && Cache[Root.id()])
      return Cache[Root.id()];
    std::vector<TermRef> Work{Root};
    while (!Work.empty()) {
      TermRef T = Work.back();
      if (T.id() < Cache.size() && Cache[T.id()]) {
        Work.pop_back();
        continue;
      }
      bool KidsReady = true;
      for (unsigned I = 0, N = Arena.numKids(T); I < N; ++I) {
        TermRef K = Arena.kid(T, I);
        if (K.id() >= Cache.size() || !Cache[K.id()]) {
          Work.push_back(K);
          KidsReady = false;
        }
      }
      if (!KidsReady)
        continue;
      Work.pop_back();
      if (T.id() >= Cache.size())
        Cache.resize(Arena.numTerms(), nullptr);
      Cache[T.id()] = build(T);
    }
    return Cache[Root.id()];
  }

  Z3_ast kidAst(TermRef T, unsigned I) {
    return Cache[Arena.kid(T, I).id()];
  }

  Z3_ast build(TermRef T) {
    const TermNode &N = Arena.node(T);
    switch (N.Op) {
    case TermOp::Const: {
      Z3_symbol Name =
          Z3_mk_string_symbol(Ctx, Arena.constName(T).c_str());
      return Z3_mk_const(Ctx, Name, sortOf(N.Sort));
    }
    case TermOp::IntLit:
      if (N.Sort && N.Sort->isBv())
        return Z3_mk_unsigned_int64(Ctx, static_cast<uint64_t>(N.Payload),
                                    sortOf(N.Sort));
      return Z3_mk_int64(Ctx, N.Payload, Z3_mk_int_sort(Ctx));
    case TermOp::BoolLit:
      return N.Payload ? Z3_mk_true(Ctx) : Z3_mk_false(Ctx);
    case TermOp::Not:
      return Z3_mk_not(Ctx, kidAst(T, 0));
    case TermOp::And: {
      Z3_ast Args[2] = {kidAst(T, 0), kidAst(T, 1)};
      return Z3_mk_and(Ctx, 2, Args);
    }
    case TermOp::Or: {
      Z3_ast Args[2] = {kidAst(T, 0), kidAst(T, 1)};
      return Z3_mk_or(Ctx, 2, Args);
    }
    case TermOp::Implies:
      return Z3_mk_implies(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Eq:
      return Z3_mk_eq(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Lt:
      if (isBvValued(Arena.kid(T, 0)) || isBvValued(Arena.kid(T, 1)))
        return Z3_mk_bvult(Ctx, kidAst(T, 0), kidAst(T, 1));
      return Z3_mk_lt(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Le:
      if (isBvValued(Arena.kid(T, 0)) || isBvValued(Arena.kid(T, 1)))
        return Z3_mk_bvule(Ctx, kidAst(T, 0), kidAst(T, 1));
      return Z3_mk_le(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Neg:
      if (isBvValued(T))
        return Z3_mk_bvneg(Ctx, kidAst(T, 0));
      return Z3_mk_unary_minus(Ctx, kidAst(T, 0));
    case TermOp::Add: {
      if (isBvValued(T))
        return Z3_mk_bvadd(Ctx, kidAst(T, 0), kidAst(T, 1));
      Z3_ast Args[2] = {kidAst(T, 0), kidAst(T, 1)};
      return Z3_mk_add(Ctx, 2, Args);
    }
    case TermOp::Sub: {
      if (isBvValued(T))
        return Z3_mk_bvsub(Ctx, kidAst(T, 0), kidAst(T, 1));
      Z3_ast Args[2] = {kidAst(T, 0), kidAst(T, 1)};
      return Z3_mk_sub(Ctx, 2, Args);
    }
    case TermOp::Mul: {
      if (isBvValued(T))
        return Z3_mk_bvmul(Ctx, kidAst(T, 0), kidAst(T, 1));
      Z3_ast Args[2] = {kidAst(T, 0), kidAst(T, 1)};
      return Z3_mk_mul(Ctx, 2, Args);
    }
    case TermOp::Div:
      if (isBvValued(T))
        return Z3_mk_bvudiv(Ctx, kidAst(T, 0), kidAst(T, 1));
      return Z3_mk_div(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Mod:
      if (isBvValued(T))
        return Z3_mk_bvurem(Ctx, kidAst(T, 0), kidAst(T, 1));
      return Z3_mk_mod(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Ite:
      return Z3_mk_ite(Ctx, kidAst(T, 0), kidAst(T, 1), kidAst(T, 2));
    case TermOp::Select:
      return Z3_mk_select(Ctx, kidAst(T, 0), kidAst(T, 1));
    case TermOp::Store:
      return Z3_mk_store(Ctx, kidAst(T, 0), kidAst(T, 1), kidAst(T, 2));
    }
    assert(false && "unhandled term op");
    return nullptr;
  }

  const TermArena &Arena;
  Trace *Telemetry = nullptr;
  Z3_context Ctx = nullptr;
  Z3_solver Sol = nullptr;
  Z3_model Model = nullptr;
  /// TermRef id -> Z3 ast. Z3_mk_context (non-rc mode) keeps all ASTs alive
  /// for the context's lifetime, so caching plain pointers is safe.
  std::vector<Z3_ast> Cache;
};

} // namespace

std::unique_ptr<Solver> rmt::createZ3Solver(const TermArena &Arena,
                                            Trace *Telemetry) {
  return std::make_unique<Z3SolverImpl>(Arena, Telemetry);
}
