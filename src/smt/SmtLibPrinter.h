//===- SmtLibPrinter.h - SMT-LIB2 rendering of terms ------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms as SMT-LIB2 s-expressions, and whole assertion sets as a
/// self-contained (declare-const ... / assert ... / check-sat) script. Used
/// by tests (goldens over the Fig. 6 VCs), by debugging dumps, and as a
/// second backend to sanity-check the Z3 translation.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SMT_SMTLIBPRINTER_H
#define RMT_SMT_SMTLIBPRINTER_H

#include "smt/Term.h"

#include <string>
#include <vector>

namespace rmt {

/// Renders \p T as one s-expression (shared subterms are expanded inline).
std::string printTerm(const TermArena &Arena, TermRef T);

/// Renders a full script: declarations of every constant occurring in
/// \p Assertions, one (assert ...) per entry, and (check-sat).
std::string printScript(const TermArena &Arena,
                        const std::vector<TermRef> &Assertions);

} // namespace rmt

#endif // RMT_SMT_SMTLIBPRINTER_H
