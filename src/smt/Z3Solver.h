//===- Z3Solver.h - Z3 backend ----------------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solver backend over the Z3 C API (the same solver the paper's stack —
/// Corral/Boogie — bottoms out in). Uses the C API rather than z3++ so the
/// library stays exception-free; Z3 errors surface as Unknown results.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SMT_Z3SOLVER_H
#define RMT_SMT_Z3SOLVER_H

#include "smt/Solver.h"

#include <memory>

namespace rmt {

class Trace;

/// Creates a Z3-backed solver over \p Arena. The arena must outlive the
/// solver. Each solver owns a private Z3 context. When \p Telemetry is
/// given (and enabled), every check() records a "z3.check_sat" span with
/// the assertion/assumption counts and the result.
std::unique_ptr<Solver> createZ3Solver(const TermArena &Arena,
                                       Trace *Telemetry = nullptr);

} // namespace rmt

#endif // RMT_SMT_Z3SOLVER_H
