//===- Term.h - Hash-consed SMT terms ---------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A solver-independent term layer. VC generation (the paper's Push(...)
/// calls) builds terms here; backends (Z3, SMT-LIB printing) translate them.
///
/// Terms are hash-consed in a TermArena: structurally equal applications and
/// literals share one TermRef. Symbolic constants ("new Const" in Fig. 8) are
/// deliberately *not* consed — every freshConst() call mints a distinct
/// constant, which is exactly the paper's semantics for BS/VS/VS' entries.
///
/// The operator set is canonicalized: Ne, Gt, Ge and Iff are rewritten by the
/// builder (into Not/Eq and swapped Lt/Le), so backends handle fewer cases.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SMT_TERM_H
#define RMT_SMT_TERM_H

#include "ast/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace rmt {

/// A handle to a term inside a TermArena.
class TermRef {
public:
  TermRef() : Id(~0u) {}
  explicit TermRef(uint32_t Id) : Id(Id) {}
  bool isValid() const { return Id != ~0u; }
  uint32_t id() const {
    assert(isValid() && "invalid term");
    return Id;
  }
  friend bool operator==(TermRef A, TermRef B) { return A.Id == B.Id; }
  friend bool operator!=(TermRef A, TermRef B) { return A.Id != B.Id; }

private:
  uint32_t Id;
};

/// Term node operators (post-canonicalization).
enum class TermOp : uint8_t {
  Const,   ///< symbolic constant; payload = constant index, has a name
  IntLit,  ///< payload = value
  BoolLit, ///< payload = 0/1
  Not,
  And,
  Or,
  Implies,
  Eq,      ///< any sort; doubles as Iff on booleans
  Lt,
  Le,
  Neg,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Ite,
  Select,
  Store,
};

/// One term node. Children live in the arena's shared operand pool.
struct TermNode {
  TermOp Op;
  const Type *Sort;
  int64_t Payload;    ///< literal value or constant index
  uint32_t FirstKid;  ///< offset into TermArena's operand pool
  uint32_t NumKids;
};

/// Owns all terms. Append-only; TermRefs stay valid forever.
class TermArena {
public:
  TermArena() = default;
  TermArena(const TermArena &) = delete;
  TermArena &operator=(const TermArena &) = delete;

  // --- Leaves ---------------------------------------------------------------

  /// Mints a *fresh* symbolic constant of \p Sort. \p BaseName is decorated
  /// with a unique suffix for readability in dumps and models.
  TermRef freshConst(const Type *Sort, const std::string &BaseName);

  TermRef intLit(int64_t Value);
  TermRef boolLit(bool Value);
  /// Bitvector literal of \p Sort (a Bv type); value truncated to width.
  TermRef bvLit(uint64_t Value, const Type *Sort);
  TermRef mkTrue() { return boolLit(true); }
  TermRef mkFalse() { return boolLit(false); }

  // --- Applications (hash-consed, lightly simplified) -----------------------

  TermRef mkNot(TermRef A);
  TermRef mkAnd(TermRef A, TermRef B);
  TermRef mkOr(TermRef A, TermRef B);
  TermRef mkImplies(TermRef A, TermRef B);
  /// Conjunction of a vector; true for empty.
  TermRef mkAndMany(const std::vector<TermRef> &Terms);
  /// Disjunction of a vector; false for empty.
  TermRef mkOrMany(const std::vector<TermRef> &Terms);

  TermRef mkEq(TermRef A, TermRef B);
  TermRef mkLt(TermRef A, TermRef B);
  TermRef mkLe(TermRef A, TermRef B);

  TermRef mkNeg(TermRef A);
  TermRef mkAdd(TermRef A, TermRef B);
  TermRef mkSub(TermRef A, TermRef B);
  TermRef mkMul(TermRef A, TermRef B);
  TermRef mkDiv(TermRef A, TermRef B);
  TermRef mkMod(TermRef A, TermRef B);

  TermRef mkIte(TermRef C, TermRef T, TermRef E);
  TermRef mkSelect(TermRef Array, TermRef Index);
  TermRef mkStore(TermRef Array, TermRef Index, TermRef Value);

  // --- Inspection ------------------------------------------------------------

  const TermNode &node(TermRef T) const { return Nodes[T.id()]; }
  TermOp op(TermRef T) const { return node(T).Op; }
  const Type *sort(TermRef T) const { return node(T).Sort; }
  unsigned numKids(TermRef T) const { return node(T).NumKids; }
  TermRef kid(TermRef T, unsigned I) const {
    assert(I < node(T).NumKids && "child index out of range");
    return Operands[node(T).FirstKid + I];
  }
  /// Name of a Const term (with its uniquifying suffix).
  const std::string &constName(TermRef T) const {
    assert(op(T) == TermOp::Const && "not a constant");
    return ConstNames[static_cast<size_t>(node(T).Payload)];
  }

  bool isTrue(TermRef T) const {
    return op(T) == TermOp::BoolLit && node(T).Payload != 0;
  }
  bool isFalse(TermRef T) const {
    return op(T) == TermOp::BoolLit && node(T).Payload == 0;
  }

  size_t numTerms() const { return Nodes.size(); }
  size_t numConsts() const { return ConstNames.size(); }

  /// Total nodes reachable from \p T counting shared nodes once (VC size
  /// metric used by the size benchmarks).
  size_t dagSize(TermRef T) const;

private:
  TermRef makeLeaf(TermOp Op, const Type *Sort, int64_t Payload);
  TermRef makeApp(TermOp Op, const Type *Sort,
                  std::initializer_list<TermRef> Kids);

  struct AppKey {
    TermOp Op;
    int64_t Payload;
    const Type *Sort; // distinguishes literals of different sorts
    std::vector<uint32_t> Kids;
    bool operator==(const AppKey &O) const {
      return Op == O.Op && Payload == O.Payload && Sort == O.Sort &&
             Kids == O.Kids;
    }
  };
  struct AppKeyHash {
    size_t operator()(const AppKey &K) const {
      size_t H = static_cast<size_t>(K.Op) * 1099511628211ULL ^
                 static_cast<size_t>(K.Payload) * 14695981039346656037ULL ^
                 reinterpret_cast<size_t>(K.Sort);
      for (uint32_t Kid : K.Kids)
        H = H * 1099511628211ULL ^ Kid;
      return H;
    }
  };

  std::vector<TermNode> Nodes;
  std::vector<TermRef> Operands;
  std::vector<std::string> ConstNames;
  std::unordered_map<AppKey, uint32_t, AppKeyHash> ConsTable;
};

} // namespace rmt

#endif // RMT_SMT_TERM_H
