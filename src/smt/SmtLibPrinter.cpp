//===- SmtLibPrinter.cpp --------------------------------------------------===//

#include "smt/SmtLibPrinter.h"

#include <unordered_set>

using namespace rmt;

namespace {

const char *opName(TermOp Op, bool Bv) {
  if (Bv) {
    switch (Op) {
    case TermOp::Lt:
      return "bvult";
    case TermOp::Le:
      return "bvule";
    case TermOp::Neg:
      return "bvneg";
    case TermOp::Add:
      return "bvadd";
    case TermOp::Sub:
      return "bvsub";
    case TermOp::Mul:
      return "bvmul";
    case TermOp::Div:
      return "bvudiv";
    case TermOp::Mod:
      return "bvurem";
    default:
      break;
    }
  }
  switch (Op) {
  case TermOp::Not:
    return "not";
  case TermOp::And:
    return "and";
  case TermOp::Or:
    return "or";
  case TermOp::Implies:
    return "=>";
  case TermOp::Eq:
    return "=";
  case TermOp::Lt:
    return "<";
  case TermOp::Le:
    return "<=";
  case TermOp::Neg:
    return "-";
  case TermOp::Add:
    return "+";
  case TermOp::Sub:
    return "-";
  case TermOp::Mul:
    return "*";
  case TermOp::Div:
    return "div";
  case TermOp::Mod:
    return "mod";
  case TermOp::Ite:
    return "ite";
  case TermOp::Select:
    return "select";
  case TermOp::Store:
    return "store";
  case TermOp::Const:
  case TermOp::IntLit:
  case TermOp::BoolLit:
    break;
  }
  return "?";
}

std::string sortSexpr(const Type *Ty) {
  if (!Ty || Ty->isInt())
    return "Int";
  if (Ty->isBool())
    return "Bool";
  if (Ty->isBv())
    return "(_ BitVec " + std::to_string(Ty->bvWidth()) + ")";
  return "(Array " + sortSexpr(Ty->indexType()) + " " +
         sortSexpr(Ty->elementType()) + ")";
}

/// SMT-LIB symbols with characters outside the simple-symbol set must be
/// quoted with |...|.
std::string quoteSymbol(const std::string &Name) {
  bool Simple = !Name.empty();
  for (char C : Name) {
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '$' || C == '.' || C == '!' || C == '@' || C == '-')) {
      Simple = false;
      break;
    }
  }
  if (Simple && !std::isdigit(static_cast<unsigned char>(Name[0])))
    return Name;
  return "|" + Name + "|";
}

void printInto(const TermArena &Arena, TermRef T, std::string &Out) {
  const TermNode &N = Arena.node(T);
  switch (N.Op) {
  case TermOp::Const:
    Out += quoteSymbol(Arena.constName(T));
    return;
  case TermOp::IntLit:
    if (N.Sort && N.Sort->isBv()) {
      Out += "(_ bv" + std::to_string(static_cast<uint64_t>(N.Payload)) +
             " " + std::to_string(N.Sort->bvWidth()) + ")";
    } else if (N.Payload < 0) {
      Out += "(- " + std::to_string(-N.Payload) + ")";
    } else {
      Out += std::to_string(N.Payload);
    }
    return;
  case TermOp::BoolLit:
    Out += N.Payload ? "true" : "false";
    return;
  default:
    break;
  }
  bool Bv = false;
  if (N.Sort && N.Sort->isBv()) {
    Bv = true;
  } else if (N.NumKids > 0) {
    // Comparisons carry no sort of their own; dispatch on an operand.
    for (unsigned I = 0; I < N.NumKids && !Bv; ++I) {
      const Type *KidSort = Arena.sort(Arena.kid(T, I));
      Bv = KidSort && KidSort->isBv();
    }
  }
  Out += "(";
  Out += opName(N.Op, Bv);
  for (unsigned I = 0; I < N.NumKids; ++I) {
    Out += " ";
    printInto(Arena, Arena.kid(T, I), Out);
  }
  Out += ")";
}

void collectConsts(const TermArena &Arena, TermRef Root,
                   std::unordered_set<uint32_t> &Seen,
                   std::vector<TermRef> &Consts) {
  std::vector<TermRef> Work{Root};
  while (!Work.empty()) {
    TermRef T = Work.back();
    Work.pop_back();
    if (!Seen.insert(T.id()).second)
      continue;
    if (Arena.op(T) == TermOp::Const)
      Consts.push_back(T);
    for (unsigned I = 0, N = Arena.numKids(T); I < N; ++I)
      Work.push_back(Arena.kid(T, I));
  }
}

} // namespace

std::string rmt::printTerm(const TermArena &Arena, TermRef T) {
  std::string Out;
  printInto(Arena, T, Out);
  return Out;
}

std::string rmt::printScript(const TermArena &Arena,
                             const std::vector<TermRef> &Assertions) {
  std::unordered_set<uint32_t> Seen;
  std::vector<TermRef> Consts;
  for (TermRef A : Assertions)
    collectConsts(Arena, A, Seen, Consts);

  std::string Out = "(set-logic ALL)\n";
  for (TermRef C : Consts)
    Out += "(declare-const " + quoteSymbol(Arena.constName(C)) + " " +
           sortSexpr(Arena.sort(C)) + ")\n";
  for (TermRef A : Assertions)
    Out += "(assert " + printTerm(Arena, A) + ")\n";
  Out += "(check-sat)\n";
  return Out;
}
