//===- Translate.h - Program expressions to SMT terms -----------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates typed AST expressions to terms under a substitution from
/// program variables to terms. This implements the paper's e[m] notation:
/// "for an expression e over variables X, e[m] refers to substituting each
/// x with m[x] in e".
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SMT_TRANSLATE_H
#define RMT_SMT_TRANSLATE_H

#include "ast/Expr.h"
#include "smt/Term.h"

#include <unordered_map>

namespace rmt {

/// Substitution from program variables to terms (the paper's maps VS[y]).
using VarTermMap = std::unordered_map<Symbol, TermRef>;

/// Translates \p E under \p Subst. Every free variable of \p E must be bound
/// in \p Subst; \p E must be typed.
TermRef translateExpr(TermArena &Arena, const Expr *E,
                      const VarTermMap &Subst);

} // namespace rmt

#endif // RMT_SMT_TRANSLATE_H
