//===- Stats.cpp ----------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>

using namespace rmt;

void Stats::merge(const Stats &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Other.Times)
    Times[Name] += Value;
}

std::string Stats::str() const {
  std::string Out;
  char Buf[160];
  for (const auto &[Name, Value] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%-40s %lld\n", Name.c_str(),
                  static_cast<long long>(Value));
    Out += Buf;
  }
  for (const auto &[Name, Value] : Times) {
    std::snprintf(Buf, sizeof(Buf), "%-40s %.4fs\n", Name.c_str(), Value);
    Out += Buf;
  }
  return Out;
}
