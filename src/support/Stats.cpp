//===- Stats.cpp ----------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace rmt;

void Stats::merge(const Stats &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Other.Times)
    Times[Name] += Value;
}

std::string Stats::str() const {
  // Both maps are name-ordered; align every value to one column just past
  // the longest name.
  size_t Width = 0;
  for (const auto &[Name, Value] : Counters)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, Value] : Times)
    Width = std::max(Width, Name.size());

  std::string Out;
  char Buf[192];
  int W = static_cast<int>(std::min<size_t>(Width, 120));
  for (const auto &[Name, Value] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%-*s  %lld\n", W, Name.c_str(),
                  static_cast<long long>(Value));
    Out += Buf;
  }
  for (const auto &[Name, Value] : Times) {
    std::snprintf(Buf, sizeof(Buf), "%-*s  %.4fs\n", W, Name.c_str(), Value);
    Out += Buf;
  }
  return Out;
}

std::string Stats::toJson() const {
  auto Append = [](std::string &Out, const std::string &Name,
                   const std::string &Value, bool &First) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + Value;
  };

  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters)
    Append(Out, Name, std::to_string(Value), First);
  Out += "},\"times\":{";
  First = true;
  for (const auto &[Name, Value] : Times) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g", std::isfinite(Value) ? Value : 0.0);
    Append(Out, Name, Buf, First);
  }
  Out += "}}";
  return Out;
}
