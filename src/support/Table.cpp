//===- Table.cpp ----------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace rmt;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::row() { Rows.emplace_back(); }

void Table::cell(const std::string &Value) {
  assert(!Rows.empty() && "cell() before row()");
  assert(Rows.back().size() < Header.size() && "too many cells in row");
  Rows.back().push_back(Value);
}

void Table::cell(int64_t Value) { cell(std::to_string(Value)); }
void Table::cell(uint64_t Value) { cell(std::to_string(Value)); }

void Table::cell(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  cell(std::string(Buf));
}

std::string Table::str() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      Out += Row[I];
      if (I + 1 < Row.size())
        Out.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Header);
  std::string Rule;
  for (size_t I = 0; I < Header.size(); ++I) {
    Rule.append(Widths[I], '-');
    if (I + 1 < Header.size())
      Rule.append(2, ' ');
  }
  Out += Rule;
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

static void appendCsvField(std::string &Out, const std::string &Field) {
  bool NeedsQuote = Field.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuote) {
    Out += Field;
    return;
  }
  Out += '"';
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

std::string Table::csv() const {
  std::string Out;
  auto AppendRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      appendCsvField(Out, Row[I]);
      if (I + 1 < Row.size())
        Out += ',';
    }
    Out += '\n';
  };
  AppendRow(Header);
  for (const auto &Row : Rows)
    AppendRow(Row);
  return Out;
}
