//===- Timer.h - Wall-clock timing and deadlines ----------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock stopwatch and a Deadline helper used by the engines
/// to honour per-instance timeouts (Section 4 runs every instance under a
/// timeout budget).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_TIMER_H
#define RMT_SUPPORT_TIMER_H

#include <chrono>

namespace rmt {

/// A stopwatch running from construction (or the last reset()).
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since start.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since start.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A wall-clock budget. A non-positive budget means "no deadline".
class Deadline {
public:
  Deadline() = default;
  explicit Deadline(double BudgetSeconds) : Budget(BudgetSeconds) {}

  bool enabled() const { return Budget > 0; }
  bool expired() const { return enabled() && Watch.seconds() >= Budget; }

  /// Seconds remaining; +inf when no deadline is set.
  double remaining() const {
    if (!enabled())
      return 1e300;
    double Left = Budget - Watch.seconds();
    return Left > 0 ? Left : 0;
  }

  double elapsed() const { return Watch.seconds(); }

private:
  double Budget = 0;
  Stopwatch Watch;
};

} // namespace rmt

#endif // RMT_SUPPORT_TIMER_H
