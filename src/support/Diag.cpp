//===- Diag.cpp -----------------------------------------------------------===//

#include "support/Diag.h"

using namespace rmt;

std::string SrcLoc::str() const {
  if (!isValid())
    return "<no-loc>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diag::str() const {
  const char *Prefix = "error";
  switch (Kind) {
  case DiagKind::Error:
    Prefix = "error";
    break;
  case DiagKind::Warning:
    Prefix = "warning";
    break;
  case DiagKind::Note:
    Prefix = "note";
    break;
  }
  return Loc.str() + ": " + Prefix + ": " + Message;
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diag &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
