//===- Table.h - Aligned text tables for benchmark output -------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned plain-text table writer. Every benchmark binary prints
/// its figure/table data through this so EXPERIMENTS.md can quote outputs
/// verbatim. Also emits CSV for external plotting.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_TABLE_H
#define RMT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace rmt {

/// An aligned text/CSV table builder.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  void row();
  void cell(const std::string &Value);
  void cell(int64_t Value);
  void cell(uint64_t Value);
  void cell(double Value, int Precision = 3);

  size_t numRows() const { return Rows.size(); }

  /// Raw access for non-text exporters (bench JSON output).
  const std::vector<std::string> &header() const { return Header; }
  const std::vector<std::vector<std::string>> &rows() const { return Rows; }

  /// Renders with space-aligned columns.
  std::string str() const;
  /// Renders as CSV (header + rows).
  std::string csv() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace rmt

#endif // RMT_SUPPORT_TABLE_H
