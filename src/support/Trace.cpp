//===- Trace.cpp ----------------------------------------------------------===//

#include "support/Trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>

using namespace rmt;

std::string rmt::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

namespace {

std::string quoted(std::string_view S) {
  return "\"" + jsonEscape(S) + "\"";
}

/// JSON-safe double rendering (JSON has no inf/nan literals).
std::string numberJson(double V) {
  if (!std::isfinite(V))
    return "0";
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

std::string argsJson(const std::vector<TraceArg> &Args) {
  std::string Out = "{";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ",";
    Out += quoted(Args[I].Key) + ":" + Args[I].valueJson();
  }
  Out += "}";
  return Out;
}

} // namespace

std::string TraceArg::valueJson() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Float:
    return numberJson(Float);
  case Kind::Str:
    return quoted(Str);
  }
  return "null";
}

const char *rmt::tracePhaseName(TraceEvent::Phase P) {
  switch (P) {
  case TraceEvent::Phase::Begin:
    return "B";
  case TraceEvent::Phase::End:
    return "E";
  case TraceEvent::Phase::Instant:
    return "i";
  }
  return "?";
}

Trace::Trace(size_t Capacity) : Ring(Capacity ? Capacity : 1) {}

TraceEvent &Trace::push() {
  size_t Slot;
  if (Count < Ring.size()) {
    Slot = (Start + Count) % Ring.size();
    ++Count;
  } else {
    // Full: overwrite the oldest event, keep the newest ones.
    Slot = Start;
    Start = (Start + 1) % Ring.size();
    ++Dropped;
  }
  TraceEvent &E = Ring[Slot];
  E.Args.clear();
  return E;
}

void Trace::begin(std::string_view Name,
                  std::initializer_list<TraceArg> Args) {
  if (!Enabled)
    return;
  double Now = Epoch.seconds() * 1e6;
  TraceEvent &E = push();
  E.Ph = TraceEvent::Phase::Begin;
  E.Micros = Now;
  E.Name = Name;
  E.Args.assign(Args.begin(), Args.end());
  Stack.push_back({std::string(Name), Now});
}

void Trace::end(std::initializer_list<TraceArg> Args) {
  end(std::vector<TraceArg>(Args.begin(), Args.end()));
}

void Trace::end(std::vector<TraceArg> Args) {
  if (!Enabled || Stack.empty())
    return;
  double Now = Epoch.seconds() * 1e6;
  OpenSpan Span = std::move(Stack.back());
  Stack.pop_back();
  SpanAgg &Agg = Aggregates[Span.Name];
  ++Agg.Count;
  Agg.Seconds += (Now - Span.StartMicros) / 1e6;
  TraceEvent &E = push();
  E.Ph = TraceEvent::Phase::End;
  E.Micros = Now;
  E.Name = std::move(Span.Name);
  E.Args = std::move(Args);
}

void Trace::instant(std::string_view Name,
                    std::initializer_list<TraceArg> Args) {
  if (!Enabled)
    return;
  double Now = Epoch.seconds() * 1e6;
  TraceEvent &E = push();
  E.Ph = TraceEvent::Phase::Instant;
  E.Micros = Now;
  E.Name = Name;
  E.Args.assign(Args.begin(), Args.end());
}

std::string Trace::chromeJson() const {
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t I = 0; I < numEvents(); ++I) {
    const TraceEvent &E = event(I);
    if (I)
      Out += ",";
    Out += "\n{\"name\":" + quoted(E.Name);
    Out += ",\"ph\":\"";
    Out += tracePhaseName(E.Ph);
    Out += "\",\"ts\":" + numberJson(E.Micros);
    Out += ",\"pid\":1,\"tid\":1";
    if (E.Ph == TraceEvent::Phase::Instant)
      Out += ",\"s\":\"t\"";
    if (!E.Args.empty())
      Out += ",\"args\":" + argsJson(E.Args);
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

std::string Trace::statsJson(const Stats *S) const {
  std::string Out = "{\n\"stats\": ";
  Out += S ? S->toJson() : std::string("{\"counters\":{},\"times\":{}}");
  Out += ",\n\"spans\": {";
  bool First = true;
  for (const auto &[Name, Agg] : Aggregates) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  " + quoted(Name) + ": {\"count\":" +
           std::to_string(Agg.Count) +
           ",\"seconds\":" + numberJson(Agg.Seconds) + "}";
  }
  Out += "\n},\n\"trace\": {\"events\":" + std::to_string(numEvents()) +
         ",\"dropped\":" + std::to_string(Dropped) +
         ",\"capacity\":" + std::to_string(Ring.size()) +
         ",\"open_spans\":" + std::to_string(Stack.size()) + "}\n}\n";
  return Out;
}

namespace {

bool writeText(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Text;
  return static_cast<bool>(Out.flush());
}

} // namespace

bool Trace::writeChromeJson(const std::string &Path) const {
  return writeText(Path, chromeJson());
}

bool Trace::writeStatsJson(const std::string &Path, const Stats *S) const {
  return writeText(Path, statsJson(S));
}
