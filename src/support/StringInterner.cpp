//===- StringInterner.cpp -------------------------------------------------===//

#include "support/StringInterner.h"

using namespace rmt;

Symbol StringInterner::intern(std::string_view Str) {
  auto It = Index.find(Str);
  if (It != Index.end())
    return Symbol(It->second);

  uint32_t Id = static_cast<uint32_t>(Strings.size());
  Strings.emplace_back(Str);
  Index.emplace(std::string_view(Strings.back()), Id);
  return Symbol(Id);
}

Symbol StringInterner::freshen(std::string_view Base) {
  std::string Candidate(Base);
  unsigned Counter = 0;
  while (Index.count(Candidate)) {
    Candidate = std::string(Base) + "#" + std::to_string(Counter);
    ++Counter;
  }
  return intern(Candidate);
}
