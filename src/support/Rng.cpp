//===- Rng.cpp ------------------------------------------------------------===//

#include "support/Rng.h"

using namespace rmt;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  for (uint64_t &S : State)
    S = splitmix64(Seed);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound != 0 && "empty range");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "inverted range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(Span == 0 ? next() : below(Span));
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "zero denominator");
  return below(Den) < Num;
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}
