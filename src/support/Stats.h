//===- Stats.h - Named statistic counters -----------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny statistics registry. Engines record counters ("procedures inlined",
/// "solver calls", "merge lookups") and timers; benchmarks and EXPERIMENTS.md
/// report them. Inspired by LLVM's Statistic but instance-scoped so parallel
/// engines do not share state.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_STATS_H
#define RMT_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace rmt {

/// A bag of named counters and accumulated timings.
class Stats {
public:
  void add(const std::string &Name, int64_t Delta = 1) {
    Counters[Name] += Delta;
  }
  void addTime(const std::string &Name, double Seconds) {
    Times[Name] += Seconds;
  }

  int64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }
  double getTime(const std::string &Name) const {
    auto It = Times.find(Name);
    return It == Times.end() ? 0.0 : It->second;
  }

  const std::map<std::string, int64_t> &counters() const { return Counters; }
  const std::map<std::string, double> &times() const { return Times; }

  /// Merges another stats bag into this one (used to aggregate per-instance
  /// engine stats into corpus-level numbers).
  void merge(const Stats &Other);

  /// Multi-line human-readable rendering: counters then times, each in
  /// deterministic name-sorted order with values in one aligned column.
  std::string str() const;

  /// JSON object {"counters":{...},"times":{...}} with name-sorted keys
  /// (stable across runs; embedded by Trace::statsJson()).
  std::string toJson() const;

private:
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Times;
};

} // namespace rmt

#endif // RMT_SUPPORT_STATS_H
