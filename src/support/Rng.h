//===- Rng.h - Deterministic pseudo-random numbers --------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (splitmix64 seeded xoshiro256**) used by
/// the randomized merging strategies, the workload generators and the
/// property tests. Determinism per seed is essential so benchmark corpora
/// and failures are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_RNG_H
#define RMT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace rmt {

/// Deterministic random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// True with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Uniform double in [0, 1).
  double real();

private:
  uint64_t State[4];
};

} // namespace rmt

#endif // RMT_SUPPORT_RNG_H
