//===- Diag.h - Source locations and diagnostics ----------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and an error collector shared by the lexer, parser,
/// resolver and type checker. The library never throws; phases report into a
/// DiagEngine and callers test hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_DIAG_H
#define RMT_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace rmt {

/// A 1-based line/column position in a source buffer. Line 0 means "no
/// location" (e.g. for programs built programmatically).
struct SrcLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diag {
  DiagKind Kind;
  SrcLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics emitted by the front-end phases.
class DiagEngine {
public:
  void error(SrcLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SrcLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SrcLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diag> &all() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

private:
  std::vector<Diag> Diags;
  unsigned NumErrors = 0;
};

} // namespace rmt

#endif // RMT_SUPPORT_DIAG_H
