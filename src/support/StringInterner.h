//===- StringInterner.h - Interned identifiers ------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings. Identifiers (variable, procedure and label names) occur
/// everywhere in the verifier; interning them gives O(1) comparison and
/// compact, trivially-hashable handles.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_STRINGINTERNER_H
#define RMT_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rmt {

/// A handle to an interned string. Symbols are only meaningful relative to
/// the StringInterner that produced them.
class Symbol {
public:
  Symbol() : Id(~0u) {}
  explicit Symbol(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != ~0u; }
  uint32_t id() const {
    assert(isValid() && "querying invalid symbol");
    return Id;
  }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id;
};

/// Owns the storage for a set of unique strings and hands out Symbol handles.
class StringInterner {
public:
  StringInterner() = default;
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p Str, returning the canonical Symbol for it.
  Symbol intern(std::string_view Str);

  /// Returns the string for \p Sym. The reference stays valid for the
  /// lifetime of the interner.
  const std::string &str(Symbol Sym) const {
    assert(Sym.isValid() && Sym.id() < Strings.size() && "unknown symbol");
    return Strings[Sym.id()];
  }

  /// Number of distinct strings interned so far.
  size_t size() const { return Strings.size(); }

  /// Returns a symbol guaranteed not to collide with any user identifier by
  /// appending a numeric suffix to \p Base until the result is fresh.
  Symbol freshen(std::string_view Base);

private:
  // Deque keeps element references stable across growth, so the string_view
  // keys in Index (which alias elements of Strings) never dangle.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace rmt

namespace std {
template <> struct hash<rmt::Symbol> {
  size_t operator()(rmt::Symbol S) const {
    return S.isValid() ? std::hash<uint32_t>()(S.id()) : size_t(-1);
  }
};
} // namespace std

#endif // RMT_SUPPORT_STRINGINTERNER_H
