//===- Bitset.h - Growable dense bitset -------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A growable dense bitset with the bulk operations the consistency checker
/// needs: or-assign, intersection tests, popcount. Out-of-range reads are
/// zero; writes grow the storage.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_BITSET_H
#define RMT_SUPPORT_BITSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmt {

/// Growable dense bitset.
class Bitset {
public:
  Bitset() = default;
  explicit Bitset(size_t Bits) : Words((Bits + 63) / 64, 0) {}

  void set(size_t I) {
    size_t W = I / 64;
    if (W >= Words.size())
      Words.resize(W + 1, 0);
    Words[W] |= uint64_t(1) << (I % 64);
  }

  bool test(size_t I) const {
    size_t W = I / 64;
    return W < Words.size() && (Words[W] >> (I % 64)) & 1;
  }

  /// this |= Other.
  void orWith(const Bitset &Other) {
    if (Other.Words.size() > Words.size())
      Words.resize(Other.Words.size(), 0);
    for (size_t I = 0; I < Other.Words.size(); ++I)
      Words[I] |= Other.Words[I];
  }

  /// True when this and Other share a set bit.
  bool intersects(const Bitset &Other) const {
    size_t N = Words.size() < Other.Words.size() ? Words.size()
                                                 : Other.Words.size();
    for (size_t I = 0; I < N; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  /// Number of set bits.
  size_t count() const {
    size_t Total = 0;
    for (uint64_t W : Words)
      Total += static_cast<size_t>(__builtin_popcountll(W));
    return Total;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

private:
  std::vector<uint64_t> Words;
};

} // namespace rmt

#endif // RMT_SUPPORT_BITSET_H
