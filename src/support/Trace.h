//===- Trace.h - Structured engine telemetry --------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instance-scoped tracing and metrics for the verification pipeline. The
/// engines record *when* things happen (per-iteration spans, one instant
/// event per inline/merge decision, a span per check-sat), not just the
/// totals that land in Stats, so inlining blowup and solver stalls can be
/// diagnosed per query the way Corral-style tools expose their traces.
///
/// Model: a Trace owns a preallocated ring buffer of events. RAII TraceSpan
/// objects record nested Begin/End pairs; instant() records point events.
/// Every recorder is null-safe and checks the runtime on/off switch first,
/// so a disabled (or absent) trace costs one pointer test per site.
///
/// Exporters:
///  * chromeJson()  — Chrome `trace_event` array format, loadable in
///                    chrome://tracing and Perfetto.
///  * statsJson()   — a machine-readable document bundling a Stats bag with
///                    the per-name span aggregates (count + total seconds).
///
/// Span aggregates are maintained outside the ring, so totals stay exact
/// even after the ring wraps and drops the oldest events.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_SUPPORT_TRACE_H
#define RMT_SUPPORT_TRACE_H

#include "support/Stats.h"
#include "support/Timer.h"

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rmt {

/// Escapes \p S for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters (as \uXXXX or the short forms).
std::string jsonEscape(std::string_view S);

/// One key/value argument attached to a trace event. Values are integers,
/// doubles, or strings (rendered into the Chrome event's "args" object).
struct TraceArg {
  enum class Kind : uint8_t { Int, Float, Str };

  std::string Key;
  Kind K = Kind::Int;
  int64_t Int = 0;
  double Float = 0;
  std::string Str;

  TraceArg() = default;
  TraceArg(std::string_view Key, int64_t V)
      : Key(Key), K(Kind::Int), Int(V) {}
  TraceArg(std::string_view Key, uint64_t V)
      : Key(Key), K(Kind::Int), Int(static_cast<int64_t>(V)) {}
  TraceArg(std::string_view Key, int V)
      : TraceArg(Key, static_cast<int64_t>(V)) {}
  TraceArg(std::string_view Key, unsigned V)
      : TraceArg(Key, static_cast<int64_t>(V)) {}
  TraceArg(std::string_view Key, double V)
      : Key(Key), K(Kind::Float), Float(V) {}
  TraceArg(std::string_view Key, std::string_view V)
      : Key(Key), K(Kind::Str), Str(V) {}
  TraceArg(std::string_view Key, const char *V)
      : TraceArg(Key, std::string_view(V)) {}

  /// JSON rendering of the value (quoted/escaped for strings).
  std::string valueJson() const;
};

/// One recorded event, ring-buffer resident.
struct TraceEvent {
  enum class Phase : uint8_t { Begin, End, Instant };

  Phase Ph = Phase::Instant;
  /// Microseconds since the owning Trace's construction.
  double Micros = 0;
  std::string Name;
  std::vector<TraceArg> Args;
};

/// Printable Chrome phase letter ("B", "E", "i") of \p P.
const char *tracePhaseName(TraceEvent::Phase P);

/// An instance-scoped event recorder (no global state; parallel engines each
/// get their own). Starts disabled: recording costs one branch until
/// setEnabled(true). Toggle between runs, not inside an open span.
class Trace {
public:
  /// \p Capacity is the fixed ring size in events (allocated up front).
  explicit Trace(size_t Capacity = DefaultCapacity);

  static constexpr size_t DefaultCapacity = 1 << 14;

  void setEnabled(bool On) { Enabled = On; }
  bool enabled() const { return Enabled; }

  /// Opens a span. Prefer the RAII TraceSpan over calling this directly.
  void begin(std::string_view Name,
             std::initializer_list<TraceArg> Args = {});
  /// Closes the innermost open span, attaching \p Args to the End event.
  void end(std::initializer_list<TraceArg> Args = {});
  void end(std::vector<TraceArg> Args);
  /// Records a point event.
  void instant(std::string_view Name,
               std::initializer_list<TraceArg> Args = {});

  /// Events currently held, oldest first. Index \p I in [0, numEvents()).
  size_t numEvents() const { return Count; }
  const TraceEvent &event(size_t I) const {
    return Ring[(Start + I) % Ring.size()];
  }
  /// Oldest events overwritten after the ring filled.
  size_t numDropped() const { return Dropped; }
  size_t capacity() const { return Ring.size(); }
  /// Spans begun but not yet ended.
  size_t openSpans() const { return Stack.size(); }

  /// Total wall time and occurrence count per span name, exact across ring
  /// wraparound.
  struct SpanAgg {
    uint64_t Count = 0;
    double Seconds = 0;
  };
  const std::map<std::string, SpanAgg> &spanAggregates() const {
    return Aggregates;
  }

  /// Chrome trace_event JSON ({"displayTimeUnit":...,"traceEvents":[...]}).
  std::string chromeJson() const;
  /// Machine-readable stats document: the optional \p S bag (counters and
  /// times) plus span aggregates and ring metadata.
  std::string statsJson(const Stats *S = nullptr) const;

  /// File-writing convenience wrappers; false on I/O failure.
  bool writeChromeJson(const std::string &Path) const;
  bool writeStatsJson(const std::string &Path, const Stats *S = nullptr) const;

private:
  /// Claims the next ring slot (overwriting the oldest event when full).
  TraceEvent &push();

  struct OpenSpan {
    std::string Name;
    double StartMicros = 0;
  };

  bool Enabled = false;
  Stopwatch Epoch;
  std::vector<TraceEvent> Ring;
  size_t Start = 0;
  size_t Count = 0;
  size_t Dropped = 0;
  std::vector<OpenSpan> Stack;
  std::map<std::string, SpanAgg> Aggregates;
};

/// RAII span over a (possibly null, possibly disabled) Trace. Closes on
/// destruction; note() attaches result-style args to the End event.
class TraceSpan {
public:
  TraceSpan(Trace *T, std::string_view Name,
            std::initializer_list<TraceArg> Args = {})
      : T(T && T->enabled() ? T : nullptr) {
    if (this->T)
      this->T->begin(Name, Args);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() { close(); }

  /// Attaches \p A to the closing End event (e.g. a check's result).
  void note(TraceArg A) {
    if (T)
      EndArgs.push_back(std::move(A));
  }

  /// Closes the span now (idempotent).
  void close() {
    if (!T)
      return;
    T->end(std::move(EndArgs));
    T = nullptr;
  }

private:
  Trace *T;
  std::vector<TraceArg> EndArgs;
};

} // namespace rmt

#endif // RMT_SUPPORT_TRACE_H
