//===- Eval.cpp -----------------------------------------------------------===//

#include "ast/Eval.h"

#include "support/Rng.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

using namespace rmt;

namespace {

struct ArrayData;

/// A concrete runtime value: int, bool, or a functional array.
class Value {
public:
  Value() = default;
  static Value ofInt(int64_t V) {
    Value R;
    R.Scalar = V;
    return R;
  }
  static Value ofBool(bool B) {
    Value R;
    R.Scalar = B ? 1 : 0;
    return R;
  }
  static Value ofArray(std::shared_ptr<const ArrayData> Data) {
    Value R;
    R.Array = std::move(Data);
    return R;
  }

  int64_t asInt() const { return Scalar; }
  bool asBool() const { return Scalar != 0; }
  bool isArray() const { return Array != nullptr; }
  const ArrayData &array() const { return *Array; }
  std::shared_ptr<const ArrayData> arrayPtr() const { return Array; }

  bool equals(const Value &Other) const;

private:
  int64_t Scalar = 0;
  std::shared_ptr<const ArrayData> Array = nullptr;
};

/// Map contents of an array value; entries equal to the default element are
/// pruned, so structural map equality is extensional equality (relative to a
/// shared default).
struct ArrayData {
  const Type *ElemTy = nullptr;
  std::map<int64_t, Value> Entries;
};

/// Default value of type \p Ty (0 / false / empty array).
Value defaultValue(const Type *Ty) {
  if (Ty->isInt() || Ty->isBv())
    return Value::ofInt(0);
  if (Ty->isBool())
    return Value::ofBool(false);
  auto Data = std::make_shared<ArrayData>();
  Data->ElemTy = Ty->elementType();
  return Value::ofArray(std::move(Data));
}

/// All-ones mask for a bitvector width.
uint64_t bvMask(unsigned Width) {
  return Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
}

bool Value::equals(const Value &Other) const {
  if (isArray() != Other.isArray())
    return false;
  if (!isArray())
    return Scalar == Other.Scalar;
  const ArrayData &A = array(), &B = Other.array();
  if (A.Entries.size() != B.Entries.size())
    return false;
  auto It = B.Entries.begin();
  for (const auto &[K, V] : A.Entries) {
    if (It->first != K || !It->second.equals(V))
      return false;
    ++It;
  }
  return true;
}

Value arraySelect(const Value &Arr, int64_t Index) {
  const ArrayData &Data = Arr.array();
  auto It = Data.Entries.find(Index);
  if (It != Data.Entries.end())
    return It->second;
  return defaultValue(Data.ElemTy);
}

Value arrayStore(const Value &Arr, int64_t Index, const Value &Elem) {
  auto NewData = std::make_shared<ArrayData>(Arr.array());
  if (Elem.equals(defaultValue(NewData->ElemTy)))
    NewData->Entries.erase(Index);
  else
    NewData->Entries[Index] = Elem;
  return Value::ofArray(std::move(NewData));
}

/// Control status flowing out of statement execution.
enum class Flow { Next, Returned, Halt };

class Interp {
public:
  Interp(const AstContext &Ctx, const Program &Prog, const EvalOptions &Opts)
      : Ctx(Ctx), Prog(Prog), Opts(Opts), Gen(Opts.Seed) {}

  EvalResult run(Symbol Entry) {
    for (const VarDecl &G : Prog.Globals)
      Globals[G.Name] = nondet(G.Ty);
    const Procedure *P = Prog.findProc(Entry);
    assert(P && "unknown entry procedure");
    std::vector<Value> NoArgs;
    std::vector<Value> Rets;
    callProc(*P, NoArgs, Rets);
    return Result;
  }

private:
  using Env = std::unordered_map<Symbol, Value>;

  /// Draws a fresh nondeterministic value of type \p Ty. Arrays start at the
  /// default (all zero) contents — one valid concretization of "unconstrained"
  /// for the bug-direction oracle.
  Value nondet(const Type *Ty) {
    if (Ty->isInt())
      return Value::ofInt(Gen.range(Opts.IntLo, Opts.IntHi));
    if (Ty->isBool())
      return Value::ofBool(Gen.chance(1, 2));
    if (Ty->isBv()) {
      // Bias toward small values (like the int draw) but cover the width.
      uint64_t V = Gen.chance(3, 4)
                       ? static_cast<uint64_t>(Gen.range(0, 8))
                       : Gen.next();
      return Value::ofInt(static_cast<int64_t>(V & bvMask(Ty->bvWidth())));
    }
    return defaultValue(Ty);
  }

  Value *lookup(Symbol Name) {
    if (!Frames.empty()) {
      auto It = Frames.back().find(Name);
      if (It != Frames.back().end())
        return &It->second;
    }
    auto It = Globals.find(Name);
    if (It != Globals.end())
      return &It->second;
    return nullptr;
  }

  bool spendFuel() {
    if (Steps++ < Opts.MaxSteps)
      return true;
    Result.Outcome = EvalOutcome::OutOfFuel;
    return false;
  }

  Value eval(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Value::ofInt(E->intValue());
    case ExprKind::BoolLit:
      return Value::ofBool(E->boolValue());
    case ExprKind::Var: {
      Value *V = lookup(E->var());
      assert(V && "unbound variable at runtime");
      return *V;
    }
    case ExprKind::Unary: {
      Value Sub = eval(E->op0());
      if (E->unOp() == UnOp::Not)
        return Value::ofBool(!Sub.asBool());
      if (E->type() && E->type()->isBv()) {
        uint64_t Mask = bvMask(E->type()->bvWidth());
        uint64_t V = static_cast<uint64_t>(Sub.asInt());
        return Value::ofInt(static_cast<int64_t>((~V + 1) & Mask));
      }
      return Value::ofInt(-Sub.asInt());
    }
    case ExprKind::Binary:
      return evalBinary(E);
    case ExprKind::Ite:
      return eval(E->op0()).asBool() ? eval(E->op1()) : eval(E->op2());
    case ExprKind::Select:
      return arraySelect(eval(E->op0()), eval(E->op1()).asInt());
    case ExprKind::Store:
      return arrayStore(eval(E->op0()), eval(E->op1()).asInt(),
                        eval(E->op2()));
    }
    return Value();
  }

  Value evalBinary(const Expr *E) {
    BinOp Op = E->binOp();
    // Short-circuit the lazy connectives first.
    if (Op == BinOp::And) {
      Value L = eval(E->op0());
      return L.asBool() ? eval(E->op1()) : Value::ofBool(false);
    }
    if (Op == BinOp::Or) {
      Value L = eval(E->op0());
      return L.asBool() ? Value::ofBool(true) : eval(E->op1());
    }
    if (Op == BinOp::Implies) {
      Value L = eval(E->op0());
      return L.asBool() ? eval(E->op1()) : Value::ofBool(true);
    }
    Value L = eval(E->op0());
    Value R = eval(E->op1());
    // Bitvector operands: modular arithmetic and unsigned comparisons,
    // matching SMT-LIB (bvudiv x 0 = all ones, bvurem x 0 = x).
    if (const Type *OpTy = E->op0()->type(); OpTy && OpTy->isBv()) {
      uint64_t Mask = bvMask(OpTy->bvWidth());
      uint64_t A = static_cast<uint64_t>(L.asInt()) & Mask;
      uint64_t B = static_cast<uint64_t>(R.asInt()) & Mask;
      auto Wrap = [&](uint64_t V) {
        return Value::ofInt(static_cast<int64_t>(V & Mask));
      };
      switch (Op) {
      case BinOp::Add:
        return Wrap(A + B);
      case BinOp::Sub:
        return Wrap(A - B);
      case BinOp::Mul:
        return Wrap(A * B);
      case BinOp::Div:
        return Wrap(B == 0 ? Mask : A / B);
      case BinOp::Mod:
        return Wrap(B == 0 ? A : A % B);
      case BinOp::Eq:
        return Value::ofBool(A == B);
      case BinOp::Ne:
        return Value::ofBool(A != B);
      case BinOp::Lt:
        return Value::ofBool(A < B);
      case BinOp::Le:
        return Value::ofBool(A <= B);
      case BinOp::Gt:
        return Value::ofBool(A > B);
      case BinOp::Ge:
        return Value::ofBool(A >= B);
      default:
        break;
      }
    }
    switch (Op) {
    case BinOp::Add:
      return Value::ofInt(L.asInt() + R.asInt());
    case BinOp::Sub:
      return Value::ofInt(L.asInt() - R.asInt());
    case BinOp::Mul:
      return Value::ofInt(L.asInt() * R.asInt());
    case BinOp::Div:
      return Value::ofInt(euclideanDiv(L.asInt(), R.asInt()));
    case BinOp::Mod:
      return Value::ofInt(euclideanMod(L.asInt(), R.asInt()));
    case BinOp::Eq:
      return Value::ofBool(L.equals(R));
    case BinOp::Ne:
      return Value::ofBool(!L.equals(R));
    case BinOp::Lt:
      return Value::ofBool(L.asInt() < R.asInt());
    case BinOp::Le:
      return Value::ofBool(L.asInt() <= R.asInt());
    case BinOp::Gt:
      return Value::ofBool(L.asInt() > R.asInt());
    case BinOp::Ge:
      return Value::ofBool(L.asInt() >= R.asInt());
    case BinOp::Iff:
      return Value::ofBool(L.asBool() == R.asBool());
    default:
      break;
    }
    assert(false && "handled above");
    return Value();
  }

  /// SMT-LIB semantics: the remainder is non-negative; x div 0 and x mod 0
  /// are uninterpreted in SMT — we pick 0 so the oracle stays total. Engines
  /// and the oracle agree only on runs with nonzero divisors; the workload
  /// generators never emit division by a possibly-zero expression.
  static int64_t euclideanDiv(int64_t A, int64_t B) {
    if (B == 0)
      return 0;
    // q such that A == q*B + r with r in [0, |B|).
    return (A - euclideanMod(A, B)) / B;
  }

  static int64_t euclideanMod(int64_t A, int64_t B) {
    if (B == 0)
      return 0;
    int64_t R = A % B;
    if (R < 0)
      R += (B > 0) ? B : -B;
    return R;
  }

  Flow execBlock(const std::vector<const Stmt *> &Block) {
    for (const Stmt *S : Block) {
      Flow F = exec(S);
      if (F != Flow::Next)
        return F;
    }
    return Flow::Next;
  }

  Flow exec(const Stmt *S) {
    if (!spendFuel())
      return Flow::Halt;
    switch (S->kind()) {
    case StmtKind::Assign: {
      Value V = eval(S->assignValue());
      Value *Slot = lookup(S->assignTarget());
      assert(Slot && "assignment to unbound variable");
      *Slot = V;
      return Flow::Next;
    }
    case StmtKind::Havoc: {
      for (Symbol Var : S->havocVars()) {
        Value *Slot = lookup(Var);
        assert(Slot && "havoc of unbound variable");
        *Slot = nondet(typeOf(Var));
      }
      return Flow::Next;
    }
    case StmtKind::Assume:
      if (!eval(S->condition()).asBool()) {
        Result.Outcome = EvalOutcome::Blocked;
        return Flow::Halt;
      }
      return Flow::Next;
    case StmtKind::Assert:
      if (!eval(S->condition()).asBool()) {
        Result.Outcome = EvalOutcome::AssertFailed;
        Result.FailedAssertLoc = S->loc();
        return Flow::Halt;
      }
      return Flow::Next;
    case StmtKind::Call:
      return execCall(S);
    case StmtKind::If: {
      bool TakeThen =
          S->guard() ? eval(S->guard()).asBool() : Gen.chance(1, 2);
      return execBlock(TakeThen ? S->thenBlock() : S->elseBlock());
    }
    case StmtKind::While: {
      unsigned Iterations = 0;
      for (;;) {
        if (!spendFuel())
          return Flow::Halt;
        bool Continue =
            S->guard() ? eval(S->guard()).asBool() : Gen.chance(1, 2);
        if (!Continue)
          break;
        ++Iterations;
        if (Iterations > Result.MaxLoopIterations)
          Result.MaxLoopIterations = Iterations;
        Flow F = execBlock(S->loopBody());
        if (F != Flow::Next)
          return F;
      }
      return Flow::Next;
    }
    case StmtKind::Return:
      return Flow::Returned;
    }
    return Flow::Next;
  }

  Flow execCall(const Stmt *S) {
    const Procedure *Callee = Prog.findProc(S->callee());
    assert(Callee && "call to unknown procedure");
    std::vector<Value> Args;
    Args.reserve(S->callArgs().size());
    for (const Expr *A : S->callArgs())
      Args.push_back(eval(A));

    std::vector<Value> Rets;
    if (!callProc(*Callee, Args, Rets))
      return Flow::Halt;

    const std::vector<Symbol> &Lhs = S->callLhs();
    assert(Lhs.size() == Rets.size() && "return arity mismatch");
    for (size_t I = 0; I < Lhs.size(); ++I) {
      Value *Slot = lookup(Lhs[I]);
      assert(Slot && "call lhs unbound");
      *Slot = Rets[I];
    }
    return Flow::Next;
  }

  /// Runs \p P; returns false when the whole evaluation halted (assert
  /// failure, blocked assume, out of fuel).
  bool callProc(const Procedure &P, const std::vector<Value> &Args,
                std::vector<Value> &Rets) {
    assert(Args.size() == P.Params.size() && "argument arity mismatch");
    Env Frame;
    for (size_t I = 0; I < P.Params.size(); ++I)
      Frame[P.Params[I].Name] = Args[I];
    for (const VarDecl &R : P.Returns)
      Frame[R.Name] = nondet(R.Ty);
    for (const VarDecl &L : P.Locals)
      Frame[L.Name] = nondet(L.Ty);

    unsigned &Depth = RecursionDepth[P.Name];
    ++Depth;
    if (Depth > Result.MaxRecursionDepth)
      Result.MaxRecursionDepth = Depth;

    Frames.push_back(std::move(Frame));
    CurrentProc.push_back(&P);
    Flow F = execBlock(P.Body);
    bool Ok = F != Flow::Halt;
    if (Ok) {
      Rets.clear();
      for (const VarDecl &R : P.Returns)
        Rets.push_back(Frames.back()[R.Name]);
    }
    CurrentProc.pop_back();
    Frames.pop_back();
    --Depth;
    return Ok;
  }

  /// Declared type of \p Name in the innermost scope that binds it.
  const Type *typeOf(Symbol Name) const {
    if (!CurrentProc.empty()) {
      const Procedure &P = *CurrentProc.back();
      for (const auto *Decls : {&P.Params, &P.Returns, &P.Locals})
        for (const VarDecl &D : *Decls)
          if (D.Name == Name)
            return D.Ty;
    }
    for (const VarDecl &G : Prog.Globals)
      if (G.Name == Name)
        return G.Ty;
    assert(false && "type of unbound variable");
    return nullptr;
  }

  const AstContext &Ctx;
  const Program &Prog;
  const EvalOptions &Opts;
  Rng Gen;
  Env Globals;
  std::vector<Env> Frames;
  std::vector<const Procedure *> CurrentProc;
  std::unordered_map<Symbol, unsigned> RecursionDepth;
  unsigned Steps = 0;
  EvalResult Result;
};

} // namespace

EvalResult rmt::evaluate(const AstContext &Ctx, const Program &Prog,
                         Symbol Entry, const EvalOptions &Opts) {
  Interp I(Ctx, Prog, Opts);
  return I.run(Entry);
}
