//===- Eval.h - Concrete reference interpreter ------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small-step concrete interpreter over the structured AST. It resolves
/// every source of nondeterminism (initial globals, locals, havoc, `*`
/// guards) from a seeded RNG and reports whether the run violated an
/// assertion, got blocked by an assume, or completed.
///
/// This is the differential-testing oracle: any concretely failing run whose
/// loop iteration counts and recursion depth fit inside the engines' bound R
/// must make every engine (eager / SI / DI, any merging strategy) report the
/// bug; and when an engine proves an instance safe, no seed may produce a
/// failing run within the bound.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_EVAL_H
#define RMT_AST_EVAL_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"

#include <cstdint>

namespace rmt {

/// Knobs for one interpreter run.
struct EvalOptions {
  uint64_t Seed = 0;
  /// Statement budget; exceeding it yields Outcome OutOfFuel.
  unsigned MaxSteps = 200000;
  /// Nondeterministic integers are drawn uniformly from [IntLo, IntHi].
  int64_t IntLo = -8;
  int64_t IntHi = 8;
};

/// Terminal state of an interpreter run.
enum class EvalOutcome {
  Completed,    ///< entry procedure returned, all assertions held
  AssertFailed, ///< some assertion evaluated to false
  Blocked,      ///< an assume evaluated to false (the run "does not exist")
  OutOfFuel,    ///< exceeded MaxSteps
};

/// Result of one interpreter run, including the bound profile of the trace.
struct EvalResult {
  EvalOutcome Outcome = EvalOutcome::Completed;
  /// Largest iteration count any single entry into a loop performed.
  unsigned MaxLoopIterations = 0;
  /// Largest number of frames of the same procedure simultaneously on the
  /// call stack (1 = no recursion observed).
  unsigned MaxRecursionDepth = 0;
  /// Location of the violated assertion, when Outcome == AssertFailed.
  SrcLoc FailedAssertLoc;
};

/// Runs \p Entry of \p Prog once under \p Opts. The program must be resolved
/// and type-checked (all expressions typed).
EvalResult evaluate(const AstContext &Ctx, const Program &Prog, Symbol Entry,
                    const EvalOptions &Opts);

} // namespace rmt

#endif // RMT_AST_EVAL_H
