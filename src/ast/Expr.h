//===- Expr.h - Expressions -------------------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes. Expressions are immutable, arena-allocated in an
/// AstContext, and carry their type after checking (expressions built through
/// the typed AstContext builder API are typed at construction).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_EXPR_H
#define RMT_AST_EXPR_H

#include "ast/Ops.h"
#include "ast/Type.h"
#include "support/Diag.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>

namespace rmt {

/// Discriminator for Expr.
enum class ExprKind {
  IntLit,
  BoolLit,
  Var,
  Unary,
  Binary,
  Ite,
  Select, ///< array read  a[i]
  Store,  ///< array write a[i := v], a functional update
};

/// An immutable expression tree node.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SrcLoc loc() const { return Loc; }

  /// Type of this expression; null until resolved/checked.
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  // IntLit / BoolLit.
  int64_t intValue() const {
    assert(Kind == ExprKind::IntLit && "not an int literal");
    return Int;
  }
  bool boolValue() const {
    assert(Kind == ExprKind::BoolLit && "not a bool literal");
    return Int != 0;
  }

  // Var.
  Symbol var() const {
    assert(Kind == ExprKind::Var && "not a variable");
    return Name;
  }

  // Unary.
  UnOp unOp() const {
    assert(Kind == ExprKind::Unary && "not a unary expr");
    return Un;
  }

  // Binary.
  BinOp binOp() const {
    assert(Kind == ExprKind::Binary && "not a binary expr");
    return Bin;
  }

  /// Operand accessors. Meaning depends on kind:
  ///  Unary: op0;  Binary: op0, op1;  Ite: cond=op0, then=op1, else=op2;
  ///  Select: array=op0, index=op1;  Store: array=op0, index=op1, value=op2.
  const Expr *op0() const { return Ops[0]; }
  const Expr *op1() const { return Ops[1]; }
  const Expr *op2() const { return Ops[2]; }

  unsigned numOps() const;

private:
  friend class AstContext;
  Expr(ExprKind Kind, SrcLoc Loc) : Kind(Kind), Loc(Loc) {}

  ExprKind Kind;
  SrcLoc Loc;
  const Type *Ty = nullptr;
  int64_t Int = 0;
  Symbol Name;
  UnOp Un = UnOp::Not;
  BinOp Bin = BinOp::Add;
  const Expr *Ops[3] = {nullptr, nullptr, nullptr};
};

} // namespace rmt

#endif // RMT_AST_EXPR_H
