//===- Type.h - Types of the mini-Boogie language ---------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types for the surface language: mathematical integers, booleans and
/// Boogie-style map/array types ([T]T). The paper's implementation "handles
/// all types and expressions supported by existing SMT solvers"; int, bool
/// and arrays cover every construct its examples and evaluation need.
///
/// Types are hash-consed inside AstContext, so `const Type *` equality is
/// structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_TYPE_H
#define RMT_AST_TYPE_H

#include <cassert>
#include <string>

namespace rmt {

/// Discriminator for Type.
enum class TypeKind { Int, Bool, Bv, Array };

/// A uniqued type. Obtain instances through AstContext; never construct
/// directly.
class Type {
public:
  TypeKind kind() const { return Kind; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isBv() const { return Kind == TypeKind::Bv; }
  bool isArray() const { return Kind == TypeKind::Array; }

  /// Width of a bitvector type (1..64).
  unsigned bvWidth() const {
    assert(isBv() && "not a bitvector type");
    return Width;
  }

  /// Index type of an array type.
  const Type *indexType() const {
    assert(isArray() && "not an array type");
    return Index;
  }
  /// Element type of an array type.
  const Type *elementType() const {
    assert(isArray() && "not an array type");
    return Element;
  }

  /// Renders like the surface syntax: `int`, `bool`, `[int]bool`.
  std::string str() const;

private:
  friend class AstContext;
  Type(TypeKind Kind, const Type *Index, const Type *Element,
       unsigned Width = 0)
      : Kind(Kind), Index(Index), Element(Element), Width(Width) {}

  TypeKind Kind;
  const Type *Index;
  const Type *Element;
  unsigned Width;
};

} // namespace rmt

#endif // RMT_AST_TYPE_H
