//===- Ast.cpp - Out-of-line AST helpers ------------------------------------===//

#include "ast/Expr.h"
#include "ast/Ops.h"
#include "ast/Type.h"

using namespace rmt;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Bv:
    return "bv" + std::to_string(Width);
  case TypeKind::Array:
    return "[" + Index->str() + "]" + Element->str();
  }
  return "<bad-type>";
}

unsigned Expr::numOps() const {
  switch (Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::Var:
    return 0;
  case ExprKind::Unary:
    return 1;
  case ExprKind::Binary:
  case ExprKind::Select:
    return 2;
  case ExprKind::Ite:
  case ExprKind::Store:
    return 3;
  }
  return 0;
}

const char *rmt::spelling(UnOp Op) {
  switch (Op) {
  case UnOp::Not:
    return "!";
  case UnOp::Neg:
    return "-";
  }
  return "?";
}

const char *rmt::spelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "div";
  case BinOp::Mod:
    return "mod";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  case BinOp::Implies:
    return "==>";
  case BinOp::Iff:
    return "<==>";
  }
  return "?";
}
