//===- Ops.h - Operator enums -----------------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unary and binary operators shared by the AST, the evaluator, the type
/// checker and the SMT term layer.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_OPS_H
#define RMT_AST_OPS_H

namespace rmt {

/// Unary operators.
enum class UnOp {
  Not, ///< boolean negation
  Neg, ///< integer negation
};

/// Binary operators.
enum class BinOp {
  // int x int -> int
  Add,
  Sub,
  Mul,
  Div, ///< Euclidean division, SMT-LIB `div`
  Mod, ///< Euclidean remainder, SMT-LIB `mod`
  // T x T -> bool
  Eq,
  Ne,
  // int x int -> bool
  Lt,
  Le,
  Gt,
  Ge,
  // bool x bool -> bool
  And,
  Or,
  Implies,
  Iff,
};

/// True for operators whose operands are integers.
inline bool isArithOp(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

/// True for operators producing a boolean.
inline bool isPredicateOp(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
    return false;
  default:
    return true;
  }
}

/// True for the boolean connectives.
inline bool isLogicalOp(BinOp Op) {
  switch (Op) {
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Implies:
  case BinOp::Iff:
    return true;
  default:
    return false;
  }
}

/// Surface-syntax spelling of \p Op.
const char *spelling(UnOp Op);
/// Surface-syntax spelling of \p Op.
const char *spelling(BinOp Op);

} // namespace rmt

#endif // RMT_AST_OPS_H
