//===- Stmt.h - Statements, procedures, programs ----------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured statements of the surface language, plus Procedure and Program.
/// The bounding pipeline (src/transform) rewrites these into a loop-free,
/// recursion-free program; src/cfg then lowers that into the paper's label
/// form (Fig. 7).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_STMT_H
#define RMT_AST_STMT_H

#include "ast/Expr.h"

#include <vector>

namespace rmt {

/// Discriminator for Stmt.
enum class StmtKind {
  Assign, ///< v := e
  Havoc,  ///< havoc v1, ..., vn
  Assume, ///< assume e
  Assert, ///< assert e
  Call,   ///< call r1, ..., rm := p(e1, ..., en)
  If,     ///< if (e | *) { .. } else { .. }
  While,  ///< while (e | *) { .. }
  Return, ///< return (early exit from the procedure)
};

/// A structured statement. Arena-allocated in an AstContext; a Stmt's child
/// blocks are stored inline.
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SrcLoc loc() const { return Loc; }

  // Assign.
  Symbol assignTarget() const {
    assert(Kind == StmtKind::Assign && "not an assignment");
    return Callee;
  }
  const Expr *assignValue() const {
    assert(Kind == StmtKind::Assign && "not an assignment");
    return Cond;
  }

  // Havoc.
  const std::vector<Symbol> &havocVars() const {
    assert(Kind == StmtKind::Havoc && "not a havoc");
    return Lhs;
  }

  // Assume / Assert.
  const Expr *condition() const {
    assert((Kind == StmtKind::Assume || Kind == StmtKind::Assert) &&
           "not an assume/assert");
    return Cond;
  }

  // Call.
  Symbol callee() const {
    assert(Kind == StmtKind::Call && "not a call");
    return Callee;
  }
  const std::vector<const Expr *> &callArgs() const {
    assert(Kind == StmtKind::Call && "not a call");
    return Args;
  }
  const std::vector<Symbol> &callLhs() const {
    assert(Kind == StmtKind::Call && "not a call");
    return Lhs;
  }

  // If / While. A null guard means a nondeterministic `*` condition.
  const Expr *guard() const {
    assert((Kind == StmtKind::If || Kind == StmtKind::While) &&
           "not a branch/loop");
    return Cond;
  }
  const std::vector<const Stmt *> &thenBlock() const {
    assert((Kind == StmtKind::If || Kind == StmtKind::While) &&
           "not a branch/loop");
    return Then;
  }
  const std::vector<const Stmt *> &elseBlock() const {
    assert(Kind == StmtKind::If && "not a branch");
    return Else;
  }
  const std::vector<const Stmt *> &loopBody() const {
    assert(Kind == StmtKind::While && "not a loop");
    return Then;
  }

private:
  friend class AstContext;
  Stmt(StmtKind Kind, SrcLoc Loc) : Kind(Kind), Loc(Loc) {}

  StmtKind Kind;
  SrcLoc Loc;
  const Expr *Cond = nullptr;  // assign rhs / assume / assert / guard
  Symbol Callee;               // assign lhs / call target
  std::vector<Symbol> Lhs;     // call lhs / havoc vars
  std::vector<const Expr *> Args;
  std::vector<const Stmt *> Then;
  std::vector<const Stmt *> Else;
};

/// A named, typed variable declaration (global, local, or parameter).
struct VarDecl {
  Symbol Name;
  const Type *Ty = nullptr;
  SrcLoc Loc;
};

/// A procedure: parameters, return variables, locals, and a structured body.
struct Procedure {
  Symbol Name;
  std::vector<VarDecl> Params;
  std::vector<VarDecl> Returns;
  std::vector<VarDecl> Locals;
  std::vector<const Stmt *> Body;
  SrcLoc Loc;
};

/// A whole program. Does not own its nodes; the AstContext passed around with
/// it does.
struct Program {
  std::vector<VarDecl> Globals;
  std::vector<Procedure> Procedures;

  /// Returns the procedure named \p Name or null.
  const Procedure *findProc(Symbol Name) const {
    for (const Procedure &P : Procedures)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }
  Procedure *findProc(Symbol Name) {
    for (Procedure &P : Procedures)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }
};

} // namespace rmt

#endif // RMT_AST_STMT_H
