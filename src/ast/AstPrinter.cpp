//===- AstPrinter.cpp -----------------------------------------------------===//

#include "ast/AstPrinter.h"

using namespace rmt;

namespace {

/// Binding strength; larger binds tighter.
unsigned precedence(BinOp Op) {
  switch (Op) {
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
    return 70;
  case BinOp::Add:
  case BinOp::Sub:
    return 60;
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return 50;
  case BinOp::And:
    return 40;
  case BinOp::Or:
    return 30;
  case BinOp::Implies:
    return 20;
  case BinOp::Iff:
    return 10;
  }
  return 0;
}

class ExprPrinter {
public:
  explicit ExprPrinter(const AstContext &Ctx) : Ctx(Ctx) {}

  /// \p MinPrec: parenthesize if this node binds looser than MinPrec.
  std::string print(const Expr *E, unsigned MinPrec) {
    switch (E->kind()) {
    case ExprKind::IntLit: {
      if (E->type() && E->type()->isBv())
        return std::to_string(static_cast<uint64_t>(E->intValue())) + "bv" +
               std::to_string(E->type()->bvWidth());
      int64_t V = E->intValue();
      if (V < 0)
        return "(" + std::to_string(V) + ")";
      return std::to_string(V);
    }
    case ExprKind::BoolLit:
      return E->boolValue() ? "true" : "false";
    case ExprKind::Var:
      return Ctx.name(E->var());
    case ExprKind::Unary: {
      // Canonicalize literal negation chains to one literal: the parser
      // folds `-<lit>`, so printing Neg^k(IntLit n) as the folded literal
      // keeps print∘parse a fixpoint for any AST.
      if (E->unOp() == UnOp::Neg) {
        const Expr *Leaf = E->op0();
        int Sign = -1;
        while (Leaf->kind() == ExprKind::Unary &&
               Leaf->unOp() == UnOp::Neg) {
          Sign = -Sign;
          Leaf = Leaf->op0();
        }
        if (Leaf->kind() == ExprKind::IntLit) {
          int64_t V = Sign * Leaf->intValue();
          if (V < 0)
            return "(" + std::to_string(V) + ")";
          return std::to_string(V);
        }
      }
      std::string Sub = print(E->op0(), 100);
      // Avoid `--x`, which would lex as two minus tokens.
      if (E->unOp() == UnOp::Neg && !Sub.empty() && Sub[0] == '-')
        Sub = "(" + Sub + ")";
      return std::string(spelling(E->unOp())) + Sub;
    }
    case ExprKind::Binary: {
      unsigned P = precedence(E->binOp());
      // Children of a binary node must bind strictly tighter on the right
      // and at least as tight on the left (all our ops associate left except
      // ==>, printed fully parenthesized on nesting for clarity).
      std::string S = print(E->op0(), P) + " " + spelling(E->binOp()) + " " +
                      print(E->op1(), P + 1);
      if (P < MinPrec)
        return "(" + S + ")";
      return S;
    }
    case ExprKind::Ite: {
      std::string S = "if " + print(E->op0(), 0) + " then " +
                      print(E->op1(), 0) + " else " + print(E->op2(), 0);
      return "(" + S + ")";
    }
    case ExprKind::Select:
      return print(E->op0(), 100) + "[" + print(E->op1(), 0) + "]";
    case ExprKind::Store:
      return print(E->op0(), 100) + "[" + print(E->op1(), 0) +
             " := " + print(E->op2(), 0) + "]";
    }
    return "<bad-expr>";
  }

private:
  const AstContext &Ctx;
};

std::string indentStr(unsigned Indent) { return std::string(Indent, ' '); }

void printBlock(const AstContext &Ctx, const std::vector<const Stmt *> &Block,
                unsigned Indent, std::string &Out);

void printStmtInto(const AstContext &Ctx, const Stmt *S, unsigned Indent,
                   std::string &Out) {
  std::string Pad = indentStr(Indent);
  switch (S->kind()) {
  case StmtKind::Assign:
    Out += Pad + Ctx.name(S->assignTarget()) +
           " := " + printExpr(Ctx, S->assignValue()) + ";\n";
    return;
  case StmtKind::Havoc: {
    Out += Pad + "havoc ";
    const auto &Vars = S->havocVars();
    for (size_t I = 0; I < Vars.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Ctx.name(Vars[I]);
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Assume:
    Out += Pad + "assume " + printExpr(Ctx, S->condition()) + ";\n";
    return;
  case StmtKind::Assert:
    Out += Pad + "assert " + printExpr(Ctx, S->condition()) + ";\n";
    return;
  case StmtKind::Call: {
    Out += Pad + "call ";
    const auto &Lhs = S->callLhs();
    for (size_t I = 0; I < Lhs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Ctx.name(Lhs[I]);
    }
    if (!Lhs.empty())
      Out += " := ";
    Out += Ctx.name(S->callee()) + "(";
    const auto &Args = S->callArgs();
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(Ctx, Args[I]);
    }
    Out += ");\n";
    return;
  }
  case StmtKind::If: {
    Out += Pad + "if (";
    Out += S->guard() ? printExpr(Ctx, S->guard()) : "*";
    Out += ") {\n";
    printBlock(Ctx, S->thenBlock(), Indent + 2, Out);
    Out += Pad + "}";
    if (!S->elseBlock().empty()) {
      Out += " else {\n";
      printBlock(Ctx, S->elseBlock(), Indent + 2, Out);
      Out += Pad + "}";
    }
    Out += "\n";
    return;
  }
  case StmtKind::While: {
    Out += Pad + "while (";
    Out += S->guard() ? printExpr(Ctx, S->guard()) : "*";
    Out += ") {\n";
    printBlock(Ctx, S->loopBody(), Indent + 2, Out);
    Out += Pad + "}\n";
    return;
  }
  case StmtKind::Return:
    Out += Pad + "return;\n";
    return;
  }
}

void printBlock(const AstContext &Ctx, const std::vector<const Stmt *> &Block,
                unsigned Indent, std::string &Out) {
  for (const Stmt *S : Block)
    printStmtInto(Ctx, S, Indent, Out);
}

void printVarDecls(const AstContext &Ctx, const std::vector<VarDecl> &Decls,
                   std::string &Out, const char *Separator) {
  for (size_t I = 0; I < Decls.size(); ++I) {
    if (I)
      Out += Separator;
    Out += Ctx.name(Decls[I].Name) + ": " + Decls[I].Ty->str();
  }
}

} // namespace

std::string rmt::printExpr(const AstContext &Ctx, const Expr *E) {
  return ExprPrinter(Ctx).print(E, 0);
}

std::string rmt::printStmt(const AstContext &Ctx, const Stmt *S,
                           unsigned Indent) {
  std::string Out;
  printStmtInto(Ctx, S, Indent, Out);
  return Out;
}

std::string rmt::printProc(const AstContext &Ctx, const Procedure &P) {
  std::string Out = "procedure " + Ctx.name(P.Name) + "(";
  printVarDecls(Ctx, P.Params, Out, ", ");
  Out += ")";
  if (!P.Returns.empty()) {
    Out += " returns (";
    printVarDecls(Ctx, P.Returns, Out, ", ");
    Out += ")";
  }
  Out += " {\n";
  for (const VarDecl &L : P.Locals)
    Out += "  var " + Ctx.name(L.Name) + ": " + L.Ty->str() + ";\n";
  printBlock(Ctx, P.Body, 2, Out);
  Out += "}\n";
  return Out;
}

std::string rmt::printProgram(const AstContext &Ctx, const Program &Prog) {
  std::string Out;
  for (const VarDecl &G : Prog.Globals)
    Out += "var " + Ctx.name(G.Name) + ": " + G.Ty->str() + ";\n";
  if (!Prog.Globals.empty())
    Out += "\n";
  for (size_t I = 0; I < Prog.Procedures.size(); ++I) {
    if (I)
      Out += "\n";
    Out += printProc(Ctx, Prog.Procedures[I]);
  }
  return Out;
}
