//===- AstPrinter.h - Surface-syntax pretty printer -------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders AST nodes back into `.hbpl` surface syntax. The printer's output
/// re-parses to a structurally identical program (round-trip tested), which
/// lets generated workloads be dumped, inspected and stored as text.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_ASTPRINTER_H
#define RMT_AST_ASTPRINTER_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"

#include <string>

namespace rmt {

/// Renders \p E with minimal parentheses.
std::string printExpr(const AstContext &Ctx, const Expr *E);

/// Renders a single statement subtree at \p Indent spaces.
std::string printStmt(const AstContext &Ctx, const Stmt *S,
                      unsigned Indent = 0);

/// Renders a whole procedure.
std::string printProc(const AstContext &Ctx, const Procedure &P);

/// Renders a whole program in parseable `.hbpl` syntax.
std::string printProgram(const AstContext &Ctx, const Program &Prog);

} // namespace rmt

#endif // RMT_AST_ASTPRINTER_H
