//===- AstContext.h - Arena and builders for the AST ------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AstContext owns every AST node (types, expressions, statements) and the
/// identifier interner. It exposes two builder layers:
///
///  * untyped builders (used by the parser; the type checker fills types in),
///  * typed builders (used by transforms, workload generators and the public
///    embedding API; they compute and assert result types eagerly).
///
//===----------------------------------------------------------------------===//

#ifndef RMT_AST_ASTCONTEXT_H
#define RMT_AST_ASTCONTEXT_H

#include "ast/Expr.h"
#include "ast/Stmt.h"
#include "support/StringInterner.h"

#include <deque>
#include <map>

namespace rmt {

/// Owns AST storage; passed by reference alongside Program.
class AstContext {
public:
  AstContext();
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

  /// Shorthand: intern an identifier.
  Symbol sym(std::string_view Name) { return Interner.intern(Name); }
  /// Shorthand: spelling of an interned identifier.
  const std::string &name(Symbol S) const { return Interner.str(S); }

  // --- Types (hash-consed) -------------------------------------------------
  const Type *intType() const { return IntTy; }
  const Type *boolType() const { return BoolTy; }
  /// Fixed-width bitvector type; \p Width in [1, 64].
  const Type *bvType(unsigned Width);
  const Type *arrayType(const Type *Index, const Type *Element);

  // --- Untyped expression builders (parser) --------------------------------
  Expr *intLit(int64_t Value, SrcLoc Loc = {});
  Expr *boolLit(bool Value, SrcLoc Loc = {});
  Expr *varRef(Symbol Name, SrcLoc Loc = {});
  Expr *unary(UnOp Op, const Expr *E, SrcLoc Loc = {});
  Expr *binary(BinOp Op, const Expr *L, const Expr *R, SrcLoc Loc = {});
  Expr *ite(const Expr *C, const Expr *T, const Expr *E, SrcLoc Loc = {});
  Expr *select(const Expr *Array, const Expr *Index, SrcLoc Loc = {});
  Expr *store(const Expr *Array, const Expr *Index, const Expr *Value,
              SrcLoc Loc = {});

  // --- Typed expression builders (transforms / API) ------------------------
  // These require operand types to be present and set the result type.
  const Expr *tInt(int64_t Value);
  const Expr *tBool(bool Value);
  /// Bitvector literal \p Value (truncated to \p Width bits).
  const Expr *tBv(uint64_t Value, unsigned Width);
  const Expr *tVar(Symbol Name, const Type *Ty);
  const Expr *tUnary(UnOp Op, const Expr *E);
  const Expr *tBinary(BinOp Op, const Expr *L, const Expr *R);
  const Expr *tIte(const Expr *C, const Expr *T, const Expr *E);
  const Expr *tSelect(const Expr *Array, const Expr *Index);
  const Expr *tStore(const Expr *Array, const Expr *Index, const Expr *Value);
  /// Conjunction of \p Terms; true() when empty.
  const Expr *tAnd(const std::vector<const Expr *> &Terms);

  // --- Statement builders ---------------------------------------------------
  Stmt *assign(Symbol Target, const Expr *Value, SrcLoc Loc = {});
  Stmt *havoc(std::vector<Symbol> Vars, SrcLoc Loc = {});
  Stmt *assume(const Expr *Cond, SrcLoc Loc = {});
  Stmt *assertStmt(const Expr *Cond, SrcLoc Loc = {});
  Stmt *call(Symbol Callee, std::vector<const Expr *> Args,
             std::vector<Symbol> Lhs, SrcLoc Loc = {});
  Stmt *ifStmt(const Expr *GuardOrNull, std::vector<const Stmt *> Then,
               std::vector<const Stmt *> Else, SrcLoc Loc = {});
  Stmt *whileStmt(const Expr *GuardOrNull, std::vector<const Stmt *> Body,
                  SrcLoc Loc = {});
  Stmt *returnStmt(SrcLoc Loc = {});

  size_t numExprs() const { return Exprs.size(); }
  size_t numStmts() const { return Stmts.size(); }

private:
  Expr *newExpr(ExprKind Kind, SrcLoc Loc);
  Stmt *newStmt(StmtKind Kind, SrcLoc Loc);

  StringInterner Interner;
  std::deque<Expr> Exprs;
  std::deque<Stmt> Stmts;
  std::deque<Type> Types;
  const Type *IntTy;
  const Type *BoolTy;
  std::map<unsigned, const Type *> BvTypes;
  std::map<std::pair<const Type *, const Type *>, const Type *> ArrayTypes;
};

} // namespace rmt

#endif // RMT_AST_ASTCONTEXT_H
