//===- AstContext.cpp -----------------------------------------------------===//

#include "ast/AstContext.h"

using namespace rmt;

AstContext::AstContext() {
  Types.push_back(Type(TypeKind::Int, nullptr, nullptr));
  IntTy = &Types.back();
  Types.push_back(Type(TypeKind::Bool, nullptr, nullptr));
  BoolTy = &Types.back();
}

const Type *AstContext::bvType(unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "supported bitvector widths: 1..64");
  auto It = BvTypes.find(Width);
  if (It != BvTypes.end())
    return It->second;
  Types.push_back(Type(TypeKind::Bv, nullptr, nullptr, Width));
  const Type *T = &Types.back();
  BvTypes.emplace(Width, T);
  return T;
}

const Type *AstContext::arrayType(const Type *Index, const Type *Element) {
  assert(Index && Element && "array type needs both components");
  auto Key = std::make_pair(Index, Element);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  Types.push_back(Type(TypeKind::Array, Index, Element));
  const Type *T = &Types.back();
  ArrayTypes.emplace(Key, T);
  return T;
}

Expr *AstContext::newExpr(ExprKind Kind, SrcLoc Loc) {
  Exprs.push_back(Expr(Kind, Loc));
  return &Exprs.back();
}

Stmt *AstContext::newStmt(StmtKind Kind, SrcLoc Loc) {
  Stmts.push_back(Stmt(Kind, Loc));
  return &Stmts.back();
}

//===----------------------------------------------------------------------===//
// Untyped expression builders
//===----------------------------------------------------------------------===//

Expr *AstContext::intLit(int64_t Value, SrcLoc Loc) {
  Expr *E = newExpr(ExprKind::IntLit, Loc);
  E->Int = Value;
  return E;
}

Expr *AstContext::boolLit(bool Value, SrcLoc Loc) {
  Expr *E = newExpr(ExprKind::BoolLit, Loc);
  E->Int = Value ? 1 : 0;
  return E;
}

Expr *AstContext::varRef(Symbol Name, SrcLoc Loc) {
  Expr *E = newExpr(ExprKind::Var, Loc);
  E->Name = Name;
  return E;
}

Expr *AstContext::unary(UnOp Op, const Expr *Sub, SrcLoc Loc) {
  assert(Sub && "null operand");
  Expr *E = newExpr(ExprKind::Unary, Loc);
  E->Un = Op;
  E->Ops[0] = Sub;
  return E;
}

Expr *AstContext::binary(BinOp Op, const Expr *L, const Expr *R, SrcLoc Loc) {
  assert(L && R && "null operand");
  Expr *E = newExpr(ExprKind::Binary, Loc);
  E->Bin = Op;
  E->Ops[0] = L;
  E->Ops[1] = R;
  return E;
}

Expr *AstContext::ite(const Expr *C, const Expr *T, const Expr *F,
                      SrcLoc Loc) {
  assert(C && T && F && "null operand");
  Expr *E = newExpr(ExprKind::Ite, Loc);
  E->Ops[0] = C;
  E->Ops[1] = T;
  E->Ops[2] = F;
  return E;
}

Expr *AstContext::select(const Expr *Array, const Expr *Index, SrcLoc Loc) {
  assert(Array && Index && "null operand");
  Expr *E = newExpr(ExprKind::Select, Loc);
  E->Ops[0] = Array;
  E->Ops[1] = Index;
  return E;
}

Expr *AstContext::store(const Expr *Array, const Expr *Index,
                        const Expr *Value, SrcLoc Loc) {
  assert(Array && Index && Value && "null operand");
  Expr *E = newExpr(ExprKind::Store, Loc);
  E->Ops[0] = Array;
  E->Ops[1] = Index;
  E->Ops[2] = Value;
  return E;
}

//===----------------------------------------------------------------------===//
// Typed expression builders
//===----------------------------------------------------------------------===//

const Expr *AstContext::tInt(int64_t Value) {
  Expr *E = intLit(Value);
  E->setType(IntTy);
  return E;
}

const Expr *AstContext::tBool(bool Value) {
  Expr *E = boolLit(Value);
  E->setType(BoolTy);
  return E;
}

const Expr *AstContext::tBv(uint64_t Value, unsigned Width) {
  const Type *Ty = bvType(Width);
  uint64_t Mask = Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  Expr *E = intLit(static_cast<int64_t>(Value & Mask));
  E->setType(Ty);
  return E;
}

const Expr *AstContext::tVar(Symbol Name, const Type *Ty) {
  assert(Ty && "typed var needs a type");
  Expr *E = varRef(Name);
  E->setType(Ty);
  return E;
}

const Expr *AstContext::tUnary(UnOp Op, const Expr *Sub) {
  assert(Sub->type() && "operand must be typed");
  Expr *E = unary(Op, Sub);
  switch (Op) {
  case UnOp::Not:
    assert(Sub->type()->isBool() && "! needs bool");
    E->setType(BoolTy);
    break;
  case UnOp::Neg:
    assert((Sub->type()->isInt() || Sub->type()->isBv()) &&
           "- needs int or bitvector");
    E->setType(Sub->type());
    break;
  }
  return E;
}

const Expr *AstContext::tBinary(BinOp Op, const Expr *L, const Expr *R) {
  assert(L->type() && R->type() && "operands must be typed");
  Expr *E = binary(Op, L, R);
  if (isArithOp(Op)) {
    assert(((L->type()->isInt() && R->type()->isInt()) ||
            (L->type()->isBv() && L->type() == R->type())) &&
           "arith needs ints or equal-width bitvectors");
    E->setType(isPredicateOp(Op) ? BoolTy : L->type());
    return E;
  }
  if (isLogicalOp(Op)) {
    assert(L->type()->isBool() && R->type()->isBool() &&
           "logic needs booleans");
    E->setType(BoolTy);
    return E;
  }
  // Eq / Ne.
  assert(L->type() == R->type() && "==/!= needs equal types");
  E->setType(BoolTy);
  return E;
}

const Expr *AstContext::tIte(const Expr *C, const Expr *T, const Expr *F) {
  assert(C->type() && C->type()->isBool() && "ite guard must be bool");
  assert(T->type() && T->type() == F->type() && "ite arms must agree");
  Expr *E = ite(C, T, F);
  E->setType(T->type());
  return E;
}

const Expr *AstContext::tSelect(const Expr *Array, const Expr *Index) {
  assert(Array->type() && Array->type()->isArray() && "select needs array");
  assert(Index->type() == Array->type()->indexType() && "index type mismatch");
  Expr *E = select(Array, Index);
  E->setType(Array->type()->elementType());
  return E;
}

const Expr *AstContext::tStore(const Expr *Array, const Expr *Index,
                               const Expr *Value) {
  assert(Array->type() && Array->type()->isArray() && "store needs array");
  assert(Index->type() == Array->type()->indexType() && "index type mismatch");
  assert(Value->type() == Array->type()->elementType() &&
         "value type mismatch");
  Expr *E = store(Array, Index, Value);
  E->setType(Array->type());
  return E;
}

const Expr *AstContext::tAnd(const std::vector<const Expr *> &Terms) {
  if (Terms.empty())
    return tBool(true);
  const Expr *Acc = Terms[0];
  for (size_t I = 1; I < Terms.size(); ++I)
    Acc = tBinary(BinOp::And, Acc, Terms[I]);
  return Acc;
}

//===----------------------------------------------------------------------===//
// Statement builders
//===----------------------------------------------------------------------===//

Stmt *AstContext::assign(Symbol Target, const Expr *Value, SrcLoc Loc) {
  assert(Value && "null rhs");
  Stmt *S = newStmt(StmtKind::Assign, Loc);
  S->Callee = Target;
  S->Cond = Value;
  return S;
}

Stmt *AstContext::havoc(std::vector<Symbol> Vars, SrcLoc Loc) {
  Stmt *S = newStmt(StmtKind::Havoc, Loc);
  S->Lhs = std::move(Vars);
  return S;
}

Stmt *AstContext::assume(const Expr *Cond, SrcLoc Loc) {
  assert(Cond && "null condition");
  Stmt *S = newStmt(StmtKind::Assume, Loc);
  S->Cond = Cond;
  return S;
}

Stmt *AstContext::assertStmt(const Expr *Cond, SrcLoc Loc) {
  assert(Cond && "null condition");
  Stmt *S = newStmt(StmtKind::Assert, Loc);
  S->Cond = Cond;
  return S;
}

Stmt *AstContext::call(Symbol Callee, std::vector<const Expr *> Args,
                       std::vector<Symbol> Lhs, SrcLoc Loc) {
  Stmt *S = newStmt(StmtKind::Call, Loc);
  S->Callee = Callee;
  S->Args = std::move(Args);
  S->Lhs = std::move(Lhs);
  return S;
}

Stmt *AstContext::ifStmt(const Expr *GuardOrNull,
                         std::vector<const Stmt *> Then,
                         std::vector<const Stmt *> Else, SrcLoc Loc) {
  Stmt *S = newStmt(StmtKind::If, Loc);
  S->Cond = GuardOrNull;
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  return S;
}

Stmt *AstContext::whileStmt(const Expr *GuardOrNull,
                            std::vector<const Stmt *> Body, SrcLoc Loc) {
  Stmt *S = newStmt(StmtKind::While, Loc);
  S->Cond = GuardOrNull;
  S->Then = std::move(Body);
  return S;
}

Stmt *AstContext::returnStmt(SrcLoc Loc) {
  return newStmt(StmtKind::Return, Loc);
}
