//===- InvariantGen.h - Invariant inference and injection -------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "+Inv" prepass of Section 4. Corral runs invariant generation and
/// injects every inferred invariant as an assume statement; we reproduce the
/// mechanism with a two-phase interval analysis over the call DAG:
///
///  phase 1 (callees first): context-insensitive exit summaries — intervals
///           for globals and returns on procedure exit;
///  phase 2: a least-fixpoint (ascending Kleene) iteration computing, at
///           once, every procedure's entry invariant (join over all call
///           contexts reachable from the root) and its *contextual* exit
///           summary. Entries and summaries are mutually dependent (a later
///           call's context uses an earlier call's summary), so the
///           iteration runs to a post-fixpoint with interval widening after
///           a few rounds to force convergence.
///
/// injectInvariants() materializes the results the way Corral consumes
/// Houdini output: each procedure's entry invariant becomes an `assume`
/// label spliced in front of its entry, and each call site gets an `assume`
/// of the callee's contextual exit summary spliced after it. The call-site
/// assumes are what prune the stratified engines' havoc summaries of *open*
/// calls — the effect Section 4 describes ("invariants can be a powerful
/// mechanism to prune search; in the limit the search can conclude
/// trivially"). Sound by construction: every interval over-approximates all
/// reachable states, so no feasible execution is excluded.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_INVARIANTGEN_H
#define RMT_ANALYSIS_INVARIANTGEN_H

#include "analysis/Interval.h"
#include "ast/AstContext.h"
#include "cfg/Cfg.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace rmt {

/// An abstract store: missing variables are top; Bottom means unreachable.
class AbsEnv {
public:
  static AbsEnv bottomEnv() {
    AbsEnv E;
    E.Bottom = true;
    return E;
  }

  bool isBottom() const { return Bottom; }

  Interval get(Symbol Var) const {
    if (Bottom)
      return Interval::bottom();
    auto It = Vals.find(Var);
    return It == Vals.end() ? Interval::top() : It->second;
  }

  /// Setting any variable to bottom collapses the whole env to bottom.
  void set(Symbol Var, const Interval &I) {
    if (Bottom)
      return;
    if (I.isBottom()) {
      Bottom = true;
      Vals.clear();
      return;
    }
    if (I.isTop())
      Vals.erase(Var);
    else
      Vals[Var] = I;
  }

  void joinWith(const AbsEnv &O);

  friend bool operator==(const AbsEnv &A, const AbsEnv &B) {
    if (A.Bottom || B.Bottom)
      return A.Bottom == B.Bottom;
    return A.Vals == B.Vals;
  }

  /// Standard interval widening of \p New against the previous iterate
  /// \p Old (requires New ⊒ Old): any bound that moved is dropped, which
  /// forces the ascending iteration to converge.
  static AbsEnv widen(const AbsEnv &Old, const AbsEnv &New);

  const std::unordered_map<Symbol, Interval> &values() const { return Vals; }

private:
  bool Bottom = false;
  std::unordered_map<Symbol, Interval> Vals;
};

/// Whole-program interval analysis results.
class IntervalAnalysis {
public:
  /// Analyzes \p Prog with \p Entry as the root context.
  IntervalAnalysis(const CfgProgram &Prog, ProcId Entry);

  /// Entry invariant of \p P: intervals of globals and parameters holding on
  /// every entry reachable from the root. Bottom when \p P is unreachable.
  const AbsEnv &entryEnv(ProcId P) const { return EntryEnvs[P]; }

  /// Context-insensitive exit summary of \p P (globals and returns).
  const AbsEnv &exitSummary(ProcId P) const { return ExitSummaries[P]; }

  /// Exit summary of \p P under its phase-2 entry invariant. Bottom when
  /// unreachable from the root.
  const AbsEnv &contextExitSummary(ProcId P) const {
    return ContextExitSummaries[P];
  }

private:
  /// Runs the intraprocedural pass over \p P with \p Entry as the entry
  /// state. Call post-states come from \p CallSummaries. When \p Record is
  /// set, call-site contexts are accumulated into EntryEnvs of the callees.
  AbsEnv analyzeProc(ProcId P, const AbsEnv &Entry,
                     const std::vector<AbsEnv> &CallSummaries, bool Record);

  Interval evalExpr(const Expr *E, const AbsEnv &Env) const;
  void refine(AbsEnv &Env, const Expr *E, bool Positive) const;

  const CfgProgram &Prog;
  std::vector<AbsEnv> EntryEnvs;
  std::vector<AbsEnv> ExitSummaries;
  std::vector<AbsEnv> ContextExitSummaries;
};

/// Result of invariant injection.
struct InvariantReport {
  unsigned ProcsAnnotated = 0;
  unsigned Conjuncts = 0;
};

/// Runs the analysis rooted at \p Entry and splices each non-trivial entry
/// invariant into \p Prog as an assume label before the procedure entry.
InvariantReport injectInvariants(AstContext &Ctx, CfgProgram &Prog,
                                 ProcId Entry);

} // namespace rmt

#endif // RMT_ANALYSIS_INVARIANTGEN_H
