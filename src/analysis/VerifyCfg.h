//===- VerifyCfg.h - Structural CFG invariant verifier ----------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural verifier for the paper's Fig. 7 label form, in the spirit of
/// LLVM's IR verifier: every prepass transformation must leave the program
/// well-formed, and the pass manager can re-check after each pass
/// (`--verify-each`) so a miscompiling pass fails loudly at its own doorstep
/// instead of corrupting the engine's input silently.
///
/// Checked invariants:
///
///  * label table shape — every label is owned by exactly one procedure,
///    its `Proc` back-pointer matches, and every procedure's entry label is
///    among the labels it owns;
///  * successor closure — every successor id is a valid label of the *same*
///    procedure (flow never crosses procedure boundaries; calls are
///    statements, not edges);
///  * hierarchy — every intraprocedural flow graph is acyclic and the call
///    graph is acyclic (Section 3's definition of a hierarchical program);
///  * call shape — callees are valid procedure ids, argument and result
///    arities match the callee signature, and argument/result types match
///    parameter/return types;
///  * scope — every variable a statement references (expression leaves,
///    assignment targets, havoc lists, call result bindings) is declared in
///    the owning procedure's scope with a matching type, and `assume`
///    conditions are bool-typed;
///  * `$err` instrumentation shape (only when the query variable is given) —
///    the error bit is a bool global that is never havocked and never bound
///    as a call result, and every assignment to it is bool-typed.
///
/// The verifier never mutates the program and reports *all* violations, each
/// as one precise human-readable diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_VERIFYCFG_H
#define RMT_ANALYSIS_VERIFYCFG_H

#include "ast/AstContext.h"
#include "cfg/Cfg.h"

#include <optional>
#include <string>
#include <vector>

namespace rmt {

/// Verifies the structural invariants of \p Prog. Returns one diagnostic per
/// violation; an empty vector means the program is well-formed. \p ErrGlobal
/// enables the instrumentation-shape checks; \p Root (when valid) is checked
/// to be a valid procedure id.
std::vector<std::string> verifyCfg(const AstContext &Ctx,
                                   const CfgProgram &Prog,
                                   ProcId Root = InvalidProc,
                                   std::optional<Symbol> ErrGlobal =
                                       std::nullopt);

} // namespace rmt

#endif // RMT_ANALYSIS_VERIFYCFG_H
