//===- Dataflow.cpp -------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include <algorithm>
#include <cassert>

using namespace rmt;

//===----------------------------------------------------------------------===//
// ProcFlow
//===----------------------------------------------------------------------===//

ProcFlow::ProcFlow(const CfgProgram &Prog, ProcId P)
    : Prog(Prog), P(P), Entry(Prog.proc(P).Entry) {
  Topo = Prog.topoOrder(P);
  Index.reserve(Topo.size());
  for (unsigned I = 0; I < Topo.size(); ++I)
    Index[Topo[I]] = I;
  Preds.resize(Topo.size());
  for (LabelId L : Prog.proc(P).Labels)
    for (LabelId T : Prog.label(L).Targets)
      Preds[Index.at(T)].push_back(L);
}

//===----------------------------------------------------------------------===//
// Shared utilities
//===----------------------------------------------------------------------===//

void rmt::collectExprVars(const Expr *E, std::set<Symbol> &Out) {
  if (!E)
    return;
  std::vector<const Expr *> Stack{E};
  while (!Stack.empty()) {
    const Expr *Cur = Stack.back();
    Stack.pop_back();
    if (Cur->kind() == ExprKind::Var) {
      Out.insert(Cur->var());
      continue;
    }
    for (unsigned I = 0; I < Cur->numOps(); ++I)
      Stack.push_back(I == 0 ? Cur->op0() : I == 1 ? Cur->op1() : Cur->op2());
  }
}

std::vector<ProcEffects> rmt::computeProcEffects(const CfgProgram &Prog) {
  std::unordered_set<Symbol> Globals;
  for (const VarDecl &G : Prog.Globals)
    Globals.insert(G.Name);

  std::vector<ProcEffects> FX(Prog.Procs.size());
  for (ProcId P : Prog.bottomUpProcOrder()) {
    ProcEffects &E = FX[P];
    auto AddUses = [&](const Expr *Ex) {
      std::set<Symbol> Vars;
      collectExprVars(Ex, Vars);
      for (Symbol V : Vars)
        if (Globals.count(V))
          E.UseGlobals.insert(V);
    };
    for (LabelId L : Prog.proc(P).Labels) {
      const CfgStmt &S = Prog.label(L).Stmt;
      switch (S.Kind) {
      case CfgStmtKind::Assume:
        AddUses(S.E);
        break;
      case CfgStmtKind::Assign:
        AddUses(S.E);
        if (Globals.count(S.Target))
          E.ModGlobals.insert(S.Target);
        break;
      case CfgStmtKind::Havoc:
        for (Symbol V : S.Vars)
          if (Globals.count(V))
            E.ModGlobals.insert(V);
        break;
      case CfgStmtKind::Call: {
        for (const Expr *A : S.Args)
          AddUses(A);
        for (Symbol V : S.Vars)
          if (Globals.count(V))
            E.ModGlobals.insert(V);
        const ProcEffects &C = FX[S.Callee];
        E.ModGlobals.insert(C.ModGlobals.begin(), C.ModGlobals.end());
        E.UseGlobals.insert(C.UseGlobals.begin(), C.UseGlobals.end());
        break;
      }
      }
    }
  }
  return FX;
}

//===----------------------------------------------------------------------===//
// Constant environment and folding
//===----------------------------------------------------------------------===//

bool ConstEnv::joinWith(const ConstEnv &O) {
  if (O.Bottom)
    return false;
  if (Bottom) {
    *this = O;
    return true;
  }
  bool Changed = false;
  for (auto It = Known.begin(); It != Known.end();) {
    auto OIt = O.Known.find(It->first);
    if (OIt == O.Known.end() || !(OIt->second == It->second)) {
      It = Known.erase(It);
      Changed = true;
    } else {
      ++It;
    }
  }
  return Changed;
}

namespace {

/// SMT-LIB Euclidean division/remainder; the divisor must be nonzero.
int64_t euclideanMod(int64_t A, int64_t B) {
  int64_t R = A % B;
  if (R < 0)
    R += (B > 0) ? B : -B;
  return R;
}

int64_t euclideanDiv(int64_t A, int64_t B) {
  return (A - euclideanMod(A, B)) / B;
}

} // namespace

std::optional<ConstVal> rmt::evalConstExpr(const Expr *E,
                                           const ConstEnv &Env) {
  if (Env.isBottom())
    return std::nullopt;
  const Type *Ty = E->type();
  // Bitvectors carry modular semantics we leave to the solver; arrays never
  // fold.
  if (!Ty || (!Ty->isInt() && !Ty->isBool()))
    return std::nullopt;

  switch (E->kind()) {
  case ExprKind::IntLit:
    return ConstVal::ofInt(E->intValue());
  case ExprKind::BoolLit:
    return ConstVal::ofBool(E->boolValue());
  case ExprKind::Var:
    return Env.get(E->var());
  case ExprKind::Unary: {
    std::optional<ConstVal> V = evalConstExpr(E->op0(), Env);
    if (!V)
      return std::nullopt;
    switch (E->unOp()) {
    case UnOp::Not:
      return ConstVal::ofBool(!V->V);
    case UnOp::Neg:
      if (V->V == INT64_MIN)
        return std::nullopt;
      return ConstVal::ofInt(-V->V);
    }
    return std::nullopt;
  }
  case ExprKind::Binary: {
    std::optional<ConstVal> L = evalConstExpr(E->op0(), Env);
    std::optional<ConstVal> R = evalConstExpr(E->op1(), Env);
    switch (E->binOp()) {
    // Short-circuit folds are exact: expressions are total, so an unknown
    // operand cannot block evaluation.
    case BinOp::And:
      if ((L && !L->V) || (R && !R->V))
        return ConstVal::ofBool(false);
      if (L && L->V && R && R->V)
        return ConstVal::ofBool(true);
      return std::nullopt;
    case BinOp::Or:
      if ((L && L->V) || (R && R->V))
        return ConstVal::ofBool(true);
      if (L && !L->V && R && !R->V)
        return ConstVal::ofBool(false);
      return std::nullopt;
    case BinOp::Implies:
      if ((L && !L->V) || (R && R->V))
        return ConstVal::ofBool(true);
      if (L && L->V && R && !R->V)
        return ConstVal::ofBool(false);
      return std::nullopt;
    default:
      break;
    }
    if (!L || !R)
      return std::nullopt;
    int64_t Out;
    switch (E->binOp()) {
    case BinOp::Add:
      if (__builtin_add_overflow(L->V, R->V, &Out))
        return std::nullopt;
      return ConstVal::ofInt(Out);
    case BinOp::Sub:
      if (__builtin_sub_overflow(L->V, R->V, &Out))
        return std::nullopt;
      return ConstVal::ofInt(Out);
    case BinOp::Mul:
      if (__builtin_mul_overflow(L->V, R->V, &Out))
        return std::nullopt;
      return ConstVal::ofInt(Out);
    case BinOp::Div:
      // x div 0 is uninterpreted in SMT; never fold it.
      if (R->V == 0 || (L->V == INT64_MIN && R->V == -1))
        return std::nullopt;
      return ConstVal::ofInt(euclideanDiv(L->V, R->V));
    case BinOp::Mod:
      if (R->V == 0)
        return std::nullopt;
      return ConstVal::ofInt(euclideanMod(L->V, R->V));
    case BinOp::Eq:
      return ConstVal::ofBool(L->V == R->V);
    case BinOp::Ne:
      return ConstVal::ofBool(L->V != R->V);
    case BinOp::Lt:
      return ConstVal::ofBool(L->V < R->V);
    case BinOp::Le:
      return ConstVal::ofBool(L->V <= R->V);
    case BinOp::Gt:
      return ConstVal::ofBool(L->V > R->V);
    case BinOp::Ge:
      return ConstVal::ofBool(L->V >= R->V);
    case BinOp::Iff:
      return ConstVal::ofBool((L->V != 0) == (R->V != 0));
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Implies:
      break; // handled above
    }
    return std::nullopt;
  }
  case ExprKind::Ite: {
    std::optional<ConstVal> C = evalConstExpr(E->op0(), Env);
    if (C)
      return evalConstExpr(C->V ? E->op1() : E->op2(), Env);
    std::optional<ConstVal> T = evalConstExpr(E->op1(), Env);
    std::optional<ConstVal> F = evalConstExpr(E->op2(), Env);
    if (T && F && *T == *F)
      return T;
    return std::nullopt;
  }
  case ExprKind::Select:
  case ExprKind::Store:
    return std::nullopt;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Constant propagation with branch pruning
//===----------------------------------------------------------------------===//

namespace {

/// Conditions an `assume` imposes refine the environment: walking the
/// expression under the assumed polarity picks up equalities with constants
/// and definite boolean variables.
void refineEnv(ConstEnv &Env, const Expr *E, bool Positive) {
  switch (E->kind()) {
  case ExprKind::Var:
    if (E->type() && E->type()->isBool())
      Env.set(E->var(), ConstVal::ofBool(Positive));
    return;
  case ExprKind::Unary:
    if (E->unOp() == UnOp::Not)
      refineEnv(Env, E->op0(), !Positive);
    return;
  case ExprKind::Binary: {
    BinOp Op = E->binOp();
    if ((Op == BinOp::And && Positive) || (Op == BinOp::Or && !Positive)) {
      refineEnv(Env, E->op0(), Positive);
      refineEnv(Env, E->op1(), Positive);
      return;
    }
    if ((Op == BinOp::Eq && Positive) || (Op == BinOp::Ne && !Positive)) {
      for (auto [VarSide, ValSide] :
           {std::pair(E->op0(), E->op1()), std::pair(E->op1(), E->op0())}) {
        if (VarSide->kind() != ExprKind::Var || !VarSide->type() ||
            (!VarSide->type()->isInt() && !VarSide->type()->isBool()))
          continue;
        if (std::optional<ConstVal> V = evalConstExpr(ValSide, Env))
          Env.set(VarSide->var(), *V);
      }
    }
    return;
  }
  default:
    return;
  }
}

/// Forward must-constant analysis over one procedure. Calls clobber their
/// result bindings and the callee's transitive global mod-set.
class ConstPropAnalysis {
public:
  using Value = ConstEnv;
  static constexpr FlowDirection Direction = FlowDirection::Forward;

  explicit ConstPropAnalysis(const std::vector<ProcEffects> &FX) : FX(FX) {}

  Value bottom() const { return ConstEnv::bottomEnv(); }
  Value boundary() const { return ConstEnv::topEnv(); }
  bool join(Value &Into, const Value &From) const {
    return Into.joinWith(From);
  }

  Value transfer(LabelId, const CfgStmt &S, const Value &In) const {
    if (In.isBottom())
      return In;
    Value Out = In;
    switch (S.Kind) {
    case CfgStmtKind::Assume: {
      std::optional<ConstVal> V = evalConstExpr(S.E, In);
      if (V && !V->V)
        return ConstEnv::bottomEnv();
      refineEnv(Out, S.E, /*Positive=*/true);
      break;
    }
    case CfgStmtKind::Assign: {
      if (std::optional<ConstVal> V = evalConstExpr(S.E, In))
        Out.set(S.Target, *V);
      else
        Out.forget(S.Target);
      break;
    }
    case CfgStmtKind::Havoc:
      for (Symbol V : S.Vars)
        Out.forget(V);
      break;
    case CfgStmtKind::Call:
      for (Symbol V : S.Vars)
        Out.forget(V);
      for (Symbol G : FX[S.Callee].ModGlobals)
        Out.forget(G);
      break;
    }
    return Out;
  }

private:
  const std::vector<ProcEffects> &FX;
};

bool isLiteralExpr(const Expr *E) {
  return E->kind() == ExprKind::IntLit || E->kind() == ExprKind::BoolLit;
}

bool isSkipLabel(const CfgLabel &L) {
  return L.Stmt.Kind == CfgStmtKind::Assume && L.Stmt.E &&
         L.Stmt.E->kind() == ExprKind::BoolLit && L.Stmt.E->boolValue();
}

} // namespace

void rmt::runConstPass(AstContext &Ctx, CfgProgram &Prog, PrepassReport &R) {
  std::vector<ProcEffects> FX = computeProcEffects(Prog);
  std::vector<bool> Keep(Prog.Labels.size(), true);
  ConstPropAnalysis A(FX);

  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    ProcFlow Flow(Prog, P);
    DataflowSolver<ConstPropAnalysis> Solver(Flow, A);
    Solver.solve();

    for (LabelId L : Prog.proc(P).Labels) {
      if (Solver.pre(L).isBottom()) {
        Keep[L] = false;
        continue;
      }
      CfgStmt &S = Prog.Labels[L].Stmt;
      switch (S.Kind) {
      case CfgStmtKind::Assume: {
        std::optional<ConstVal> V = evalConstExpr(S.E, Solver.pre(L));
        if (!V)
          break;
        if (!isLiteralExpr(S.E)) {
          S.E = Ctx.tBool(V->V != 0);
          ++R.FoldedExprs;
        }
        // A blocked label never completes, so its out-edges are dead.
        if (!V->V)
          Prog.Labels[L].Targets.clear();
        break;
      }
      case CfgStmtKind::Assign: {
        std::optional<ConstVal> V = evalConstExpr(S.E, Solver.pre(L));
        if (V && !isLiteralExpr(S.E)) {
          S.E = V->IsBool ? Ctx.tBool(V->V != 0) : Ctx.tInt(V->V);
          ++R.FoldedExprs;
        }
        break;
      }
      case CfgStmtKind::Havoc:
      case CfgStmtKind::Call:
        break;
      }
    }
  }
  R.PrunedLabels += compactLabels(Prog, Keep);
}

//===----------------------------------------------------------------------===//
// Structural compaction
//===----------------------------------------------------------------------===//

unsigned rmt::compactLabels(CfgProgram &Prog,
                            const std::vector<bool> &KeepLabel) {
  assert(KeepLabel.size() == Prog.Labels.size());
  size_t Before = Prog.Labels.size();

  std::vector<LabelId> NewId(Before, InvalidLabel);
  LabelId Next = 0;
  for (LabelId L = 0; L < Before; ++L)
    if (KeepLabel[L])
      NewId[L] = Next++;
  if (Next == Before)
    return 0;

  std::vector<CfgLabel> NewLabels;
  NewLabels.reserve(Next);
  for (LabelId L = 0; L < Before; ++L) {
    if (!KeepLabel[L])
      continue;
    CfgLabel Lbl = std::move(Prog.Labels[L]);
    std::vector<LabelId> Targets;
    Targets.reserve(Lbl.Targets.size());
    for (LabelId T : Lbl.Targets)
      if (NewId[T] != InvalidLabel)
        Targets.push_back(NewId[T]);
    Lbl.Targets = std::move(Targets);
    NewLabels.push_back(std::move(Lbl));
  }
  Prog.Labels = std::move(NewLabels);

  for (CfgProc &P : Prog.Procs) {
    assert(NewId[P.Entry] != InvalidLabel &&
           "procedure entry labels must be kept");
    P.Entry = NewId[P.Entry];
    std::vector<LabelId> Kept;
    Kept.reserve(P.Labels.size());
    for (LabelId L : P.Labels)
      if (NewId[L] != InvalidLabel)
        Kept.push_back(NewId[L]);
    P.Labels = std::move(Kept);
  }
  return static_cast<unsigned>(Before - Next);
}

unsigned rmt::dropDeadProcs(CfgProgram &Prog, ProcId &Root) {
  size_t NumProcs = Prog.Procs.size();
  std::vector<char> Reach(NumProcs, 0);
  std::vector<ProcId> Work{Root};
  Reach[Root] = 1;
  while (!Work.empty()) {
    ProcId P = Work.back();
    Work.pop_back();
    for (ProcId C : Prog.calleesOf(P))
      if (!Reach[C]) {
        Reach[C] = 1;
        Work.push_back(C);
      }
  }

  unsigned Removed = 0;
  for (ProcId P = 0; P < NumProcs; ++P)
    if (!Reach[P])
      ++Removed;
  if (Removed == 0)
    return 0;

  // Drop the dead procedures' labels first (their entries go with them), then
  // renumber the surviving procedures.
  std::vector<ProcId> NewId(NumProcs, InvalidProc);
  ProcId NextProc = 0;
  for (ProcId P = 0; P < NumProcs; ++P)
    if (Reach[P])
      NewId[P] = NextProc++;

  std::vector<bool> KeepLabel(Prog.Labels.size());
  for (LabelId L = 0; L < Prog.Labels.size(); ++L)
    KeepLabel[L] = Reach[Prog.Labels[L].Proc] != 0;

  std::vector<CfgProc> NewProcs;
  NewProcs.reserve(NextProc);
  for (ProcId P = 0; P < NumProcs; ++P)
    if (Reach[P])
      NewProcs.push_back(std::move(Prog.Procs[P]));
  Prog.Procs = std::move(NewProcs);

  compactLabels(Prog, KeepLabel);

  for (CfgLabel &Lbl : Prog.Labels) {
    Lbl.Proc = NewId[Lbl.Proc];
    if (Lbl.Stmt.Kind == CfgStmtKind::Call) {
      assert(NewId[Lbl.Stmt.Callee] != InvalidProc &&
             "live label calls a dead procedure");
      Lbl.Stmt.Callee = NewId[Lbl.Stmt.Callee];
    }
  }
  Root = NewId[Root];
  assert(Root != InvalidProc);
  return Removed;
}

unsigned rmt::spliceSkips(CfgProgram &Prog) {
  size_t N = Prog.Labels.size();

  // Resolve each label to the labels that replace it as a jump target:
  // non-skips and skip returns stand for themselves; a skip with successors
  // stands for its resolved successors. Reverse-topological order makes this
  // a single pass.
  std::vector<std::vector<LabelId>> Resolved(N);
  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    std::vector<LabelId> Topo = Prog.topoOrder(P);
    for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
      LabelId L = *It;
      const CfgLabel &Lbl = Prog.label(L);
      if (!isSkipLabel(Lbl) || Lbl.Targets.empty()) {
        Resolved[L] = {L};
        continue;
      }
      std::vector<LabelId> R;
      for (LabelId T : Lbl.Targets)
        for (LabelId X : Resolved[T])
          if (std::find(R.begin(), R.end(), X) == R.end())
            R.push_back(X);
      Resolved[L] = std::move(R);
    }
  }

  // Rewire every target list through the resolution, and let a label whose
  // only remaining successor is a skip return (a no-op before returning)
  // return directly.
  for (CfgLabel &Lbl : Prog.Labels) {
    std::vector<LabelId> NewTargets;
    for (LabelId T : Lbl.Targets)
      for (LabelId X : Resolved[T])
        if (std::find(NewTargets.begin(), NewTargets.end(), X) ==
            NewTargets.end())
          NewTargets.push_back(X);
    if (NewTargets.size() == 1) {
      const CfgLabel &T = Prog.label(NewTargets[0]);
      if (isSkipLabel(T) && T.Targets.empty())
        NewTargets.clear();
    }
    Lbl.Targets = std::move(NewTargets);
  }

  // Fast-forward entries through straight-line skips.
  for (CfgProc &P : Prog.Procs) {
    for (;;) {
      const CfgLabel &E = Prog.label(P.Entry);
      if (!isSkipLabel(E) || E.Targets.size() != 1)
        break;
      P.Entry = E.Targets[0];
    }
  }

  // Sweep everything the rewiring orphaned.
  std::vector<bool> Keep(N, false);
  for (const CfgProc &P : Prog.Procs) {
    std::vector<LabelId> Work{P.Entry};
    Keep[P.Entry] = true;
    while (!Work.empty()) {
      LabelId L = Work.back();
      Work.pop_back();
      for (LabelId T : Prog.label(L).Targets)
        if (!Keep[T]) {
          Keep[T] = true;
          Work.push_back(T);
        }
    }
  }
  return compactLabels(Prog, Keep);
}

//===----------------------------------------------------------------------===//
// The prepass pipeline
//===----------------------------------------------------------------------===//

void PrepassReport::record(Stats &S) const {
  S.add("prepass.labels.before", static_cast<int64_t>(LabelsBefore));
  S.add("prepass.labels.after", static_cast<int64_t>(LabelsAfter));
  S.add("prepass.procs.before", static_cast<int64_t>(ProcsBefore));
  S.add("prepass.procs.after", static_cast<int64_t>(ProcsAfter));
  S.add("prepass.labels.pruned", PrunedLabels);
  S.add("prepass.labels.spliced", SplicedLabels);
  S.add("prepass.exprs.folded", FoldedExprs);
  S.add("prepass.stmts.sliced", SlicedStmts);
  S.add("prepass.calls.elided", ElidedCalls);
  S.add("prepass.procs.dead", DeadProcs);
  S.add("prepass.exprs.propagated", PropagatedExprs);
  S.add("prepass.assumes.redundant", RedundantAssumes);
  S.add("prepass.assumes.contradicted", ContradictedAssumes);
  S.add("prepass.inv.conjuncts", InvariantConjuncts);
  S.add("prepass.audit.deadstores", AuditDeadStores);
  S.add("prepass.audit.unreachable", AuditUnreachableLabels);
}

std::string PrepassReport::str() const {
  std::string Out;
  Out += "labels " + std::to_string(LabelsBefore) + " -> " +
         std::to_string(LabelsAfter);
  Out += ", procs " + std::to_string(ProcsBefore) + " -> " +
         std::to_string(ProcsAfter);
  Out += " (pruned " + std::to_string(PrunedLabels) + ", sliced " +
         std::to_string(SlicedStmts) + ", spliced " +
         std::to_string(SplicedLabels) + ", folded " +
         std::to_string(FoldedExprs) + ", propagated " +
         std::to_string(PropagatedExprs) + ", redundant assumes " +
         std::to_string(RedundantAssumes + ContradictedAssumes) +
         ", elided calls " + std::to_string(ElidedCalls) + ", dead procs " +
         std::to_string(DeadProcs) + ")";
  if (AuditDeadStores + AuditUnreachableLabels != 0)
    Out += " [lint audit: " + std::to_string(AuditDeadStores) +
           " dead stores, " + std::to_string(AuditUnreachableLabels) +
           " unreachable labels]";
  if (!PipelineErrors.empty())
    Out += " PIPELINE ABORTED: " + PipelineErrors.front();
  return Out;
}
