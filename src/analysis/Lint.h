//===- Lint.h - HBPL lint diagnostics ---------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lint pass over checked HBPL programs, reporting through DiagEngine:
///
///  * use-before-def — a local or return variable read on some path before
///    any assignment, havoc, or call result reaches it;
///  * unreachable code — statements no control-flow path from the procedure
///    entry reaches (e.g. code after `return`);
///  * dead stores — assignments to locals whose value no later statement can
///    read;
///  * havoc of undeclared variables.
///
/// The pass reuses the verification front half: asserts become empty
/// branches (so their conditions still count as reads), loops are unrolled a
/// couple of times (so loop-carried definitions are seen), and the analyses
/// from Dataflow.h run on the lowered label form. Statement copies produced
/// by unrolling are reconciled by source location: a statement is flagged
/// unreachable or dead only when *every* copy is, and flagged use-before-def
/// when *any* copy is.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_LINT_H
#define RMT_ANALYSIS_LINT_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"
#include "support/Diag.h"

namespace rmt {

struct LintOptions {
  /// Loop copies used to build the lintable CFG. Two keeps loop-carried
  /// definitions from reading as dead stores or use-before-def.
  unsigned UnrollBound = 2;
};

/// Count of diagnostics per category.
struct LintReport {
  unsigned UseBeforeDef = 0;
  unsigned UnreachableCode = 0;
  unsigned DeadStores = 0;
  unsigned UndeclaredHavocs = 0;

  unsigned total() const {
    return UseBeforeDef + UnreachableCode + DeadStores + UndeclaredHavocs;
  }
};

/// Lints \p Prog (which must be type-checked), emitting warnings into
/// \p Diags in source order. Never emits errors.
LintReport lintProgram(AstContext &Ctx, const Program &Prog,
                       DiagEngine &Diags, const LintOptions &Opts = {});

} // namespace rmt

#endif // RMT_ANALYSIS_LINT_H
