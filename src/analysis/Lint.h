//===- Lint.h - HBPL lint diagnostics ---------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lint pass over checked HBPL programs, reporting through DiagEngine and
/// a structured report:
///
///  * use-before-def (error) — a local or return variable read on some path
///    before any assignment, havoc, or call result reaches it, i.e. a read
///    of garbage the program never chose to make nondeterministic;
///  * havoc of undeclared variables (error) — the program is malformed;
///  * unreachable code (warning) — statements no control-flow path from the
///    procedure entry reaches (e.g. code after `return`);
///  * dead stores (warning) — assignments to locals whose value no later
///    statement can read.
///
/// Error-severity findings make `hbpl_verify --lint` exit nonzero (exit
/// code 2), so the lint gate is scriptable in CI.
///
/// The pass reuses the verification front half: asserts become empty
/// branches (so their conditions still count as reads), loops are unrolled a
/// couple of times (so loop-carried definitions are seen), and the analyses
/// from Dataflow.h run on the lowered label form. Statement copies produced
/// by unrolling are reconciled by source location: a statement is flagged
/// unreachable or dead only when *every* copy is, and flagged use-before-def
/// when *any* copy is.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_LINT_H
#define RMT_ANALYSIS_LINT_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace rmt {

struct LintOptions {
  /// Loop copies used to build the lintable CFG. Two keeps loop-carried
  /// definitions from reading as dead stores or use-before-def.
  unsigned UnrollBound = 2;
};

/// Which check produced a finding.
enum class LintCheck {
  UseBeforeDef,
  UnreachableCode,
  DeadStore,
  UndeclaredHavoc,
};

/// Severity of a finding. Errors gate the CLI's exit code; warnings are
/// advisory.
enum class LintSeverity { Error, Warning };

/// Severity a check carries (use-before-def and undeclared havocs are
/// errors; unreachable code and dead stores are warnings).
LintSeverity lintSeverityOf(LintCheck Check);

/// One deduplicated finding, in source order.
struct LintFinding {
  LintCheck Check;
  LintSeverity Severity;
  SrcLoc Loc;
  std::string Message;
};

/// Structured lint results: the findings themselves plus per-category counts.
struct LintReport {
  std::vector<LintFinding> Findings;

  unsigned UseBeforeDef = 0;
  unsigned UnreachableCode = 0;
  unsigned DeadStores = 0;
  unsigned UndeclaredHavocs = 0;

  unsigned total() const {
    return UseBeforeDef + UnreachableCode + DeadStores + UndeclaredHavocs;
  }
  unsigned errors() const { return UseBeforeDef + UndeclaredHavocs; }
  unsigned warnings() const { return UnreachableCode + DeadStores; }
  bool hasErrors() const { return errors() != 0; }
};

/// Lints \p Prog (which must be type-checked), returning the structured
/// report and mirroring every finding into \p Diags at its severity, in
/// source order per check.
LintReport lintProgram(AstContext &Ctx, const Program &Prog,
                       DiagEngine &Diags, const LintOptions &Opts = {});

} // namespace rmt

#endif // RMT_ANALYSIS_LINT_H
