//===- PassManager.cpp ----------------------------------------------------===//

#include "analysis/PassManager.h"

#include "analysis/Gvn.h"
#include "analysis/InvariantGen.h"
#include "analysis/Slicer.h"
#include "analysis/VerifyCfg.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Builtin passes
//===----------------------------------------------------------------------===//

namespace {

class ConstPropPass : public Pass {
public:
  std::string_view name() const override { return "constprop"; }
  std::string_view description() const override {
    return "constant propagation, folding, assume-false branch pruning";
  }
  bool run(PassContext &PC) override {
    unsigned Pruned = PC.Report.PrunedLabels;
    unsigned Folded = PC.Report.FoldedExprs;
    runConstPass(PC.Ctx, PC.Prog, PC.Report);
    return PC.Report.PrunedLabels != Pruned || PC.Report.FoldedExprs != Folded;
  }
};

class GvnPass : public Pass {
public:
  std::string_view name() const override { return "gvn"; }
  std::string_view description() const override {
    return "value numbering with copy/expression propagation";
  }
  bool run(PassContext &PC) override {
    GvnReport R = runGvn(PC.Ctx, PC.Prog);
    PC.Report.PropagatedExprs += R.PropagatedExprs;
    return R.total() != 0;
  }
};

class AssumeElimPass : public Pass {
public:
  std::string_view name() const override { return "assumeelim"; }
  std::string_view description() const override {
    return "drop assumes entailed by value-numbered facts on all paths";
  }
  bool run(PassContext &PC) override {
    GvnReport R = runAssumeElim(PC.Ctx, PC.Prog);
    PC.Report.RedundantAssumes += R.RedundantAssumes;
    PC.Report.ContradictedAssumes += R.ContradictedAssumes;
    return R.total() != 0;
  }
};

class SlicePass : public Pass {
public:
  std::string_view name() const override { return "slice"; }
  std::string_view description() const override {
    return "cone-of-influence slicing against the reachability query";
  }
  bool run(PassContext &PC) override {
    SliceReport R = sliceForQuery(PC.Ctx, PC.Prog, PC.Root, PC.ErrGlobal);
    PC.Report.SlicedStmts += R.StmtsDropped;
    PC.Report.ElidedCalls += R.CallsElided;
    return R.StmtsDropped + R.HavocVarsDropped + R.CallsElided != 0;
  }
};

class SplicePass : public Pass {
public:
  std::string_view name() const override { return "splice"; }
  std::string_view description() const override {
    return "splice `assume true` skip labels out of the flow graph";
  }
  bool run(PassContext &PC) override {
    unsigned Removed = spliceSkips(PC.Prog);
    PC.Report.SplicedLabels += Removed;
    return Removed != 0;
  }
};

class DeadProcPass : public Pass {
public:
  std::string_view name() const override { return "deadproc"; }
  std::string_view description() const override {
    return "drop procedures unreachable from the root";
  }
  bool run(PassContext &PC) override {
    unsigned Removed = dropDeadProcs(PC.Prog, PC.Root);
    PC.Report.DeadProcs += Removed;
    return Removed != 0;
  }
};

/// Backward live-variable lattice for the lint-audit pass. Liveness is
/// over-approximated — calls keep their callee's transitive global reads
/// live and never kill the globals they write, and every global and return
/// variable is observable at exit — so a store flagged dead really is
/// unobservable.
struct AuditLiveness {
  using Value = std::set<Symbol>;
  static constexpr FlowDirection Direction = FlowDirection::Backward;

  const std::vector<ProcEffects> &FX;
  std::set<Symbol> Observable;

  Value bottom() const { return {}; }
  Value boundary() const { return Observable; }
  bool join(Value &Into, const Value &From) const {
    size_t N = Into.size();
    Into.insert(From.begin(), From.end());
    return Into.size() != N;
  }
  Value transfer(LabelId, const CfgStmt &S, const Value &Out) const {
    Value In = Out;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      collectExprVars(S.E, In);
      break;
    case CfgStmtKind::Assign:
      // Strong update: the right-hand side only matters if someone later
      // reads the target.
      if (In.erase(S.Target))
        collectExprVars(S.E, In);
      break;
    case CfgStmtKind::Havoc:
      for (Symbol V : S.Vars)
        In.erase(V);
      break;
    case CfgStmtKind::Call:
      for (Symbol V : S.Vars)
        In.erase(V);
      for (const Expr *A : S.Args)
        collectExprVars(A, In);
      In.insert(FX[S.Callee].UseGlobals.begin(),
                FX[S.Callee].UseGlobals.end());
      break;
    }
    return In;
  }
};

class LintAuditPass : public Pass {
public:
  std::string_view name() const override { return "lint"; }
  std::string_view description() const override {
    return "audit residual dead stores and unreachable labels (read-only)";
  }
  bool run(PassContext &PC) override {
    const CfgProgram &Prog = PC.Prog;
    std::vector<ProcEffects> FX = computeProcEffects(Prog);
    std::set<Symbol> Globals;
    for (const VarDecl &G : Prog.Globals)
      Globals.insert(G.Name);

    for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
      const CfgProc &Proc = Prog.proc(P);

      // Entry-reachability sweep over the flow graph.
      std::vector<char> Reached(Prog.Labels.size(), 0);
      std::vector<LabelId> Work{Proc.Entry};
      Reached[Proc.Entry] = 1;
      while (!Work.empty()) {
        LabelId L = Work.back();
        Work.pop_back();
        for (LabelId T : Prog.label(L).Targets)
          if (!Reached[T]) {
            Reached[T] = 1;
            Work.push_back(T);
          }
      }

      AuditLiveness A{FX, Globals};
      for (const VarDecl &R : Proc.Returns)
        A.Observable.insert(R.Name);
      ProcFlow Flow(Prog, P);
      DataflowSolver<AuditLiveness> Solver(Flow, A);
      Solver.solve();

      for (LabelId L : Proc.Labels) {
        if (!Reached[L]) {
          ++PC.Report.AuditUnreachableLabels;
          continue; // don't double-count its statement as a dead store
        }
        const CfgStmt &S = Prog.label(L).Stmt;
        if (S.Kind == CfgStmtKind::Assign && !Solver.post(L).count(S.Target))
          ++PC.Report.AuditDeadStores;
      }
    }
    return false; // read-only: only report counters change
  }
};

class InvariantPass : public Pass {
public:
  std::string_view name() const override { return "inv"; }
  std::string_view description() const override {
    return "inject interval invariants at procedure entries (+Inv)";
  }
  bool run(PassContext &PC) override {
    InvariantReport R = injectInvariants(PC.Ctx, PC.Prog, PC.Root);
    PC.Report.InvariantConjuncts += R.Conjuncts;
    return R.Conjuncts != 0;
  }
};

template <typename P> std::unique_ptr<Pass> make() {
  return std::make_unique<P>();
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

PassRegistry &PassRegistry::instance() {
  static PassRegistry R = [] {
    PassRegistry Reg;
    // Registration order defines the default pipeline order.
    Reg.registerPass("constprop", make<ConstPropPass>);
    Reg.registerPass("gvn", make<GvnPass>);
    Reg.registerPass("assumeelim", make<AssumeElimPass>);
    Reg.registerPass("slice", make<SlicePass>);
    Reg.registerPass("splice", make<SplicePass>);
    Reg.registerPass("deadproc", make<DeadProcPass>);
    Reg.registerPass("lint", make<LintAuditPass>);
    Reg.registerPass("inv", make<InvariantPass>);
    return Reg;
  }();
  return R;
}

void PassRegistry::registerPass(std::string_view Name, Factory Make) {
  for (auto &[N, F] : Factories)
    if (N == Name) {
      F = Make;
      return;
    }
  Factories.emplace_back(std::string(Name), Make);
}

std::unique_ptr<Pass> PassRegistry::create(std::string_view Name) const {
  for (const auto &[N, F] : Factories)
    if (N == Name)
      return F();
  return nullptr;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Factories.size());
  for (const auto &[N, F] : Factories)
    Out.push_back(N);
  return Out;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

std::string PassPipeline::str() const {
  std::string Out;
  for (const auto &P : Passes) {
    if (!Out.empty())
      Out += ",";
    Out += P->name();
  }
  return Out;
}

std::optional<PassPipeline> PassPipeline::parse(std::string_view Spec,
                                                std::string *Error) {
  PassPipeline PL;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = Spec.size();
    std::string_view Name = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    while (!Name.empty() && Name.front() == ' ')
      Name.remove_prefix(1);
    while (!Name.empty() && Name.back() == ' ')
      Name.remove_suffix(1);
    if (Name.empty())
      continue;
    std::unique_ptr<Pass> P = PassRegistry::instance().create(Name);
    if (!P) {
      if (Error) {
        *Error = "unknown pass '" + std::string(Name) + "' (available:";
        for (const std::string &N : PassRegistry::instance().names())
          *Error += " " + N;
        *Error += ")";
      }
      return std::nullopt;
    }
    PL.append(std::move(P));
  }
  return PL;
}

PassPipeline PassPipeline::fromOptions(const PrepassOptions &Opts) {
  PassPipeline PL;
  auto Add = [&](bool On, const char *Name) {
    if (On)
      PL.append(PassRegistry::instance().create(Name));
  };
  Add(Opts.ConstantFold, "constprop");
  Add(Opts.Gvn, "gvn");
  Add(Opts.AssumeElim, "assumeelim");
  Add(Opts.Slice, "slice");
  Add(Opts.SpliceSkips, "splice");
  Add(Opts.DeadProcElim, "deadproc");
  Add(Opts.Invariants, "inv");
  return PL;
}

std::vector<std::string> PassPipeline::run(PassContext &PC,
                                           const PipelineOptions &Opts,
                                           Stats *S) const {
  auto Verify = [&](std::string_view After) {
    std::vector<std::string> Bad =
        verifyCfg(PC.Ctx, PC.Prog, PC.Root, PC.ErrGlobal);
    for (std::string &Msg : Bad)
      Msg = "VerifyCfg after " + std::string(After) + ": " + Msg;
    return Bad;
  };

  if (Opts.VerifyEach)
    if (std::vector<std::string> Bad = Verify("pipeline input"); !Bad.empty())
      return Bad;

  for (const auto &P : Passes) {
    std::string Name(P->name());
    TraceSpan Span(Opts.Telemetry, "pass." + Name);
    Stopwatch Watch;
    bool Changed = P->run(PC);
    Span.note({"changed", Changed ? 1 : 0});
    Span.close();
    if (S) {
      S->addTime("pass." + Name + ".seconds", Watch.seconds());
      S->add("pass." + Name + ".runs");
      if (Changed)
        S->add("pass." + Name + ".changed");
    }
    if (Opts.PrintAfterAll && Changed)
      std::fprintf(stderr, "*** IR after pass '%s' ***\n%s\n", Name.c_str(),
                   PC.Prog.str(PC.Ctx).c_str());
    if (Opts.VerifyEach)
      if (std::vector<std::string> Bad = Verify("pass '" + Name + "'");
          !Bad.empty())
        return Bad;
  }
  return {};
}

//===----------------------------------------------------------------------===//
// runPrepass — the options-driven entry point
//===----------------------------------------------------------------------===//

PrepassReport rmt::runPrepass(AstContext &Ctx, CfgProgram &Prog, ProcId &Root,
                              std::optional<Symbol> ErrGlobal,
                              const PrepassOptions &Opts, Stats *S) {
  PrepassReport R;
  R.LabelsBefore = Prog.Labels.size();
  R.ProcsBefore = Prog.Procs.size();

  PassPipeline PL;
  if (!Opts.Passes.empty()) {
    std::string Error;
    std::optional<PassPipeline> Parsed = PassPipeline::parse(Opts.Passes,
                                                             &Error);
    if (!Parsed) {
      R.PipelineErrors.push_back(Error);
      R.LabelsAfter = R.LabelsBefore;
      R.ProcsAfter = R.ProcsBefore;
      return R;
    }
    PL = std::move(*Parsed);
  } else {
    PL = PassPipeline::fromOptions(Opts);
  }

  PipelineOptions PO;
  PO.VerifyEach = Opts.VerifyEach || std::getenv("RMT_VERIFY_EACH") != nullptr;
  PO.PrintAfterAll = Opts.PrintAfterAll;
  PO.Telemetry = Opts.Telemetry;

  TraceSpan Span(PO.Telemetry, "prepass.pipeline",
                 {{"passes", PL.str()}, {"labels", R.LabelsBefore}});
  PassContext PC{Ctx, Prog, Root, ErrGlobal, R};
  R.PipelineErrors = PL.run(PC, PO, S);
  Span.note({"labels_after", Prog.Labels.size()});
  Span.close();

  R.LabelsAfter = Prog.Labels.size();
  R.ProcsAfter = Prog.Procs.size();
  return R;
}
