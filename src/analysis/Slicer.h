//===- Slicer.h - Cone-of-influence query slicing ---------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Slices a lowered program against its reachability query, keeping exactly
/// the statements that can influence the verdict.
///
/// The query asks for a terminating execution of the root (with the $err
/// global true on exit when the program came from assert instrumentation).
/// Two things influence it: which paths can complete — governed by `assume`
/// conditions — and the value of $err at exit. The slicer therefore:
///
///  1. computes a flow-insensitive *relevance* closure over variables,
///     seeded with every variable read by an assume and with $err, closed
///     under assignment, call-argument and call-result dataflow;
///  2. runs a backward *strong liveness* pass per procedure (an instance of
///     the Dataflow.h framework) with the relevant globals and returns live
///     at procedure exit, and deletes assignments and havocs whose target is
///     dead — their value can never reach an assume or the query variable;
///  3. elides calls to procedures whose body is nothing but skips: such a
///     callee always returns, and its (never-assigned) returns are
///     nondeterministic, so the call is equivalent to havocking the live
///     result bindings.
///
/// Every rewrite is verdict-preserving in both directions: dropped statements
/// only produce values no surviving statement ever reads, so executions of
/// the sliced and unsliced programs are in a bijection that preserves
/// termination and the exit value of $err.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_SLICER_H
#define RMT_ANALYSIS_SLICER_H

#include "ast/AstContext.h"
#include "cfg/Cfg.h"

#include <optional>
#include <unordered_set>
#include <vector>

namespace rmt {

/// Flow-insensitive relevance closure: which variables can influence an
/// assume condition or the query variable. Globals are tracked program-wide,
/// locals (incl. params and returns) per procedure.
class Relevance {
public:
  Relevance(const CfgProgram &Prog, std::optional<Symbol> ErrGlobal);

  /// Is \p V (seen from procedure \p P) relevant to the query?
  bool relevant(ProcId P, Symbol V) const {
    if (GlobalSet.count(V))
      return RelGlobals.count(V) != 0;
    return RelLocals[P].count(V) != 0;
  }
  bool relevantGlobal(Symbol V) const { return RelGlobals.count(V) != 0; }

  size_t numRelevantGlobals() const { return RelGlobals.size(); }

private:
  std::unordered_set<Symbol> GlobalSet;
  std::unordered_set<Symbol> RelGlobals;
  std::vector<std::unordered_set<Symbol>> RelLocals;
};

/// What the slicer removed.
struct SliceReport {
  /// Assignments and havocs rewritten to `assume true`.
  unsigned StmtsDropped = 0;
  /// Variables removed from surviving havoc lists.
  unsigned HavocVarsDropped = 0;
  /// Calls to skip-only procedures elided (rewritten to havoc or skip).
  unsigned CallsElided = 0;
};

/// Slices \p Prog in place against the reachability query of \p Root.
/// \p ErrGlobal is the $err query variable; nullopt for plain termination
/// reachability. Statements are rewritten to skips rather than deleted —
/// run spliceSkips() afterwards to compact the flow graph.
SliceReport sliceForQuery(AstContext &Ctx, CfgProgram &Prog, ProcId Root,
                          std::optional<Symbol> ErrGlobal);

} // namespace rmt

#endif // RMT_ANALYSIS_SLICER_H
