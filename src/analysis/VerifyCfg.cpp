//===- VerifyCfg.cpp ------------------------------------------------------===//

#include "analysis/VerifyCfg.h"

#include <algorithm>
#include <unordered_map>

using namespace rmt;

namespace {

/// Collects diagnostics with printf-lite convenience.
class CfgVerifier {
public:
  CfgVerifier(const AstContext &Ctx, const CfgProgram &Prog, ProcId Root,
              std::optional<Symbol> ErrGlobal)
      : Ctx(Ctx), Prog(Prog), Root(Root), ErrGlobal(ErrGlobal) {}

  std::vector<std::string> run() {
    checkLabelTable();
    // Everything past the table checks indexes into Labels/Procs; bail if the
    // ids themselves are broken so we do not fault chasing them.
    if (!Out.empty())
      return std::move(Out);
    checkSuccessorClosure();
    checkAcyclicity();
    for (LabelId L = 0; L < Prog.Labels.size(); ++L)
      checkStatement(L);
    if (ErrGlobal)
      checkErrShape();
    return std::move(Out);
  }

private:
  void report(const std::string &S) { Out.push_back(S); }

  std::string procName(ProcId P) const {
    if (P >= Prog.Procs.size())
      return "<proc#" + std::to_string(P) + ">";
    return Ctx.name(Prog.Procs[P].Name);
  }

  std::string labelRef(LabelId L) const {
    std::string S = "L" + std::to_string(L);
    if (L < Prog.Labels.size() && Prog.Labels[L].Proc < Prog.Procs.size())
      S += " in " + procName(Prog.Labels[L].Proc);
    return S;
  }

  /// Labels partition among procedures; entries and back-pointers agree.
  void checkLabelTable() {
    if (Root != InvalidProc && Root >= Prog.Procs.size())
      report("root procedure id " + std::to_string(Root) +
             " out of range (program has " +
             std::to_string(Prog.Procs.size()) + " procedures)");

    std::vector<ProcId> Owner(Prog.Labels.size(), InvalidProc);
    for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
      const CfgProc &Proc = Prog.Procs[P];
      for (LabelId L : Proc.Labels) {
        if (L >= Prog.Labels.size()) {
          report("procedure " + procName(P) + " lists out-of-range label L" +
                 std::to_string(L));
          continue;
        }
        if (Owner[L] != InvalidProc)
          report("label L" + std::to_string(L) +
                 " listed by two procedures: " + procName(Owner[L]) +
                 " and " + procName(P));
        Owner[L] = P;
        if (Prog.Labels[L].Proc != P)
          report("label L" + std::to_string(L) + " listed by " + procName(P) +
                 " but its Proc back-pointer is " +
                 procName(Prog.Labels[L].Proc));
      }
      if (Proc.Entry >= Prog.Labels.size())
        report("procedure " + procName(P) + " has out-of-range entry label L" +
               std::to_string(Proc.Entry));
      else if (std::find(Proc.Labels.begin(), Proc.Labels.end(), Proc.Entry) ==
               Proc.Labels.end())
        report("entry label L" + std::to_string(Proc.Entry) +
               " of procedure " + procName(P) +
               " is not among the labels it owns");
    }
    for (LabelId L = 0; L < Prog.Labels.size(); ++L)
      if (Owner[L] == InvalidProc)
        report("label L" + std::to_string(L) +
               " is not owned by any procedure");
  }

  /// Successor sets stay inside the owning procedure's label set.
  void checkSuccessorClosure() {
    for (LabelId L = 0; L < Prog.Labels.size(); ++L) {
      const CfgLabel &Lab = Prog.Labels[L];
      for (LabelId T : Lab.Targets) {
        if (T >= Prog.Labels.size()) {
          report("label " + labelRef(L) + " has dangling successor L" +
                 std::to_string(T) + " (label table has " +
                 std::to_string(Prog.Labels.size()) + " labels)");
          continue;
        }
        if (Prog.Labels[T].Proc != Lab.Proc)
          report("label " + labelRef(L) + " has cross-procedure successor " +
                 labelRef(T) + " (flow edges must stay within one procedure)");
      }
    }
  }

  /// Intraprocedural flow and the call graph must both be acyclic
  /// (Section 3's hierarchical-program requirement). Iterative 3-color DFS;
  /// reports one witness node per offending graph.
  template <typename AdjFn>
  std::optional<uint32_t> findCycleNode(size_t N, AdjFn Adj) const {
    std::vector<uint8_t> Color(N, 0); // 0 white, 1 grey, 2 black
    std::vector<std::pair<uint32_t, size_t>> Stack;
    for (uint32_t S = 0; S < N; ++S) {
      if (Color[S] != 0)
        continue;
      Stack.emplace_back(S, 0);
      Color[S] = 1;
      while (!Stack.empty()) {
        auto &[V, I] = Stack.back();
        const auto &Next = Adj(V);
        if (I == Next.size()) {
          Color[V] = 2;
          Stack.pop_back();
          continue;
        }
        uint32_t W = Next[I++];
        if (Color[W] == 1)
          return W; // back edge: W is on the grey stack
        if (Color[W] == 0) {
          Color[W] = 1;
          Stack.emplace_back(W, 0);
        }
      }
    }
    return std::nullopt;
  }

  void checkAcyclicity() {
    for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
      const CfgProc &Proc = Prog.Procs[P];
      // DFS over the proc's labels through a dense index.
      std::unordered_map<LabelId, uint32_t> Idx;
      Idx.reserve(Proc.Labels.size());
      for (LabelId L : Proc.Labels)
        Idx.emplace(L, static_cast<uint32_t>(Idx.size()));
      std::vector<std::vector<uint32_t>> Adj(Proc.Labels.size());
      for (size_t I = 0; I < Proc.Labels.size(); ++I)
        for (LabelId T : Prog.Labels[Proc.Labels[I]].Targets)
          if (auto It = Idx.find(T); It != Idx.end())
            Adj[I].push_back(It->second);
      if (auto C = findCycleNode(Proc.Labels.size(),
                                 [&](uint32_t V) -> const std::vector<uint32_t>
                                     & { return Adj[V]; }))
        report("flow graph of procedure " + procName(P) +
               " has a cycle through label L" +
               std::to_string(Proc.Labels[*C]));
    }

    std::vector<std::vector<uint32_t>> CallAdj(Prog.Procs.size());
    for (const CfgLabel &Lab : Prog.Labels)
      if (Lab.Stmt.Kind == CfgStmtKind::Call &&
          Lab.Stmt.Callee < Prog.Procs.size())
        CallAdj[Lab.Proc].push_back(Lab.Stmt.Callee);
    if (auto C = findCycleNode(Prog.Procs.size(),
                               [&](uint32_t V) -> const std::vector<uint32_t> &
                               { return CallAdj[V]; }))
      report("call graph has a cycle through procedure " + procName(*C) +
             " (hierarchical programs require an acyclic call graph)");
  }

  /// Every variable in \p E is in scope with the type the expression claims.
  void checkExpr(LabelId L, const CfgProc &Proc, const Expr *E) {
    if (!E) {
      report("label " + labelRef(L) + " has a null expression operand");
      return;
    }
    if (!E->type())
      report("label " + labelRef(L) + " has an untyped expression");
    if (E->kind() == ExprKind::Var) {
      const Type *Declared = Proc.typeOf(E->var());
      if (!Declared)
        report("label " + labelRef(L) + " references variable '" +
               Ctx.name(E->var()) + "' which is not in scope");
      else if (E->type() && Declared != E->type())
        report("label " + labelRef(L) + " references variable '" +
               Ctx.name(E->var()) + "' at type " + E->type()->str() +
               " but it is declared " + Declared->str());
    }
    for (unsigned I = 0; I < E->numOps(); ++I)
      checkExpr(L, Proc, I == 0 ? E->op0() : I == 1 ? E->op1() : E->op2());
  }

  void checkVarList(LabelId L, const CfgProc &Proc,
                    const std::vector<Symbol> &Vars, const char *What) {
    for (Symbol V : Vars)
      if (!Proc.typeOf(V))
        report("label " + labelRef(L) + " " + What + " variable '" +
               Ctx.name(V) + "' which is not in scope");
  }

  void checkStatement(LabelId L) {
    const CfgLabel &Lab = Prog.Labels[L];
    const CfgProc &Proc = Prog.Procs[Lab.Proc];
    const CfgStmt &S = Lab.Stmt;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      checkExpr(L, Proc, S.E);
      if (S.E && S.E->type() && !S.E->type()->isBool())
        report("assume at label " + labelRef(L) +
               " has non-bool condition of type " + S.E->type()->str());
      break;
    case CfgStmtKind::Assign: {
      checkExpr(L, Proc, S.E);
      const Type *Declared = Proc.typeOf(S.Target);
      if (!Declared)
        report("assignment at label " + labelRef(L) + " targets variable '" +
               Ctx.name(S.Target) + "' which is not in scope");
      else if (S.E && S.E->type() && S.E->type() != Declared)
        report("assignment at label " + labelRef(L) + " stores a " +
               S.E->type()->str() + " into variable '" + Ctx.name(S.Target) +
               "' of type " + Declared->str());
      break;
    }
    case CfgStmtKind::Havoc:
      checkVarList(L, Proc, S.Vars, "havocs");
      break;
    case CfgStmtKind::Call: {
      if (S.Callee >= Prog.Procs.size()) {
        report("call at label " + labelRef(L) +
               " targets out-of-range procedure id " +
               std::to_string(S.Callee));
        break;
      }
      const CfgProc &Callee = Prog.Procs[S.Callee];
      if (S.Args.size() != Callee.Params.size())
        report("call to " + procName(S.Callee) + " at label " + labelRef(L) +
               " passes " + std::to_string(S.Args.size()) +
               " arguments but the signature has " +
               std::to_string(Callee.Params.size()) + " parameters");
      if (S.Vars.size() != Callee.Returns.size())
        report("call to " + procName(S.Callee) + " at label " + labelRef(L) +
               " binds " + std::to_string(S.Vars.size()) +
               " results but the signature has " +
               std::to_string(Callee.Returns.size()) + " returns");
      for (size_t I = 0; I < S.Args.size(); ++I) {
        checkExpr(L, Proc, S.Args[I]);
        if (I < Callee.Params.size() && S.Args[I] && S.Args[I]->type() &&
            S.Args[I]->type() != Callee.Params[I].Ty)
          report("call to " + procName(S.Callee) + " at label " + labelRef(L) +
                 " passes a " + S.Args[I]->type()->str() + " for parameter '" +
                 Ctx.name(Callee.Params[I].Name) + "' of type " +
                 Callee.Params[I].Ty->str());
      }
      checkVarList(L, Proc, S.Vars, "binds call result to");
      for (size_t I = 0; I < S.Vars.size() && I < Callee.Returns.size(); ++I)
        if (const Type *Declared = Proc.typeOf(S.Vars[I]);
            Declared && Declared != Callee.Returns[I].Ty)
          report("call to " + procName(S.Callee) + " at label " + labelRef(L) +
                 " binds return '" + Ctx.name(Callee.Returns[I].Name) +
                 "' of type " + Callee.Returns[I].Ty->str() +
                 " to variable '" + Ctx.name(S.Vars[I]) + "' of type " +
                 Declared->str());
      break;
    }
    }
  }

  /// Instrumentation shape of the reachability query variable: a bool global
  /// that passes may rewrite but must never havoc or bind as a call result,
  /// and whose assignments stay bool-typed. (Stronger shape checks — e.g.
  /// "every assert became a $err := true" — would reject legitimate prepass
  /// rewrites like slicing away an unreachable assert.)
  void checkErrShape() {
    Symbol Err = *ErrGlobal;
    const Type *ErrTy = nullptr;
    for (const VarDecl &G : Prog.Globals)
      if (G.Name == Err)
        ErrTy = G.Ty;
    if (!ErrTy) {
      report("query variable '" + Ctx.name(Err) +
             "' is not declared as a global");
      return;
    }
    if (!ErrTy->isBool())
      report("query variable '" + Ctx.name(Err) + "' has type " +
             ErrTy->str() + " but the instrumentation requires bool");

    for (LabelId L = 0; L < Prog.Labels.size(); ++L) {
      const CfgStmt &S = Prog.Labels[L].Stmt;
      switch (S.Kind) {
      case CfgStmtKind::Assign:
        if (S.Target == Err && S.E && S.E->type() && !S.E->type()->isBool())
          report("assignment to query variable '" + Ctx.name(Err) +
                 "' at label " + labelRef(L) + " has non-bool type " +
                 S.E->type()->str());
        break;
      case CfgStmtKind::Havoc:
        for (Symbol V : S.Vars)
          if (V == Err)
            report("query variable '" + Ctx.name(Err) +
                   "' is havocked at label " + labelRef(L) +
                   " (the instrumentation bit must stay deterministic)");
        break;
      case CfgStmtKind::Call:
        for (Symbol V : S.Vars)
          if (V == Err)
            report("query variable '" + Ctx.name(Err) +
                   "' is bound as a call result at label " + labelRef(L));
        break;
      case CfgStmtKind::Assume:
        break;
      }
    }
  }

  const AstContext &Ctx;
  const CfgProgram &Prog;
  ProcId Root;
  std::optional<Symbol> ErrGlobal;
  std::vector<std::string> Out;
};

} // namespace

std::vector<std::string> rmt::verifyCfg(const AstContext &Ctx,
                                        const CfgProgram &Prog, ProcId Root,
                                        std::optional<Symbol> ErrGlobal) {
  return CfgVerifier(Ctx, Prog, Root, ErrGlobal).run();
}
