//===- Slicer.cpp ---------------------------------------------------------===//

#include "analysis/Slicer.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <set>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Relevance closure
//===----------------------------------------------------------------------===//

Relevance::Relevance(const CfgProgram &Prog, std::optional<Symbol> ErrGlobal) {
  for (const VarDecl &G : Prog.Globals)
    GlobalSet.insert(G.Name);
  RelLocals.resize(Prog.Procs.size());

  auto MarkVar = [&](ProcId P, Symbol V) {
    if (GlobalSet.count(V))
      return RelGlobals.insert(V).second;
    return RelLocals[P].insert(V).second;
  };
  auto MarkExpr = [&](ProcId P, const Expr *E) {
    std::set<Symbol> Vars;
    collectExprVars(E, Vars);
    bool Any = false;
    for (Symbol V : Vars)
      Any |= MarkVar(P, V);
    return Any;
  };

  // Seeds: the query variable and everything an assume reads.
  if (ErrGlobal)
    RelGlobals.insert(*ErrGlobal);
  for (const CfgLabel &Lbl : Prog.Labels)
    if (Lbl.Stmt.Kind == CfgStmtKind::Assume)
      MarkExpr(Lbl.Proc, Lbl.Stmt.E);

  // Close under dataflow into relevant variables. The closure crosses call
  // boundaries in both directions (results pull callee returns, parameters
  // pull caller arguments), so iterate to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const CfgLabel &Lbl : Prog.Labels) {
      const CfgStmt &S = Lbl.Stmt;
      ProcId P = Lbl.Proc;
      switch (S.Kind) {
      case CfgStmtKind::Assume:
      case CfgStmtKind::Havoc:
        break;
      case CfgStmtKind::Assign:
        if (relevant(P, S.Target))
          Changed |= MarkExpr(P, S.E);
        break;
      case CfgStmtKind::Call: {
        const CfgProc &Q = Prog.proc(S.Callee);
        for (unsigned I = 0; I < S.Vars.size() && I < Q.Returns.size(); ++I)
          if (relevant(P, S.Vars[I]))
            Changed |= MarkVar(S.Callee, Q.Returns[I].Name);
        for (unsigned I = 0; I < S.Args.size() && I < Q.Params.size(); ++I)
          if (relevant(S.Callee, Q.Params[I].Name))
            Changed |= MarkExpr(P, S.Args[I]);
        break;
      }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Strong liveness
//===----------------------------------------------------------------------===//

namespace {

/// Backward strong liveness restricted to query-relevant variables. A
/// variable is live when its current value can reach an assume or the query
/// variable at procedure exit.
class StrongLiveness {
public:
  using Value = std::set<Symbol>;
  static constexpr FlowDirection Direction = FlowDirection::Backward;

  StrongLiveness(const CfgProgram &Prog, const Relevance &Rel,
                 const std::vector<ProcEffects> &FX, Value ExitLive)
      : Prog(Prog), Rel(Rel), FX(FX), ExitLive(std::move(ExitLive)) {}

  Value bottom() const { return {}; }
  Value boundary() const { return ExitLive; }
  bool join(Value &Into, const Value &From) const {
    bool Changed = false;
    for (Symbol V : From)
      Changed |= Into.insert(V).second;
    return Changed;
  }

  Value transfer(LabelId, const CfgStmt &S, const Value &Post) const {
    Value Pre = Post;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      collectExprVars(S.E, Pre);
      break;
    case CfgStmtKind::Assign:
      // Strong: the RHS only matters if the target is live.
      if (Pre.erase(S.Target))
        collectExprVars(S.E, Pre);
      break;
    case CfgStmtKind::Havoc:
      for (Symbol V : S.Vars)
        Pre.erase(V);
      break;
    case CfgStmtKind::Call: {
      // Result bindings are definitely assigned on return; the callee may
      // read relevant globals and any argument feeding a relevant parameter.
      for (Symbol V : S.Vars)
        Pre.erase(V);
      const CfgProc &Q = Prog.proc(S.Callee);
      for (unsigned I = 0; I < S.Args.size() && I < Q.Params.size(); ++I)
        if (Rel.relevant(S.Callee, Q.Params[I].Name))
          collectExprVars(S.Args[I], Pre);
      for (Symbol G : FX[S.Callee].UseGlobals)
        if (Rel.relevantGlobal(G))
          Pre.insert(G);
      break;
    }
    }
    return Pre;
  }

private:
  const CfgProgram &Prog;
  const Relevance &Rel;
  const std::vector<ProcEffects> &FX;
  Value ExitLive;
};

void toSkip(AstContext &Ctx, CfgStmt &S) {
  S.Kind = CfgStmtKind::Assume;
  S.E = Ctx.tBool(true);
  S.Vars.clear();
  S.Args.clear();
  S.Callee = InvalidProc;
}

bool isSkipStmt(const CfgStmt &S) {
  return S.Kind == CfgStmtKind::Assume && S.E &&
         S.E->kind() == ExprKind::BoolLit && S.E->boolValue();
}

} // namespace

//===----------------------------------------------------------------------===//
// The slicing pass
//===----------------------------------------------------------------------===//

SliceReport rmt::sliceForQuery(AstContext &Ctx, CfgProgram &Prog, ProcId Root,
                               std::optional<Symbol> ErrGlobal) {
  (void)Root; // every procedure's exit feeds some caller; no root special-case
  SliceReport Report;
  Relevance Rel(Prog, ErrGlobal);
  std::vector<ProcEffects> FX = computeProcEffects(Prog);

  // Procedures whose every label is a skip after slicing: calls to them are
  // equivalent to havocking the live result bindings (the callee always
  // returns and never assigns its returns). Callees first so a caller can
  // elide calls into procedures the slicer just emptied.
  std::vector<char> PureSkip(Prog.Procs.size(), 0);

  for (ProcId P : Prog.bottomUpProcOrder()) {
    const CfgProc &Proc = Prog.proc(P);

    std::set<Symbol> ExitLive;
    for (const VarDecl &G : Prog.Globals)
      if (Rel.relevantGlobal(G.Name))
        ExitLive.insert(G.Name);
    for (const VarDecl &R : Proc.Returns)
      if (Rel.relevant(P, R.Name))
        ExitLive.insert(R.Name);

    ProcFlow Flow(Prog, P);
    StrongLiveness A(Prog, Rel, FX, std::move(ExitLive));
    DataflowSolver<StrongLiveness> Solver(Flow, A);
    Solver.solve();

    bool AllSkip = true;
    for (LabelId L : Proc.Labels) {
      CfgStmt &S = Prog.Labels[L].Stmt;
      const std::set<Symbol> &Post = Solver.post(L);
      switch (S.Kind) {
      case CfgStmtKind::Assume:
        break;
      case CfgStmtKind::Assign:
        if (!Post.count(S.Target)) {
          toSkip(Ctx, S);
          ++Report.StmtsDropped;
        }
        break;
      case CfgStmtKind::Havoc: {
        std::vector<Symbol> Live;
        for (Symbol V : S.Vars)
          if (Post.count(V))
            Live.push_back(V);
        if (Live.empty()) {
          Report.HavocVarsDropped += S.Vars.size();
          toSkip(Ctx, S);
          ++Report.StmtsDropped;
        } else {
          Report.HavocVarsDropped +=
              static_cast<unsigned>(S.Vars.size() - Live.size());
          S.Vars = std::move(Live);
        }
        break;
      }
      case CfgStmtKind::Call:
        if (PureSkip[S.Callee]) {
          std::vector<Symbol> Live;
          for (Symbol V : S.Vars)
            if (Post.count(V))
              Live.push_back(V);
          ++Report.CallsElided;
          if (Live.empty()) {
            toSkip(Ctx, S);
          } else {
            S.Kind = CfgStmtKind::Havoc;
            S.E = nullptr;
            S.Vars = std::move(Live);
            S.Args.clear();
            S.Callee = InvalidProc;
          }
        }
        break;
      }
      AllSkip &= isSkipStmt(Prog.Labels[L].Stmt);
    }
    PureSkip[P] = AllSkip ? 1 : 0;
  }
  return Report;
}
