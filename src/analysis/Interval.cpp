//===- Interval.cpp -------------------------------------------------------===//

#include "analysis/Interval.h"

using namespace rmt;

namespace {

/// Saturating addition without UB.
bool addOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}

bool mulOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

} // namespace

Interval Interval::join(const Interval &O) const {
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  Interval R;
  R.HasLo = HasLo && O.HasLo;
  R.HasHi = HasHi && O.HasHi;
  if (R.HasLo)
    R.Lo = std::min(Lo, O.Lo);
  if (R.HasHi)
    R.Hi = std::max(Hi, O.Hi);
  return R;
}

Interval Interval::meet(const Interval &O) const {
  if (Empty || O.Empty)
    return bottom();
  Interval R;
  R.HasLo = HasLo || O.HasLo;
  R.HasHi = HasHi || O.HasHi;
  R.Lo = HasLo ? (O.HasLo ? std::max(Lo, O.Lo) : Lo) : O.Lo;
  R.Hi = HasHi ? (O.HasHi ? std::min(Hi, O.Hi) : Hi) : O.Hi;
  if (R.HasLo && R.HasHi && R.Lo > R.Hi)
    return bottom();
  return R;
}

Interval Interval::add(const Interval &O) const {
  if (Empty || O.Empty)
    return bottom();
  Interval R;
  int64_t V;
  if (HasLo && O.HasLo && !addOverflows(Lo, O.Lo, V)) {
    R.HasLo = true;
    R.Lo = V;
  }
  if (HasHi && O.HasHi && !addOverflows(Hi, O.Hi, V)) {
    R.HasHi = true;
    R.Hi = V;
  }
  return R;
}

Interval Interval::sub(const Interval &O) const { return add(O.neg()); }

Interval Interval::neg() const {
  if (Empty)
    return bottom();
  Interval R;
  if (HasHi && Hi != INT64_MIN) {
    R.HasLo = true;
    R.Lo = -Hi;
  }
  if (HasLo && Lo != INT64_MIN) {
    R.HasHi = true;
    R.Hi = -Lo;
  }
  return R;
}

Interval Interval::mul(const Interval &O) const {
  if (Empty || O.Empty)
    return bottom();
  // Only fully bounded multiplication is tracked; anything else is top.
  if (!HasLo || !HasHi || !O.HasLo || !O.HasHi)
    return top();
  int64_t Candidates[4];
  int64_t Pairs[4][2] = {{Lo, O.Lo}, {Lo, O.Hi}, {Hi, O.Lo}, {Hi, O.Hi}};
  for (int I = 0; I < 4; ++I)
    if (mulOverflows(Pairs[I][0], Pairs[I][1], Candidates[I]))
      return top();
  int64_t MinV = Candidates[0], MaxV = Candidates[0];
  for (int I = 1; I < 4; ++I) {
    MinV = std::min(MinV, Candidates[I]);
    MaxV = std::max(MaxV, Candidates[I]);
  }
  return bounded(MinV, MaxV);
}

Interval Interval::ltCmp(const Interval &O) const {
  if (Empty || O.Empty)
    return bottom();
  if (HasHi && O.HasLo && Hi < O.Lo)
    return constant(1);
  if (HasLo && O.HasHi && Lo >= O.Hi)
    return constant(0);
  return boolTop();
}

Interval Interval::leCmp(const Interval &O) const {
  if (Empty || O.Empty)
    return bottom();
  if (HasHi && O.HasLo && Hi <= O.Lo)
    return constant(1);
  if (HasLo && O.HasHi && Lo > O.Hi)
    return constant(0);
  return boolTop();
}

Interval Interval::eqCmp(const Interval &O) const {
  if (Empty || O.Empty)
    return bottom();
  if (isConstant() && O.isConstant() && Lo == O.Lo)
    return constant(1);
  if (meet(O).isBottom())
    return constant(0);
  return boolTop();
}

std::string Interval::str() const {
  if (Empty)
    return "⊥";
  std::string L = HasLo ? std::to_string(Lo) : "-inf";
  std::string H = HasHi ? std::to_string(Hi) : "+inf";
  return "[" + L + ", " + H + "]";
}
