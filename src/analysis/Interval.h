//===- Interval.h - Integer interval domain ---------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic interval abstract domain over mathematical integers (booleans
/// embed as [0,1]). Used by the invariant-generation prepass that stands in
/// for Corral's Houdini ("Corral uses invariant generation techniques as
/// pre-pass; any inferred invariant is injected into the program as an
/// assume statement", Section 4). Hierarchical programs are acyclic, so no
/// widening is needed.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_INTERVAL_H
#define RMT_ANALYSIS_INTERVAL_H

#include <algorithm>
#include <cstdint>
#include <string>

namespace rmt {

/// A (possibly unbounded) integer interval. The empty interval is bottom.
class Interval {
public:
  /// Top: (-inf, +inf).
  Interval() = default;
  static Interval top() { return Interval(); }
  static Interval bottom() {
    Interval I;
    I.Empty = true;
    return I;
  }
  static Interval constant(int64_t V) { return bounded(V, V); }
  static Interval bounded(int64_t Lo, int64_t Hi) {
    Interval I;
    I.HasLo = I.HasHi = true;
    I.Lo = Lo;
    I.Hi = Hi;
    if (Lo > Hi)
      I.Empty = true;
    return I;
  }
  static Interval atLeast(int64_t Lo) {
    Interval I;
    I.HasLo = true;
    I.Lo = Lo;
    return I;
  }
  static Interval atMost(int64_t Hi) {
    Interval I;
    I.HasHi = true;
    I.Hi = Hi;
    return I;
  }
  /// The boolean embedding [0,1].
  static Interval boolTop() { return bounded(0, 1); }

  bool isBottom() const { return Empty; }
  bool isTop() const { return !Empty && !HasLo && !HasHi; }
  bool hasLo() const { return !Empty && HasLo; }
  bool hasHi() const { return !Empty && HasHi; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }
  bool isConstant() const { return hasLo() && hasHi() && Lo == Hi; }

  bool contains(int64_t V) const {
    return !Empty && (!HasLo || Lo <= V) && (!HasHi || V <= Hi);
  }

  friend bool operator==(const Interval &A, const Interval &B) {
    if (A.Empty || B.Empty)
      return A.Empty == B.Empty;
    return A.HasLo == B.HasLo && A.HasHi == B.HasHi &&
           (!A.HasLo || A.Lo == B.Lo) && (!A.HasHi || A.Hi == B.Hi);
  }

  /// Least upper bound.
  Interval join(const Interval &O) const;
  /// Greatest lower bound.
  Interval meet(const Interval &O) const;

  // Abstract arithmetic (saturating; overflow widens to unbounded).
  Interval add(const Interval &O) const;
  Interval sub(const Interval &O) const;
  Interval neg() const;
  Interval mul(const Interval &O) const;

  /// Abstract comparison A < B as a boolean interval ([1,1] definitely,
  /// [0,0] definitely not, [0,1] unknown).
  Interval ltCmp(const Interval &O) const;
  Interval leCmp(const Interval &O) const;
  Interval eqCmp(const Interval &O) const;

  std::string str() const;

private:
  bool Empty = false;
  bool HasLo = false;
  bool HasHi = false;
  int64_t Lo = 0;
  int64_t Hi = 0;
};

} // namespace rmt

#endif // RMT_ANALYSIS_INTERVAL_H
