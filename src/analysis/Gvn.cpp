//===- Gvn.cpp ------------------------------------------------------------===//

#include "analysis/Gvn.h"

#include "analysis/Dataflow.h"

#include <array>
#include <cassert>
#include <map>
#include <set>

using namespace rmt;

namespace {

using VN = uint32_t;

/// Value numbers 0 and 1 are the boolean literals; everything else is
/// allocated on demand.
constexpr VN VNFalse = 0;
constexpr VN VNTrue = 1;

/// Key tags. A key is (tag, a, b, c); unused slots stay zero so keys compare
/// cheaply.
enum class VTag : uint64_t {
  BoolLit, ///< a = 0/1
  IntLit,  ///< a = value (as uint64 bit pattern)
  BvLit,   ///< a = width, b = payload
  Use,     ///< a = variable symbol id, b = reading label — "the value this
           ///< variable holds when that label executes" (well-defined per
           ///< activation because flow graphs are acyclic)
  Def,     ///< a = variable symbol id, b = defining (havoc/call) label
  Unary,   ///< a = op, b = operand
  Binary,  ///< a = op, b/c = operands (commutative ops sorted)
  Ite,     ///< a = cond, b = then, c = else
  Select,  ///< a = array, b = index
  Store,   ///< a = array, b = index; the value rides in Extra
};

struct VKey {
  VTag Tag;
  std::array<uint64_t, 3> Ops{0, 0, 0};
  /// Fourth operand (Store value); keys stay one cache line.
  uint64_t Extra = 0;

  friend bool operator<(const VKey &A, const VKey &B) {
    if (A.Tag != B.Tag)
      return A.Tag < B.Tag;
    if (A.Ops != B.Ops)
      return A.Ops < B.Ops;
    return A.Extra < B.Extra;
  }
};

/// SMT-LIB Euclidean division/remainder, mirrored from evalConstExpr so the
/// two folders can never disagree.
int64_t euclideanMod(int64_t A, int64_t B) {
  int64_t R = A % B;
  if (R < 0)
    R += (B > 0) ? B : -B;
  return R;
}

int64_t euclideanDiv(int64_t A, int64_t B) {
  return (A - euclideanMod(A, B)) / B;
}

/// The per-procedure value table: hash-consed value numbers with literal
/// tracking and algebraic simplification at allocation time. Because every
/// allocation is keyed, re-running a transfer function (worklist revisits)
/// hands back identical numbers — the table is idempotent by construction.
class ValueTable {
public:
  explicit ValueTable(const AstContext &Ctx) : Ctx(Ctx) {
    VN F = intern({VTag::BoolLit, {0, 0, 0}}, Ctx.boolType());
    VN T = intern({VTag::BoolLit, {1, 0, 0}}, Ctx.boolType());
    (void)F;
    (void)T;
    assert(F == VNFalse && T == VNTrue);
  }

  const Type *typeOf(VN V) const { return Types[V]; }
  const VKey &keyOf(VN V) const { return Keys[V]; }

  bool isBoolLit(VN V, bool &Val) const {
    if (Keys[V].Tag != VTag::BoolLit)
      return false;
    Val = Keys[V].Ops[0] != 0;
    return true;
  }
  bool isIntLit(VN V, int64_t &Val) const {
    if (Keys[V].Tag != VTag::IntLit)
      return false;
    Val = static_cast<int64_t>(Keys[V].Ops[0]);
    return true;
  }
  bool isBvLit(VN V, uint64_t &Val) const {
    if (Keys[V].Tag != VTag::BvLit)
      return false;
    Val = Keys[V].Ops[1];
    return true;
  }
  bool isAnyLit(VN V) const {
    VTag T = Keys[V].Tag;
    return T == VTag::BoolLit || T == VTag::IntLit || T == VTag::BvLit;
  }

  VN boolLit(bool B) { return B ? VNTrue : VNFalse; }
  VN intLit(int64_t V) {
    return intern({VTag::IntLit, {static_cast<uint64_t>(V), 0, 0}},
                  Ctx.intType());
  }
  VN bvLit(uint64_t V, const Type *Ty) {
    return intern({VTag::BvLit, {Ty->bvWidth(), V, 0}}, Ty);
  }

  VN usePoint(Symbol Var, LabelId L, const Type *Ty) {
    return intern({VTag::Use, {Var.id(), L, 0}}, Ty);
  }
  VN defPoint(Symbol Var, LabelId L, const Type *Ty) {
    return intern({VTag::Def, {Var.id(), L, 0}}, Ty);
  }

  VN makeUnary(UnOp Op, VN A, const Type *Ty) {
    bool B;
    int64_t I;
    switch (Op) {
    case UnOp::Not:
      if (isBoolLit(A, B))
        return boolLit(!B);
      if (Keys[A].Tag == VTag::Unary &&
          static_cast<UnOp>(Keys[A].Ops[0]) == UnOp::Not)
        return static_cast<VN>(Keys[A].Ops[1]); // !!v == v
      break;
    case UnOp::Neg:
      if (isIntLit(A, I) && I != INT64_MIN)
        return intLit(-I);
      if (Keys[A].Tag == VTag::Unary &&
          static_cast<UnOp>(Keys[A].Ops[0]) == UnOp::Neg &&
          Ty->isInt()) // -(-v) == v over unbounded ints
        return static_cast<VN>(Keys[A].Ops[1]);
      break;
    }
    return intern({VTag::Unary, {static_cast<uint64_t>(Op), A, 0}}, Ty);
  }

  VN makeBinary(BinOp Op, VN A, VN B, const Type *Ty) {
    if (isCommutative(Op) && B < A)
      std::swap(A, B);
    if (std::optional<VN> S = simplifyBinary(Op, A, B, Ty))
      return *S;
    return intern({VTag::Binary, {static_cast<uint64_t>(Op), A, B}}, Ty);
  }

  VN makeIte(VN C, VN T, VN E, const Type *Ty) {
    bool B;
    if (isBoolLit(C, B))
      return B ? T : E;
    if (T == E)
      return T;
    return intern({VTag::Ite, {C, T, E}}, Ty);
  }

  VN makeSelect(VN Array, VN Index, const Type *Ty) {
    // Walk store chains: select(store(a, i, v), j) is v when i == j, and
    // skips to a when i and j are distinct literals.
    VN Base = Array;
    while (Keys[Base].Tag == VTag::Store) {
      VN StIdx = static_cast<VN>(Keys[Base].Ops[1]);
      if (StIdx == Index)
        return static_cast<VN>(Keys[Base].Extra);
      if (!literallyDistinct(StIdx, Index))
        break;
      Base = static_cast<VN>(Keys[Base].Ops[0]);
    }
    return intern({VTag::Select, {Base, Index, 0}}, Ty);
  }

  VN makeStore(VN Array, VN Index, VN Value, const Type *Ty) {
    VKey K{VTag::Store, {Array, Index, 0}};
    K.Extra = Value;
    return intern(K, Ty);
  }

private:
  static bool isCommutative(BinOp Op) {
    switch (Op) {
    case BinOp::Add:
    case BinOp::Mul:
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Iff:
      return true;
    default:
      return false;
    }
  }

  /// True when A and B are literals that denote provably distinct values.
  bool literallyDistinct(VN A, VN B) const {
    if (A == B)
      return false;
    int64_t IA, IB;
    if (isIntLit(A, IA) && isIntLit(B, IB))
      return IA != IB;
    uint64_t VA, VB;
    if (isBvLit(A, VA) && isBvLit(B, VB))
      return Keys[A].Ops[0] == Keys[B].Ops[0] && VA != VB;
    bool BA, BB;
    if (isBoolLit(A, BA) && isBoolLit(B, BB))
      return BA != BB;
    return false;
  }

  std::optional<VN> simplifyBinary(BinOp Op, VN A, VN B, const Type *Ty) {
    bool BA = false, BB = false;
    int64_t IA, IB;
    bool LitA = isBoolLit(A, BA), LitB = isBoolLit(B, BB);

    switch (Op) {
    // Boolean connectives: identity/absorbing elements, then full folds.
    case BinOp::And:
      if (LitA)
        return BA ? B : VNFalse;
      if (LitB)
        return BB ? A : VNFalse;
      if (A == B)
        return A;
      return std::nullopt;
    case BinOp::Or:
      if (LitA)
        return BA ? VNTrue : B;
      if (LitB)
        return BB ? VNTrue : A;
      if (A == B)
        return A;
      return std::nullopt;
    case BinOp::Implies:
      if (LitA)
        return BA ? B : VNTrue;
      if (LitB && BB)
        return VNTrue;
      if (LitB && !BB)
        return makeUnary(UnOp::Not, A, Ty);
      if (A == B)
        return VNTrue;
      return std::nullopt;
    case BinOp::Iff:
      if (LitA)
        return BA ? B : makeUnary(UnOp::Not, B, Ty);
      if (LitB)
        return BB ? A : makeUnary(UnOp::Not, A, Ty);
      if (A == B)
        return VNTrue;
      return std::nullopt;

    // Congruence decides (in)equality without looking at the values.
    case BinOp::Eq:
      if (A == B)
        return VNTrue;
      if (literallyDistinct(A, B))
        return VNFalse;
      if (LitA && LitB)
        return boolLit(BA == BB);
      return std::nullopt;
    case BinOp::Ne:
      if (A == B)
        return VNFalse;
      if (literallyDistinct(A, B))
        return VNTrue;
      if (LitA && LitB)
        return boolLit(BA != BB);
      return std::nullopt;

    case BinOp::Lt:
    case BinOp::Gt:
      if (A == B)
        return VNFalse;
      break;
    case BinOp::Le:
    case BinOp::Ge:
      if (A == B)
        return VNTrue;
      break;
    case BinOp::Sub:
      // x - x == 0 holds for unbounded ints and wraps to 0 for bitvectors.
      if (A == B)
        return Ty->isBv() ? bvLit(0, Ty) : intLit(0);
      break;
    default:
      break;
    }

    // Arithmetic identities valid for both int and bv semantics.
    auto IsZero = [&](VN V) {
      int64_t I;
      uint64_t U;
      return (isIntLit(V, I) && I == 0) || (isBvLit(V, U) && U == 0);
    };
    auto IsOne = [&](VN V) {
      int64_t I;
      uint64_t U;
      return (isIntLit(V, I) && I == 1) || (isBvLit(V, U) && U == 1);
    };
    switch (Op) {
    case BinOp::Add:
      if (IsZero(A))
        return B;
      if (IsZero(B))
        return A;
      break;
    case BinOp::Sub:
      if (IsZero(B))
        return A;
      break;
    case BinOp::Mul:
      if (IsOne(A))
        return B;
      if (IsOne(B))
        return A;
      if (IsZero(A))
        return A;
      if (IsZero(B))
        return B;
      break;
    default:
      break;
    }

    // Literal folding over the mathematical integers (bitvectors carry
    // modular semantics we leave to the solver, mirroring evalConstExpr).
    if (!isIntLit(A, IA) || !isIntLit(B, IB))
      return std::nullopt;
    int64_t Out;
    switch (Op) {
    case BinOp::Add:
      if (!__builtin_add_overflow(IA, IB, &Out))
        return intLit(Out);
      return std::nullopt;
    case BinOp::Sub:
      if (!__builtin_sub_overflow(IA, IB, &Out))
        return intLit(Out);
      return std::nullopt;
    case BinOp::Mul:
      if (!__builtin_mul_overflow(IA, IB, &Out))
        return intLit(Out);
      return std::nullopt;
    case BinOp::Div:
      // x div 0 is uninterpreted in SMT; never fold it.
      if (IB == 0 || (IA == INT64_MIN && IB == -1))
        return std::nullopt;
      return intLit(euclideanDiv(IA, IB));
    case BinOp::Mod:
      if (IB == 0)
        return std::nullopt;
      return intLit(euclideanMod(IA, IB));
    case BinOp::Lt:
      return boolLit(IA < IB);
    case BinOp::Le:
      return boolLit(IA <= IB);
    case BinOp::Gt:
      return boolLit(IA > IB);
    case BinOp::Ge:
      return boolLit(IA >= IB);
    default:
      return std::nullopt;
    }
  }

  VN intern(const VKey &K, const Type *Ty) {
    auto [It, New] = Interned.try_emplace(K, static_cast<VN>(Keys.size()));
    if (New) {
      Keys.push_back(K);
      Types.push_back(Ty);
    }
    return It->second;
  }

  const AstContext &Ctx;
  std::map<VKey, VN> Interned;
  std::vector<VKey> Keys;
  std::vector<const Type *> Types;
};

//===----------------------------------------------------------------------===//
// The dataflow lattice
//===----------------------------------------------------------------------===//

/// Must-state at a program point: variable -> value number bindings valid on
/// every incoming path, plus the set of value numbers known true on every
/// incoming path. Bottom is "unreachable".
struct GvnEnv {
  bool Bottom = false;
  std::map<Symbol, VN> VarVN;
  std::set<VN> TrueVNs;

  static GvnEnv bottomEnv() {
    GvnEnv E;
    E.Bottom = true;
    return E;
  }

  bool joinWith(const GvnEnv &O) {
    if (O.Bottom)
      return false;
    if (Bottom) {
      *this = O;
      return true;
    }
    bool Changed = false;
    for (auto It = VarVN.begin(); It != VarVN.end();) {
      auto OIt = O.VarVN.find(It->first);
      if (OIt == O.VarVN.end() || OIt->second != It->second) {
        It = VarVN.erase(It);
        Changed = true;
      } else {
        ++It;
      }
    }
    for (auto It = TrueVNs.begin(); It != TrueVNs.end();) {
      if (!O.TrueVNs.count(*It)) {
        It = TrueVNs.erase(It);
        Changed = true;
      } else {
        ++It;
      }
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// Expression numbering
//===----------------------------------------------------------------------===//

/// Numbers expressions against an environment. Reads of unbound variables
/// allocate a point value ("the value v holds when label L runs") and bind it
/// into the environment, so later reads along the same paths stay congruent.
class Numberer {
public:
  Numberer(ValueTable &VT, const CfgProc &Proc) : VT(VT), Proc(Proc) {}

  VN vnOf(const Expr *E, GvnEnv &Env, LabelId L) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      if (E->type() && E->type()->isBv())
        return VT.bvLit(static_cast<uint64_t>(E->intValue()), E->type());
      return VT.intLit(E->intValue());
    case ExprKind::BoolLit:
      return VT.boolLit(E->boolValue());
    case ExprKind::Var: {
      auto It = Env.VarVN.find(E->var());
      if (It != Env.VarVN.end())
        return It->second;
      const Type *Ty = Proc.typeOf(E->var());
      VN V = VT.usePoint(E->var(), L, Ty ? Ty : E->type());
      Env.VarVN.emplace(E->var(), V);
      return V;
    }
    case ExprKind::Unary:
      return VT.makeUnary(E->unOp(), vnOf(E->op0(), Env, L), E->type());
    case ExprKind::Binary: {
      VN A = vnOf(E->op0(), Env, L);
      VN B = vnOf(E->op1(), Env, L);
      return VT.makeBinary(E->binOp(), A, B, E->type());
    }
    case ExprKind::Ite: {
      VN C = vnOf(E->op0(), Env, L);
      VN T = vnOf(E->op1(), Env, L);
      VN F = vnOf(E->op2(), Env, L);
      return VT.makeIte(C, T, F, E->type());
    }
    case ExprKind::Select: {
      VN A = vnOf(E->op0(), Env, L);
      VN I = vnOf(E->op1(), Env, L);
      return VT.makeSelect(A, I, E->type());
    }
    case ExprKind::Store: {
      VN A = vnOf(E->op0(), Env, L);
      VN I = vnOf(E->op1(), Env, L);
      VN V = vnOf(E->op2(), Env, L);
      return VT.makeStore(A, I, V, E->type());
    }
    }
    assert(false && "unknown expression kind");
    return VNFalse;
  }

  /// Records what `assume e` (under \p Positive polarity) teaches: walks the
  /// conjunctive structure, binds variable sides of equalities, and inserts
  /// each conjunct's value number into the true-fact set. Returns false when
  /// the facts are contradictory (the path is infeasible).
  bool recordConds(const Expr *E, bool Positive, GvnEnv &Env, LabelId L) {
    switch (E->kind()) {
    case ExprKind::Unary:
      if (E->unOp() == UnOp::Not)
        return recordConds(E->op0(), !Positive, Env, L);
      break;
    case ExprKind::Binary: {
      BinOp Op = E->binOp();
      if ((Op == BinOp::And && Positive) || (Op == BinOp::Or && !Positive))
        return recordConds(E->op0(), Positive, Env, L) &&
               recordConds(E->op1(), Positive, Env, L);
      if (Op == BinOp::Implies && !Positive) // !(a ==> b)  ==  a && !b
        return recordConds(E->op0(), true, Env, L) &&
               recordConds(E->op1(), false, Env, L);
      if ((Op == BinOp::Eq && Positive) || (Op == BinOp::Ne && !Positive)) {
        VN A = vnOf(E->op0(), Env, L);
        VN B = vnOf(E->op1(), Env, L);
        // The two sides now denote the same value: rebind a variable side so
        // downstream uses collapse to one number. When both sides are
        // variables, rebinding one of them merges the classes.
        if (E->op0()->kind() == ExprKind::Var)
          Env.VarVN[E->op0()->var()] = B;
        else if (E->op1()->kind() == ExprKind::Var)
          Env.VarVN[E->op1()->var()] = A;
        return addFact(VT.makeBinary(BinOp::Eq, A, B, boolTypeOf(E)), Env);
      }
      break;
    }
    case ExprKind::Var: {
      VN Old = vnOf(E, Env, L);
      Env.VarVN[E->var()] = VT.boolLit(Positive);
      return addFact(Positive ? Old : VT.makeUnary(UnOp::Not, Old, E->type()),
                     Env);
    }
    default:
      break;
    }
    VN V = vnOf(E, Env, L);
    return addFact(Positive ? V : VT.makeUnary(UnOp::Not, V, E->type()), Env);
  }

  /// True when \p V is entailed on every path described by \p Env.
  bool entailed(VN V, const GvnEnv &Env) const {
    return V == VNTrue || Env.TrueVNs.count(V) != 0;
  }
  /// True when \p V is refuted on every path described by \p Env.
  bool refuted(VN V, GvnEnv &Env) {
    if (V == VNFalse)
      return true;
    const Type *B = VT.typeOf(V);
    return Env.TrueVNs.count(VT.makeUnary(UnOp::Not, V, B)) != 0;
  }

private:
  const Type *boolTypeOf(const Expr *E) const { return E->type(); }

  bool addFact(VN V, GvnEnv &Env) {
    if (V == VNFalse || refuted(V, Env))
      return false;
    if (V != VNTrue)
      Env.TrueVNs.insert(V);
    return true;
  }

  ValueTable &VT;
  const CfgProc &Proc;
};

//===----------------------------------------------------------------------===//
// The analysis
//===----------------------------------------------------------------------===//

class GvnAnalysis {
public:
  using Value = GvnEnv;
  static constexpr FlowDirection Direction = FlowDirection::Forward;

  GvnAnalysis(ValueTable &VT, const CfgProc &Proc,
              const std::vector<ProcEffects> &FX)
      : VT(&VT), Proc(Proc), FX(FX) {}

  Value bottom() const { return GvnEnv::bottomEnv(); }
  Value boundary() const { return GvnEnv(); }
  bool join(Value &Into, const Value &From) const {
    return Into.joinWith(From);
  }

  Value transfer(LabelId L, const CfgStmt &S, const Value &In) const {
    if (In.Bottom)
      return In;
    Value Out = In;
    Numberer N(*VT, Proc);
    switch (S.Kind) {
    case CfgStmtKind::Assume: {
      VN V = N.vnOf(S.E, Out, L);
      if (N.refuted(V, Out) || !N.recordConds(S.E, true, Out, L))
        return GvnEnv::bottomEnv();
      break;
    }
    case CfgStmtKind::Assign: {
      VN V = N.vnOf(S.E, Out, L);
      Out.VarVN[S.Target] = V;
      break;
    }
    case CfgStmtKind::Havoc:
      for (Symbol Var : S.Vars)
        killVar(Out, Var, L);
      break;
    case CfgStmtKind::Call:
      for (const Expr *A : S.Args) {
        // Arguments evaluate before the call; numbering them here keeps the
        // unknown-read bindings they introduce.
        (void)N.vnOf(A, Out, L);
      }
      for (Symbol Var : S.Vars)
        killVar(Out, Var, L);
      for (Symbol G : FX[S.Callee].ModGlobals)
        killVar(Out, G, L);
      break;
    }
    return Out;
  }

private:
  /// A definition point: the variable takes a fresh (but keyed) number.
  /// True-facts survive — they constrain *values*, which do not change when a
  /// variable is rebound.
  void killVar(GvnEnv &Env, Symbol Var, LabelId L) const {
    const Type *Ty = Proc.typeOf(Var);
    if (!Ty) // out-of-scope name; VerifyCfg reports it, we stay total
      return;
    Env.VarVN[Var] = VT->defPoint(Var, L, Ty);
  }

  ValueTable *VT;
  const CfgProc &Proc;
  const std::vector<ProcEffects> &FX;
};

//===----------------------------------------------------------------------===//
// Rewriting
//===----------------------------------------------------------------------===//

bool isLiteralExpr(const Expr *E) {
  return E->kind() == ExprKind::IntLit || E->kind() == ExprKind::BoolLit;
}

/// Rewrites expressions of one label against the solved pre-state: every
/// subexpression whose value number has a cheaper congruent leader (a
/// literal, else the smallest-named variable currently bound to that number)
/// is replaced by the leader.
class Rewriter {
public:
  Rewriter(AstContext &Ctx, ValueTable &VT, const CfgProc &Proc,
           const GvnEnv &Pre)
      : Ctx(Ctx), VT(VT), N(VT, Proc), Proc(Proc), Env(Pre) {
    // Leaders come from the *current* bindings only, which is what makes the
    // propagation sound without SSA: a variable that was redefined since the
    // value was computed is no longer bound to that number.
    for (const auto &[Var, V] : Env.VarVN)
      if (auto It = Leader.find(V); It == Leader.end() || Var < It->second)
        Leader[V] = Var;
  }

  unsigned replaced() const { return NumReplaced; }

  const Expr *rewrite(const Expr *E, LabelId L) {
    auto [NewE, V] = go(E, L);
    (void)V;
    return NewE;
  }

private:
  std::pair<const Expr *, VN> go(const Expr *E, LabelId L) {
    // Number and rewrite children first.
    const Expr *R = E;
    VN V = 0;
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return {E, N.vnOf(E, Env, L)};
    case ExprKind::Var:
      V = N.vnOf(E, Env, L);
      break;
    case ExprKind::Unary: {
      auto [A, VA] = go(E->op0(), L);
      if (A != E->op0())
        R = Ctx.tUnary(E->unOp(), A);
      V = VT.makeUnary(E->unOp(), VA, E->type());
      break;
    }
    case ExprKind::Binary: {
      auto [A, VA] = go(E->op0(), L);
      auto [B, VB] = go(E->op1(), L);
      if (A != E->op0() || B != E->op1())
        R = Ctx.tBinary(E->binOp(), A, B);
      V = VT.makeBinary(E->binOp(), VA, VB, E->type());
      break;
    }
    case ExprKind::Ite: {
      auto [C, VC] = go(E->op0(), L);
      auto [T, VT_] = go(E->op1(), L);
      auto [F, VF] = go(E->op2(), L);
      if (C != E->op0() || T != E->op1() || F != E->op2())
        R = Ctx.tIte(C, T, F);
      V = VT.makeIte(VC, VT_, VF, E->type());
      break;
    }
    case ExprKind::Select: {
      auto [A, VA] = go(E->op0(), L);
      auto [I, VI] = go(E->op1(), L);
      if (A != E->op0() || I != E->op1())
        R = Ctx.tSelect(A, I);
      V = VT.makeSelect(VA, VI, E->type());
      break;
    }
    case ExprKind::Store: {
      auto [A, VA] = go(E->op0(), L);
      auto [I, VI] = go(E->op1(), L);
      auto [W, VW] = go(E->op2(), L);
      if (A != E->op0() || I != E->op1() || W != E->op2())
        R = Ctx.tStore(A, I, W);
      V = VT.makeStore(VA, VI, VW, E->type());
      break;
    }
    }

    if (const Expr *Led = leaderFor(V, R)) {
      ++NumReplaced;
      return {Led, V};
    }
    return {R, V};
  }

  /// The replacement for value \p V at an occurrence currently spelled
  /// \p At, or null when \p At is already as cheap as it gets.
  const Expr *leaderFor(VN V, const Expr *At) {
    if (isLiteralExpr(At))
      return nullptr;
    // Literals first: they free the variable for slicing entirely.
    bool B;
    int64_t I;
    uint64_t U;
    if (VT.isBoolLit(V, B))
      return Ctx.tBool(B);
    if (VT.isIntLit(V, I))
      return Ctx.tInt(I);
    if (VT.isBvLit(V, U))
      return Ctx.tBv(U, VT.typeOf(V)->bvWidth());
    auto It = Leader.find(V);
    if (It == Leader.end())
      return nullptr;
    if (At->kind() == ExprKind::Var && At->var() == It->second)
      return nullptr;
    const Type *Ty = Proc.typeOf(It->second);
    if (!Ty || Ty != At->type())
      return nullptr;
    return Ctx.tVar(It->second, Ty);
  }

  AstContext &Ctx;
  ValueTable &VT;
  Numberer N;
  const CfgProc &Proc;
  GvnEnv Env;
  std::map<VN, Symbol> Leader;
  unsigned NumReplaced = 0;
};

//===----------------------------------------------------------------------===//
// Drivers
//===----------------------------------------------------------------------===//

GvnReport runGvnImpl(AstContext &Ctx, CfgProgram &Prog, bool Propagate,
                     bool ElimAssumes) {
  GvnReport R;
  std::vector<ProcEffects> FX = computeProcEffects(Prog);

  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    const CfgProc &Proc = Prog.proc(P);
    ValueTable VT(Ctx);
    ProcFlow Flow(Prog, P);
    GvnAnalysis A(VT, Proc, FX);
    DataflowSolver<GvnAnalysis> Solver(Flow, A);
    Solver.solve();

    for (LabelId L : Flow.topo()) {
      if (Solver.pre(L).Bottom)
        continue; // unreachable; constprop's pruning owns these
      CfgStmt &S = Prog.Labels[L].Stmt;
      // The solved states describe the original program; rewriting against
      // them stays valid because every rewrite preserves each statement's
      // value semantics.
      GvnEnv Env = Solver.pre(L);
      Numberer N(VT, Proc);
      switch (S.Kind) {
      case CfgStmtKind::Assume: {
        if (ElimAssumes && !isLiteralExpr(S.E)) {
          VN V = N.vnOf(S.E, Env, L);
          if (N.refuted(V, Env)) {
            // False on every path in: no execution passes this assume, so
            // blocking here (and cutting the dead region) changes nothing.
            S.E = Ctx.tBool(false);
            Prog.Labels[L].Targets.clear();
            ++R.ContradictedAssumes;
            break;
          }
          if (N.entailed(V, Env)) {
            // Entailed by facts that hold on every path in: the assume
            // filters nothing. Reduce to a skip for the splicer.
            S.E = Ctx.tBool(true);
            ++R.RedundantAssumes;
            break;
          }
        }
        if (Propagate) {
          Rewriter RW(Ctx, VT, Proc, Solver.pre(L));
          S.E = RW.rewrite(S.E, L);
          R.PropagatedExprs += RW.replaced();
        }
        break;
      }
      case CfgStmtKind::Assign: {
        if (Propagate) {
          Rewriter RW(Ctx, VT, Proc, Solver.pre(L));
          S.E = RW.rewrite(S.E, L);
          R.PropagatedExprs += RW.replaced();
        }
        break;
      }
      case CfgStmtKind::Call: {
        if (Propagate) {
          Rewriter RW(Ctx, VT, Proc, Solver.pre(L));
          for (const Expr *&Arg : S.Args)
            Arg = RW.rewrite(Arg, L);
          R.PropagatedExprs += RW.replaced();
        }
        break;
      }
      case CfgStmtKind::Havoc:
        break;
      }
    }
  }
  return R;
}

} // namespace

GvnReport rmt::runGvn(AstContext &Ctx, CfgProgram &Prog) {
  return runGvnImpl(Ctx, Prog, /*Propagate=*/true, /*ElimAssumes=*/false);
}

GvnReport rmt::runAssumeElim(AstContext &Ctx, CfgProgram &Prog) {
  return runGvnImpl(Ctx, Prog, /*Propagate=*/false, /*ElimAssumes=*/true);
}
