//===- PassManager.h - Registered CFG passes and pipelines ------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass-manager layer over the lowered label form. Every prepass
/// transformation is a registered `Pass` with a stable name, so pipelines can
/// be assembled from CLI strings (`--passes=constprop,gvn,slice`), timed and
/// counted per pass, printed after every step (`--print-after-all`), and
/// re-verified against the Fig. 7 structural invariants after every step
/// (`--verify-each`, see VerifyCfg.h) — the discipline LLVM's pass manager
/// and Boogie's `/trace` stack apply to their own IRs.
///
/// Builtin passes (registration order is the default pipeline order):
///
///   constprop  — constant propagation, folding, assume-false branch pruning
///   gvn        — value numbering + copy/expression propagation (Gvn.h)
///   assumeelim — drop assumes entailed by value-numbered facts (Gvn.h)
///   slice      — cone-of-influence query slicing (Slicer.h)
///   splice     — splice `assume true` skip labels out of the flow graph
///   deadproc   — drop procedures unreachable from the root
///   lint       — read-only audit of residual dead stores and unreachable
///                labels; not part of the default pipeline (the AST-level
///                `--lint` hygiene checks live in Lint.h — this pass audits
///                what the transforming passes left behind)
///   inv        — interval-invariant injection (InvariantGen.h); not part of
///                the default pipeline, appended by +Inv configurations
///
/// Passes mutate the program through a PassContext and accumulate their
/// reduction counters into the shared PrepassReport (Dataflow.h), which keeps
/// the one-line summary and "prepass.*" stats keys stable across the
/// refactor.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_PASSMANAGER_H
#define RMT_ANALYSIS_PASSMANAGER_H

#include "analysis/Dataflow.h"
#include "ast/AstContext.h"
#include "cfg/Cfg.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rmt {

/// Everything a pass may touch. Root is a reference: passes that renumber
/// procedures (deadproc) update the caller's root id.
struct PassContext {
  AstContext &Ctx;
  CfgProgram &Prog;
  ProcId &Root;
  std::optional<Symbol> ErrGlobal;
  PrepassReport &Report;
};

/// A verdict-preserving transformation over the lowered program.
class Pass {
public:
  virtual ~Pass() = default;
  /// Registry key and CLI spelling.
  virtual std::string_view name() const = 0;
  /// One-line description for --list-passes.
  virtual std::string_view description() const = 0;
  /// Runs the pass; returns true when the program changed.
  virtual bool run(PassContext &PC) = 0;
};

/// Process-wide pass factory registry. Builtins self-register on first use;
/// tests may register additional passes.
class PassRegistry {
public:
  using Factory = std::unique_ptr<Pass> (*)();

  static PassRegistry &instance();

  /// Registers \p Make under \p Name; later registrations win (tests shadow
  /// builtins).
  void registerPass(std::string_view Name, Factory Make);

  /// Instantiates the pass registered under \p Name; null when unknown.
  std::unique_ptr<Pass> create(std::string_view Name) const;

  /// Registered names in registration order (builtins first).
  std::vector<std::string> names() const;

private:
  std::vector<std::pair<std::string, Factory>> Factories;
};

/// Pipeline-wide execution knobs.
struct PipelineOptions {
  /// Run verifyCfg on the input and after every pass; a violation aborts the
  /// pipeline with the offending pass named in the diagnostics.
  bool VerifyEach = false;
  /// Dump the program to stderr after every pass that changed it.
  bool PrintAfterAll = false;
  /// Optional event recorder: each pass runs under a "pass.<name>" span so
  /// pipeline time and solver time land on one timeline (support/Trace.h).
  Trace *Telemetry = nullptr;
};

/// An ordered list of passes plus the runner. Move-only (owns the passes).
class PassPipeline {
public:
  PassPipeline() = default;
  PassPipeline(PassPipeline &&) = default;
  PassPipeline &operator=(PassPipeline &&) = default;

  void append(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }
  size_t size() const { return Passes.size(); }
  bool empty() const { return Passes.empty(); }

  /// "constprop,gvn,slice" — parseable back via parse().
  std::string str() const;

  /// Runs every pass in order. Per-pass wall time and change counters land in
  /// \p S (when given) under "pass.<name>.seconds" / ".runs" / ".changed".
  /// Returns structural-verifier diagnostics (empty on success); with
  /// VerifyEach set, the first failing pass stops the pipeline.
  std::vector<std::string> run(PassContext &PC,
                               const PipelineOptions &Opts = {},
                               Stats *S = nullptr) const;

  /// Parses a comma-separated pass list against the registry. Returns
  /// nullopt and sets \p Error on an unknown pass name.
  static std::optional<PassPipeline> parse(std::string_view Spec,
                                           std::string *Error = nullptr);

  /// The default pipeline implied by \p Opts' toggles (Opts.Passes is NOT
  /// consulted — runPrepass resolves the override).
  static PassPipeline fromOptions(const PrepassOptions &Opts);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

} // namespace rmt

#endif // RMT_ANALYSIS_PASSMANAGER_H
