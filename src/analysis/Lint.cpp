//===- Lint.cpp -----------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/Dataflow.h"
#include "cfg/Lower.h"
#include "transform/Transforms.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace rmt;

namespace {

//===----------------------------------------------------------------------===//
// Havoc-of-undeclared (direct AST walk; the checker rejects these for parsed
// programs, but builder-API programs reach verification unchecked)
//===----------------------------------------------------------------------===//

void checkHavocs(const AstContext &Ctx, const Stmt *S,
                 const std::set<Symbol> &Scope,
                 std::vector<std::pair<SrcLoc, std::string>> &Out) {
  switch (S->kind()) {
  case StmtKind::Havoc:
    for (Symbol V : S->havocVars())
      if (!Scope.count(V))
        Out.push_back({S->loc(), "havoc of undeclared variable '" +
                                     Ctx.name(V) + "'"});
    return;
  case StmtKind::If:
    for (const Stmt *C : S->thenBlock())
      checkHavocs(Ctx, C, Scope, Out);
    for (const Stmt *C : S->elseBlock())
      checkHavocs(Ctx, C, Scope, Out);
    return;
  case StmtKind::While:
    for (const Stmt *C : S->loopBody())
      checkHavocs(Ctx, C, Scope, Out);
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Lintable CFG: asserts become empty branches, loops unroll
//===----------------------------------------------------------------------===//

const Stmt *rewriteForLint(AstContext &Ctx, const Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Assert:
    // Keep the condition as a read without requiring instrumentation.
    return Ctx.ifStmt(S->condition(), {}, {}, S->loc());
  case StmtKind::If: {
    std::vector<const Stmt *> T, E;
    for (const Stmt *C : S->thenBlock())
      T.push_back(rewriteForLint(Ctx, C));
    for (const Stmt *C : S->elseBlock())
      E.push_back(rewriteForLint(Ctx, C));
    return Ctx.ifStmt(S->guard(), std::move(T), std::move(E), S->loc());
  }
  case StmtKind::While: {
    std::vector<const Stmt *> B;
    for (const Stmt *C : S->loopBody())
      B.push_back(rewriteForLint(Ctx, C));
    return Ctx.whileStmt(S->guard(), std::move(B), S->loc());
  }
  default:
    return S;
  }
}

//===----------------------------------------------------------------------===//
// Definite assignment (forward, intersection join)
//===----------------------------------------------------------------------===//

/// Set of definitely-assigned tracked variables; Universe is the join
/// identity ("unreachable: everything is assigned").
struct DefinedSet {
  bool Universe = false;
  std::set<Symbol> Defined;
};

class DefiniteAssignment {
public:
  using Value = DefinedSet;
  static constexpr FlowDirection Direction = FlowDirection::Forward;

  Value bottom() const { return {true, {}}; }
  Value boundary() const { return {false, {}}; }

  bool join(Value &Into, const Value &From) const {
    if (From.Universe)
      return false;
    if (Into.Universe) {
      Into = From;
      return true;
    }
    bool Changed = false;
    for (auto It = Into.Defined.begin(); It != Into.Defined.end();) {
      if (!From.Defined.count(*It)) {
        It = Into.Defined.erase(It);
        Changed = true;
      } else {
        ++It;
      }
    }
    return Changed;
  }

  Value transfer(LabelId, const CfgStmt &S, const Value &In) const {
    Value Out = In;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      break;
    case CfgStmtKind::Assign:
      Out.Defined.insert(S.Target);
      break;
    case CfgStmtKind::Havoc:
    case CfgStmtKind::Call:
      Out.Defined.insert(S.Vars.begin(), S.Vars.end());
      break;
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Plain liveness (backward; dead-store detection)
//===----------------------------------------------------------------------===//

/// Regular liveness with a maximally conservative call transfer (the callee
/// may read any global), so it stays sound on recursive programs without
/// needing call-graph summaries.
class PlainLiveness {
public:
  using Value = std::set<Symbol>;
  static constexpr FlowDirection Direction = FlowDirection::Backward;

  PlainLiveness(Value ExitLive, Value Globals)
      : ExitLive(std::move(ExitLive)), Globals(std::move(Globals)) {}

  Value bottom() const { return {}; }
  Value boundary() const { return ExitLive; }

  bool join(Value &Into, const Value &From) const {
    bool Changed = false;
    for (Symbol V : From)
      Changed |= Into.insert(V).second;
    return Changed;
  }

  Value transfer(LabelId, const CfgStmt &S, const Value &Post) const {
    Value Pre = Post;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      collectExprVars(S.E, Pre);
      break;
    case CfgStmtKind::Assign:
      Pre.erase(S.Target);
      collectExprVars(S.E, Pre);
      break;
    case CfgStmtKind::Havoc:
      for (Symbol V : S.Vars)
        Pre.erase(V);
      break;
    case CfgStmtKind::Call:
      for (Symbol V : S.Vars)
        Pre.erase(V);
      for (const Expr *A : S.Args)
        collectExprVars(A, Pre);
      for (Symbol G : Globals)
        Pre.insert(G);
      break;
    }
    return Pre;
  }

private:
  Value ExitLive;
  Value Globals;
};

/// Reads of a CFG statement.
void stmtReads(const CfgStmt &S, std::set<Symbol> &Out) {
  switch (S.Kind) {
  case CfgStmtKind::Assume:
  case CfgStmtKind::Assign:
    collectExprVars(S.E, Out);
    break;
  case CfgStmtKind::Havoc:
    break;
  case CfgStmtKind::Call:
    for (const Expr *A : S.Args)
      collectExprVars(A, Out);
    break;
  }
}

using LocKey = std::pair<unsigned, unsigned>;
LocKey keyOf(SrcLoc Loc) { return {Loc.Line, Loc.Col}; }

} // namespace

//===----------------------------------------------------------------------===//
// The pass
//===----------------------------------------------------------------------===//

LintSeverity rmt::lintSeverityOf(LintCheck Check) {
  switch (Check) {
  case LintCheck::UseBeforeDef:
  case LintCheck::UndeclaredHavoc:
    return LintSeverity::Error;
  case LintCheck::UnreachableCode:
  case LintCheck::DeadStore:
    return LintSeverity::Warning;
  }
  return LintSeverity::Warning;
}

LintReport rmt::lintProgram(AstContext &Ctx, const Program &Prog,
                            DiagEngine &Diags, const LintOptions &Opts) {
  LintReport Report;
  // (loc, message) per category; deduped, then emitted in source order.
  std::vector<std::pair<SrcLoc, std::string>> Found[4];
  enum { UBD, Unreach, Dead, BadHavoc };

  // --- Havoc of undeclared variables (structured AST) ---------------------
  std::set<Symbol> GlobalScope;
  for (const VarDecl &G : Prog.Globals)
    GlobalScope.insert(G.Name);
  for (const Procedure &P : Prog.Procedures) {
    std::set<Symbol> Scope = GlobalScope;
    for (const std::vector<VarDecl> *Vars : {&P.Params, &P.Returns, &P.Locals})
      for (const VarDecl &V : *Vars)
        Scope.insert(V.Name);
    for (const Stmt *S : P.Body)
      checkHavocs(Ctx, S, Scope, Found[BadHavoc]);
  }

  // --- Build the lintable CFG ---------------------------------------------
  Program Rewritten;
  Rewritten.Globals = Prog.Globals;
  for (const Procedure &P : Prog.Procedures) {
    Procedure Q = P;
    Q.Body.clear();
    for (const Stmt *S : P.Body)
      Q.Body.push_back(rewriteForLint(Ctx, S));
    Rewritten.Procedures.push_back(std::move(Q));
  }
  Program Bounded =
      unrollLoops(Ctx, Rewritten, std::max(1u, Opts.UnrollBound));
  CfgProgram Cfg = lowerToCfg(Ctx, Bounded);

  std::set<Symbol> Globals = GlobalScope;

  for (ProcId P = 0; P < Cfg.Procs.size(); ++P) {
    const CfgProc &Proc = Cfg.proc(P);

    // Structural reachability from the entry.
    std::set<LabelId> Reachable;
    std::vector<LabelId> Work{Proc.Entry};
    Reachable.insert(Proc.Entry);
    while (!Work.empty()) {
      LabelId L = Work.back();
      Work.pop_back();
      for (LabelId T : Cfg.label(L).Targets)
        if (Reachable.insert(T).second)
          Work.push_back(T);
    }

    // --- Unreachable code: a source location is dead only when no copy of
    // it is reachable (loop copies and branch joins share locations).
    std::map<LocKey, bool> AnyReachableAt;
    for (LabelId L : Proc.Labels) {
      SrcLoc Loc = Cfg.label(L).Loc;
      if (!Loc.isValid())
        continue;
      AnyReachableAt[keyOf(Loc)] |= Reachable.count(L) != 0;
    }
    for (LabelId L : Proc.Labels) {
      SrcLoc Loc = Cfg.label(L).Loc;
      if (Loc.isValid() && !AnyReachableAt[keyOf(Loc)])
        Found[Unreach].push_back({Loc, "unreachable code"});
    }

    std::set<Symbol> Tracked;
    for (const VarDecl &V : Proc.Locals)
      Tracked.insert(V.Name);
    for (const VarDecl &V : Proc.Returns)
      Tracked.insert(V.Name);

    // --- Use-before-def: flag a read when any copy can reach it undefined.
    {
      ProcFlow Flow(Cfg, P);
      DefiniteAssignment A;
      DataflowSolver<DefiniteAssignment> Solver(Flow, A);
      Solver.solve();
      for (LabelId L : Proc.Labels) {
        if (!Reachable.count(L))
          continue;
        const DefinedSet &In = Solver.pre(L);
        if (In.Universe)
          continue;
        std::set<Symbol> Reads;
        stmtReads(Cfg.label(L).Stmt, Reads);
        for (Symbol V : Reads)
          if (Tracked.count(V) && !In.Defined.count(V))
            Found[UBD].push_back(
                {Cfg.label(L).Loc, "variable '" + Ctx.name(V) +
                                       "' may be used before it is assigned"});
      }
    }

    // --- Dead stores: flag an assignment only when every copy is dead.
    {
      std::set<Symbol> ExitLive = Globals;
      for (const VarDecl &V : Proc.Returns)
        ExitLive.insert(V.Name);
      ProcFlow Flow(Cfg, P);
      PlainLiveness A(std::move(ExitLive), Globals);
      DataflowSolver<PlainLiveness> Solver(Flow, A);
      Solver.solve();

      std::map<std::pair<LocKey, Symbol>, bool> AnyLiveStore;
      for (LabelId L : Proc.Labels) {
        const CfgStmt &S = Cfg.label(L).Stmt;
        SrcLoc Loc = Cfg.label(L).Loc;
        if (S.Kind != CfgStmtKind::Assign || !Loc.isValid() ||
            !Tracked.count(S.Target) || !Reachable.count(L))
          continue;
        AnyLiveStore[{keyOf(Loc), S.Target}] |=
            Solver.post(L).count(S.Target) != 0;
      }
      for (const auto &[Key, Live] : AnyLiveStore)
        if (!Live)
          Found[Dead].push_back(
              {SrcLoc{Key.first.first, Key.first.second},
               "dead store to '" + Ctx.name(Key.second) + "'"});
    }
  }

  // --- Dedup, classify, and emit in source order --------------------------
  unsigned *Counters[4] = {&Report.UseBeforeDef, &Report.UnreachableCode,
                           &Report.DeadStores, &Report.UndeclaredHavocs};
  LintCheck Checks[4] = {LintCheck::UseBeforeDef, LintCheck::UnreachableCode,
                         LintCheck::DeadStore, LintCheck::UndeclaredHavoc};
  for (int C : {UBD, Unreach, Dead, BadHavoc}) {
    std::set<std::tuple<unsigned, unsigned, std::string>> Seen;
    std::vector<std::pair<SrcLoc, std::string>> Unique;
    for (auto &[Loc, Msg] : Found[C])
      if (Seen.insert({Loc.Line, Loc.Col, Msg}).second)
        Unique.push_back({Loc, Msg});
    std::sort(Unique.begin(), Unique.end(), [](const auto &A, const auto &B) {
      return std::tie(A.first.Line, A.first.Col, A.second) <
             std::tie(B.first.Line, B.first.Col, B.second);
    });
    LintSeverity Sev = lintSeverityOf(Checks[C]);
    for (auto &[Loc, Msg] : Unique) {
      if (Sev == LintSeverity::Error)
        Diags.error(Loc, Msg);
      else
        Diags.warning(Loc, Msg);
      Report.Findings.push_back({Checks[C], Sev, Loc, Msg});
      ++*Counters[C];
    }
  }
  return Report;
}
