//===- InvariantGen.cpp ---------------------------------------------------===//

#include "analysis/InvariantGen.h"

#include <algorithm>
#include <cassert>

using namespace rmt;

void AbsEnv::joinWith(const AbsEnv &O) {
  if (O.Bottom)
    return;
  if (Bottom) {
    *this = O;
    return;
  }
  // Missing keys are top; a key survives only if bounded on both sides.
  for (auto It = Vals.begin(); It != Vals.end();) {
    auto OIt = O.Vals.find(It->first);
    if (OIt == O.Vals.end()) {
      It = Vals.erase(It);
      continue;
    }
    It->second = It->second.join(OIt->second);
    if (It->second.isTop()) {
      It = Vals.erase(It);
      continue;
    }
    ++It;
  }
}

AbsEnv AbsEnv::widen(const AbsEnv &Old, const AbsEnv &New) {
  if (Old.isBottom())
    return New; // first value: nothing to widen against
  if (New.isBottom())
    return New;
  AbsEnv Out;
  // Missing keys are top; only keys present in both can keep bounds, and a
  // bound survives only if it did not move since the previous iterate.
  for (const auto &[Var, NewI] : New.Vals) {
    auto It = Old.Vals.find(Var);
    if (It == Old.Vals.end())
      continue; // was top before? no — was absent ⇒ treat as moved ⇒ top
    const Interval &OldI = It->second;
    Interval W = Interval::top();
    if (NewI.hasLo() && OldI.hasLo() && NewI.lo() == OldI.lo())
      W = W.meet(Interval::atLeast(NewI.lo()));
    if (NewI.hasHi() && OldI.hasHi() && NewI.hi() == OldI.hi())
      W = W.meet(Interval::atMost(NewI.hi()));
    Out.set(Var, W);
  }
  return Out;
}

IntervalAnalysis::IntervalAnalysis(const CfgProgram &Prog, ProcId Entry)
    : Prog(Prog) {
  EntryEnvs.assign(Prog.Procs.size(), AbsEnv::bottomEnv());
  ExitSummaries.assign(Prog.Procs.size(), AbsEnv::bottomEnv());
  ContextExitSummaries.assign(Prog.Procs.size(), AbsEnv::bottomEnv());

  // Phase 1: callees-first exit summaries under an unconstrained entry.
  std::vector<ProcId> BottomUp = Prog.bottomUpProcOrder();
  for (ProcId P : BottomUp)
    ExitSummaries[P] =
        analyzeProc(P, AbsEnv(), ExitSummaries, /*Record=*/false);

  // Phase 2: ascending Kleene iteration for entries + contextual exits.
  // Entries accumulate joins of call contexts; exits are recomputed from
  // entries; both only grow, and widening after WidenAfter rounds forces
  // convergence despite the interval domain's infinite ascending chains.
  EntryEnvs[Entry] = AbsEnv();
  constexpr int WidenAfter = 3;
  constexpr int MaxRounds = 24;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    std::vector<AbsEnv> PrevEntries = EntryEnvs;
    std::vector<AbsEnv> PrevExits = ContextExitSummaries;

    // Callers first: propagate contexts (Record joins into EntryEnvs).
    for (auto It = BottomUp.rbegin(); It != BottomUp.rend(); ++It)
      if (!EntryEnvs[*It].isBottom())
        analyzeProc(*It, EntryEnvs[*It], ContextExitSummaries,
                    /*Record=*/true);
    // Callees first: recompute contextual exits under the new entries.
    for (ProcId P : BottomUp)
      if (!EntryEnvs[P].isBottom())
        ContextExitSummaries[P] =
            analyzeProc(P, EntryEnvs[P], ContextExitSummaries,
                        /*Record=*/false);

    if (Round >= WidenAfter) {
      for (size_t I = 0; I < EntryEnvs.size(); ++I) {
        EntryEnvs[I] = AbsEnv::widen(PrevEntries[I], EntryEnvs[I]);
        ContextExitSummaries[I] =
            AbsEnv::widen(PrevExits[I], ContextExitSummaries[I]);
      }
    }
    if (EntryEnvs == PrevEntries && ContextExitSummaries == PrevExits)
      return; // post-fixpoint reached: sound to consume
  }
  // Did not stabilize within the round budget (should not happen: widening
  // collapses every moving bound). Fall back to soundness: drop everything
  // unreachable-from-phase-1 facts cannot express.
  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    if (!EntryEnvs[P].isBottom())
      EntryEnvs[P] = AbsEnv();
    ContextExitSummaries[P] = ExitSummaries[P];
  }
}

AbsEnv IntervalAnalysis::analyzeProc(ProcId P, const AbsEnv &Entry,
                                     const std::vector<AbsEnv> &CallSummaries,
                                     bool Record) {
  const CfgProc &Proc = Prog.proc(P);
  std::unordered_map<LabelId, AbsEnv> Pre;
  for (LabelId L : Proc.Labels)
    Pre[L] = AbsEnv::bottomEnv();
  // Entry env constrains globals and parameters only; returns and locals
  // start nondeterministic (which "top" already expresses).
  Pre[Proc.Entry] = Entry;

  AbsEnv Exit = AbsEnv::bottomEnv();
  for (LabelId L : Prog.topoOrder(P)) {
    const AbsEnv &In = Pre[L];
    if (In.isBottom() && L != Proc.Entry) {
      // Unreachable label (or dead branch).
      continue;
    }
    AbsEnv Out = In;
    const CfgStmt &S = Prog.label(L).Stmt;
    switch (S.Kind) {
    case CfgStmtKind::Assume:
      refine(Out, S.E, /*Positive=*/true);
      break;
    case CfgStmtKind::Assign:
      Out.set(S.Target, evalExpr(S.E, In));
      break;
    case CfgStmtKind::Havoc:
      for (Symbol V : S.Vars)
        Out.set(V, Proc.typeOf(V) && Proc.typeOf(V)->isBool()
                       ? Interval::boolTop()
                       : Interval::top());
      break;
    case CfgStmtKind::Call: {
      const CfgProc &Callee = Prog.proc(S.Callee);
      if (Record) {
        // Contribute this context to the callee's entry invariant.
        AbsEnv Context;
        for (const VarDecl &G : Prog.Globals)
          Context.set(G.Name, In.get(G.Name));
        for (size_t I = 0; I < Callee.Params.size(); ++I)
          Context.set(Callee.Params[I].Name, evalExpr(S.Args[I], In));
        if (!In.isBottom())
          EntryEnvs[S.Callee].joinWith(Context);
      }
      // Post-state: globals and results come from the callee's summary. A
      // bottom summary means "no terminated execution of the callee is
      // known (yet)": the continuation is unreachable. During the ascending
      // iteration this is the least-fixpoint reading; at the fixpoint it is
      // exact (our callees always terminate control-wise, so a reachable
      // call's callee has a non-bottom summary).
      const AbsEnv &Summary = CallSummaries[S.Callee];
      if (Summary.isBottom()) {
        Out = AbsEnv::bottomEnv();
        break;
      }
      for (const VarDecl &G : Prog.Globals)
        Out.set(G.Name, Summary.get(G.Name));
      for (size_t I = 0; I < S.Vars.size(); ++I)
        Out.set(S.Vars[I], Summary.get(Callee.Returns[I].Name));
      break;
    }
    }

    if (Prog.label(L).Targets.empty()) {
      // Exit label: project onto globals and returns for the summary.
      AbsEnv Projected;
      if (Out.isBottom()) {
        Projected = AbsEnv::bottomEnv();
      } else {
        for (const VarDecl &G : Prog.Globals)
          Projected.set(G.Name, Out.get(G.Name));
        for (const VarDecl &R : Proc.Returns)
          Projected.set(R.Name, Out.get(R.Name));
      }
      Exit.joinWith(Projected);
    } else {
      for (LabelId T : Prog.label(L).Targets)
        Pre[T].joinWith(Out);
    }
  }
  return Exit;
}

Interval IntervalAnalysis::evalExpr(const Expr *E, const AbsEnv &Env) const {
  if (Env.isBottom())
    return Interval::bottom();
  // Bitvector values wrap; the (mathematical-integer) interval domain does
  // not model them. Any bv-valued expression is top; comparisons over bv
  // operands then evaluate over top operands, which is sound.
  if (E->type() && E->type()->isBv())
    return Interval::top();
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Interval::constant(E->intValue());
  case ExprKind::BoolLit:
    return Interval::constant(E->boolValue() ? 1 : 0);
  case ExprKind::Var: {
    Interval I = Env.get(E->var());
    if (E->type() && E->type()->isBool())
      return I.meet(Interval::boolTop());
    return I;
  }
  case ExprKind::Unary: {
    Interval Sub = evalExpr(E->op0(), Env);
    if (E->unOp() == UnOp::Neg)
      return Sub.neg();
    // Boolean negation: 1 - x over [0,1].
    return Interval::constant(1).sub(Sub).meet(Interval::boolTop());
  }
  case ExprKind::Binary: {
    Interval L = evalExpr(E->op0(), Env);
    Interval R = evalExpr(E->op1(), Env);
    switch (E->binOp()) {
    case BinOp::Add:
      return L.add(R);
    case BinOp::Sub:
      return L.sub(R);
    case BinOp::Mul:
      return L.mul(R);
    case BinOp::Div:
      return Interval::top();
    case BinOp::Mod:
      // SMT-LIB mod with a positive constant divisor c lands in [0, c-1].
      if (R.isConstant() && R.lo() > 0)
        return Interval::bounded(0, R.lo() - 1);
      return Interval::top();
    case BinOp::Lt:
      return L.ltCmp(R);
    case BinOp::Le:
      return L.leCmp(R);
    case BinOp::Gt:
      return R.ltCmp(L);
    case BinOp::Ge:
      return R.leCmp(L);
    case BinOp::Eq:
      return L.eqCmp(R);
    case BinOp::Ne:
      return Interval::constant(1).sub(L.eqCmp(R)).meet(Interval::boolTop());
    case BinOp::And:
      if ((L.isConstant() && L.lo() == 0) || (R.isConstant() && R.lo() == 0))
        return Interval::constant(0);
      if (L.isConstant() && R.isConstant())
        return Interval::constant(1);
      return Interval::boolTop();
    case BinOp::Or:
      if ((L.isConstant() && L.lo() == 1) || (R.isConstant() && R.lo() == 1))
        return Interval::constant(1);
      if (L.isConstant() && R.isConstant())
        return Interval::constant(0);
      return Interval::boolTop();
    case BinOp::Implies:
      if (L.isConstant() && L.lo() == 0)
        return Interval::constant(1);
      if (L.isConstant() && L.lo() == 1)
        return R.meet(Interval::boolTop());
      return Interval::boolTop();
    case BinOp::Iff:
      if (L.isConstant() && R.isConstant())
        return Interval::constant(L.lo() == R.lo() ? 1 : 0);
      return Interval::boolTop();
    }
    return Interval::top();
  }
  case ExprKind::Ite: {
    Interval C = evalExpr(E->op0(), Env);
    if (C.isConstant())
      return evalExpr(C.lo() ? E->op1() : E->op2(), Env);
    return evalExpr(E->op1(), Env).join(evalExpr(E->op2(), Env));
  }
  case ExprKind::Select:
  case ExprKind::Store:
    // Array contents are not tracked.
    return Interval::top();
  }
  return Interval::top();
}

void IntervalAnalysis::refine(AbsEnv &Env, const Expr *E,
                              bool Positive) const {
  if (Env.isBottom())
    return;
  switch (E->kind()) {
  case ExprKind::BoolLit:
    if (E->boolValue() != Positive)
      Env = AbsEnv::bottomEnv();
    return;
  case ExprKind::Var:
    Env.set(E->var(), Env.get(E->var()).meet(
                          Interval::constant(Positive ? 1 : 0)));
    return;
  case ExprKind::Unary:
    if (E->unOp() == UnOp::Not)
      refine(Env, E->op0(), !Positive);
    return;
  case ExprKind::Binary:
    break;
  default:
    return;
  }

  BinOp Op = E->binOp();
  if (Op == BinOp::And && Positive) {
    refine(Env, E->op0(), true);
    refine(Env, E->op1(), true);
    return;
  }
  if (Op == BinOp::Or && !Positive) {
    refine(Env, E->op0(), false);
    refine(Env, E->op1(), false);
    return;
  }

  // Normalize comparisons to a positive operator.
  auto Negated = [](BinOp O) {
    switch (O) {
    case BinOp::Lt:
      return BinOp::Ge;
    case BinOp::Le:
      return BinOp::Gt;
    case BinOp::Gt:
      return BinOp::Le;
    case BinOp::Ge:
      return BinOp::Lt;
    case BinOp::Eq:
      return BinOp::Ne;
    case BinOp::Ne:
      return BinOp::Eq;
    default:
      return O;
    }
  };
  bool IsCmp = Op == BinOp::Lt || Op == BinOp::Le || Op == BinOp::Gt ||
               Op == BinOp::Ge || Op == BinOp::Eq || Op == BinOp::Ne;
  if (!IsCmp)
    return;
  if (!Positive)
    Op = Negated(Op);
  const Expr *L = E->op0();
  const Expr *R = E->op1();
  // Only integer comparisons refine (Eq/Ne over other types: skip).
  if (!L->type() || !L->type()->isInt())
    return;

  Interval LI = evalExpr(L, Env);
  Interval RI = evalExpr(R, Env);

  auto Clamp = [&](const Expr *Side, const Interval &NewBound) {
    if (Side->kind() != ExprKind::Var)
      return;
    Env.set(Side->var(), Env.get(Side->var()).meet(NewBound));
  };

  switch (Op) {
  case BinOp::Lt: // L < R
    if (RI.hasHi())
      Clamp(L, Interval::atMost(RI.hi() - 1));
    if (LI.hasLo())
      Clamp(R, Interval::atLeast(LI.lo() + 1));
    break;
  case BinOp::Le:
    if (RI.hasHi())
      Clamp(L, Interval::atMost(RI.hi()));
    if (LI.hasLo())
      Clamp(R, Interval::atLeast(LI.lo()));
    break;
  case BinOp::Gt: // L > R
    if (RI.hasLo())
      Clamp(L, Interval::atLeast(RI.lo() + 1));
    if (LI.hasHi())
      Clamp(R, Interval::atMost(LI.hi() - 1));
    break;
  case BinOp::Ge:
    if (RI.hasLo())
      Clamp(L, Interval::atLeast(RI.lo()));
    if (LI.hasHi())
      Clamp(R, Interval::atMost(LI.hi()));
    break;
  case BinOp::Eq:
    Clamp(L, RI);
    Clamp(R, LI);
    break;
  case BinOp::Ne:
    // Only the singleton-vs-singleton contradiction is caught.
    if (LI.isConstant() && RI.isConstant() && LI.lo() == RI.lo())
      Env = AbsEnv::bottomEnv();
    break;
  default:
    break;
  }
}

//===----------------------------------------------------------------------===//
// Injection
//===----------------------------------------------------------------------===//

namespace {

/// Interval constraints of \p D's variable under \p Env, appended to
/// \p Conjuncts. Only int and bool variables are expressible.
void addVarConjuncts(AstContext &Ctx, const AbsEnv &Env, Symbol Name,
                     const Type *Ty, std::vector<const Expr *> &Conjuncts) {
  Interval I = Env.get(Name);
  if (I.isTop() || !Ty || !(Ty->isInt() || Ty->isBool()))
    return;
  if (Ty->isBool()) {
    if (!I.isConstant())
      return;
    const Expr *V = Ctx.tVar(Name, Ty);
    Conjuncts.push_back(I.lo() ? V : Ctx.tUnary(UnOp::Not, V));
    return;
  }
  const Expr *V = Ctx.tVar(Name, Ty);
  if (I.hasLo())
    Conjuncts.push_back(Ctx.tBinary(BinOp::Le, Ctx.tInt(I.lo()), V));
  if (I.hasHi())
    Conjuncts.push_back(Ctx.tBinary(BinOp::Le, V, Ctx.tInt(I.hi())));
}

} // namespace

InvariantReport rmt::injectInvariants(AstContext &Ctx, CfgProgram &Prog,
                                      ProcId Entry) {
  IntervalAnalysis Analysis(Prog, Entry);
  InvariantReport Report;

  // --- Entry invariants: `assume inv` spliced before each entry. ----------
  for (ProcId P = 0; P < Prog.Procs.size(); ++P) {
    const AbsEnv &Env = Analysis.entryEnv(P);
    if (Env.isBottom())
      continue; // unreachable procedure: nothing to constrain
    CfgProc &Proc = Prog.Procs[P];

    std::vector<const Expr *> Conjuncts;
    for (const VarDecl &G : Prog.Globals)
      addVarConjuncts(Ctx, Env, G.Name, G.Ty, Conjuncts);
    for (const VarDecl &D : Proc.Params)
      addVarConjuncts(Ctx, Env, D.Name, D.Ty, Conjuncts);
    if (Conjuncts.empty())
      continue;

    LabelId NewEntry = static_cast<LabelId>(Prog.Labels.size());
    CfgLabel Lbl;
    Lbl.Stmt.Kind = CfgStmtKind::Assume;
    Lbl.Stmt.E = Ctx.tAnd(Conjuncts);
    Lbl.Proc = P;
    Lbl.Targets.push_back(Proc.Entry);
    Prog.Labels.push_back(std::move(Lbl));
    Proc.Labels.insert(Proc.Labels.begin(), NewEntry);
    Proc.Entry = NewEntry;

    ++Report.ProcsAnnotated;
    Report.Conjuncts += static_cast<unsigned>(Conjuncts.size());
  }

  // --- Call-site summaries: `assume post` spliced after each call. --------
  // These are what prune the engines' havoc summaries of open calls.
  size_t NumLabels = Prog.Labels.size(); // snapshot: we append below
  for (LabelId L = 0; L < NumLabels; ++L) {
    CfgStmt &S = Prog.Labels[L].Stmt;
    if (S.Kind != CfgStmtKind::Call)
      continue;
    const AbsEnv &Summary = Analysis.contextExitSummary(S.Callee);
    if (Summary.isBottom())
      continue;
    const CfgProc &Callee = Prog.proc(S.Callee);
    ProcId Owner = Prog.Labels[L].Proc;

    std::vector<const Expr *> Conjuncts;
    for (const VarDecl &G : Prog.Globals)
      addVarConjuncts(Ctx, Summary, G.Name, G.Ty, Conjuncts);
    // Result bindings inherit the callee's return-variable intervals.
    for (size_t I = 0; I < S.Vars.size(); ++I) {
      Interval RI = Summary.get(Callee.Returns[I].Name);
      const Type *Ty = Prog.proc(Owner).typeOf(S.Vars[I]);
      AbsEnv Shim;
      Shim.set(S.Vars[I], RI);
      addVarConjuncts(Ctx, Shim, S.Vars[I], Ty, Conjuncts);
    }
    if (Conjuncts.empty())
      continue;

    LabelId NewLabel = static_cast<LabelId>(Prog.Labels.size());
    CfgLabel Lbl;
    Lbl.Stmt.Kind = CfgStmtKind::Assume;
    Lbl.Stmt.E = Ctx.tAnd(Conjuncts);
    Lbl.Proc = Owner;
    Lbl.Targets = Prog.Labels[L].Targets;
    Prog.Labels[L].Targets.assign(1, NewLabel);
    Prog.Labels.push_back(std::move(Lbl));
    Prog.Procs[Owner].Labels.push_back(NewLabel);

    ++Report.Conjuncts; // count the site; conjunct detail is secondary
  }
  return Report;
}
