//===- Dataflow.h - Generic worklist dataflow over CfgProgram ---*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small generic dataflow framework over the paper's label form, plus the
/// static-analysis prepass built on top of it.
///
/// Hierarchical programs have acyclic intraprocedural flow graphs, so every
/// monotone analysis converges in a single pass over a topological order.
/// The solver is still a worklist algorithm (it re-enqueues on change), which
/// keeps it correct on any graph and makes the acyclic case exactly one visit
/// per label.
///
/// Analyses plug in as a type with:
///
///   using Value = ...;                       // the lattice
///   static constexpr FlowDirection Direction;
///   Value bottom() const;                    // join identity ("unreachable")
///   Value boundary() const;                  // entry (fwd) / exit (bwd) state
///   bool join(Value &Into, const Value &From) const;  // true if Into grew
///   Value transfer(LabelId L, const CfgStmt &S, const Value &X) const;
///
/// For a forward analysis, pre(L) is the join over predecessors' post states
/// (boundary at the procedure entry) and post(L) = transfer(pre(L)). For a
/// backward analysis the roles flip: post(L) joins the successors' pre states
/// (boundary at exit labels, i.e. labels with no successors) and
/// pre(L) = transfer(post(L)). Pre/post are always named in *program* order.
///
/// On top of the framework this header exposes the verification prepass:
/// constant propagation with assume-false branch pruning, cone-of-influence
/// slicing (see Slicer.h), skip-chain compaction, and dead-procedure
/// elimination, composed by runPrepass().
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_DATAFLOW_H
#define RMT_ANALYSIS_DATAFLOW_H

#include "ast/AstContext.h"
#include "cfg/Cfg.h"
#include "support/Stats.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rmt {

class Trace;

//===----------------------------------------------------------------------===//
// Flow-graph view
//===----------------------------------------------------------------------===//

/// Per-procedure view of the intraprocedural flow graph: predecessor lists,
/// a dense label index, and a topological order (entry-first).
class ProcFlow {
public:
  ProcFlow(const CfgProgram &Prog, ProcId P);

  ProcId proc() const { return P; }
  LabelId entry() const { return Entry; }
  size_t size() const { return Topo.size(); }

  /// Labels in topological order of the flow graph.
  const std::vector<LabelId> &topo() const { return Topo; }

  unsigned indexOf(LabelId L) const { return Index.at(L); }
  const std::vector<LabelId> &preds(LabelId L) const {
    return Preds[indexOf(L)];
  }
  const std::vector<LabelId> &succs(LabelId L) const {
    return Prog.label(L).Targets;
  }

  const CfgProgram &program() const { return Prog; }

private:
  const CfgProgram &Prog;
  ProcId P;
  LabelId Entry;
  std::vector<LabelId> Topo;
  std::unordered_map<LabelId, unsigned> Index;
  std::vector<std::vector<LabelId>> Preds;
};

/// Direction of a dataflow analysis.
enum class FlowDirection { Forward, Backward };

//===----------------------------------------------------------------------===//
// Worklist solver
//===----------------------------------------------------------------------===//

template <typename Analysis> class DataflowSolver {
public:
  using Value = typename Analysis::Value;

  DataflowSolver(const ProcFlow &Flow, const Analysis &A) : Flow(Flow), A(A) {}

  void solve() {
    constexpr bool Fwd = Analysis::Direction == FlowDirection::Forward;
    size_t N = Flow.size();
    Pre.assign(N, A.bottom());
    Post.assign(N, A.bottom());

    // Seed in solve order: one visit per label suffices on acyclic graphs.
    std::deque<LabelId> Work(Flow.topo().begin(), Flow.topo().end());
    if (!Fwd)
      std::reverse(Work.begin(), Work.end());
    std::vector<char> Queued(N, 1);

    while (!Work.empty()) {
      LabelId L = Work.front();
      Work.pop_front();
      unsigned I = Flow.indexOf(L);
      Queued[I] = 0;
      const CfgStmt &S = Flow.program().label(L).Stmt;

      if (Fwd) {
        Value In = L == Flow.entry() ? A.boundary() : A.bottom();
        for (LabelId P : Flow.preds(L))
          A.join(In, Post[Flow.indexOf(P)]);
        Pre[I] = std::move(In);
        Value Out = A.transfer(L, S, Pre[I]);
        if (A.join(Post[I], Out))
          for (LabelId T : Flow.succs(L))
            enqueue(Work, Queued, T);
      } else {
        Value Out = Flow.succs(L).empty() ? A.boundary() : A.bottom();
        for (LabelId T : Flow.succs(L))
          A.join(Out, Pre[Flow.indexOf(T)]);
        Post[I] = std::move(Out);
        Value In = A.transfer(L, S, Post[I]);
        if (A.join(Pre[I], In))
          for (LabelId P : Flow.preds(L))
            enqueue(Work, Queued, P);
      }
    }
  }

  /// State before the label's statement executes.
  const Value &pre(LabelId L) const { return Pre[Flow.indexOf(L)]; }
  /// State after the label's statement executes.
  const Value &post(LabelId L) const { return Post[Flow.indexOf(L)]; }

private:
  void enqueue(std::deque<LabelId> &Work, std::vector<char> &Queued,
               LabelId L) {
    unsigned I = Flow.indexOf(L);
    if (!Queued[I]) {
      Queued[I] = 1;
      Work.push_back(L);
    }
  }

  const ProcFlow &Flow;
  const Analysis &A;
  std::vector<Value> Pre;
  std::vector<Value> Post;
};

//===----------------------------------------------------------------------===//
// Shared utilities
//===----------------------------------------------------------------------===//

/// Collects every variable occurring in \p E into \p Out.
void collectExprVars(const Expr *E, std::set<Symbol> &Out);

/// Transitive may-effect summary of a procedure on the globals.
struct ProcEffects {
  std::unordered_set<Symbol> ModGlobals; ///< globals possibly written
  std::unordered_set<Symbol> UseGlobals; ///< globals possibly read
};

/// Bottom-up (callees-first) may-mod/may-use sets over the acyclic call
/// graph, indexed by ProcId.
std::vector<ProcEffects> computeProcEffects(const CfgProgram &Prog);

//===----------------------------------------------------------------------===//
// Constant propagation
//===----------------------------------------------------------------------===//

/// A known constant value (int, bool, or bitvector payload as int64).
struct ConstVal {
  bool IsBool = false;
  int64_t V = 0;

  static ConstVal ofInt(int64_t V) { return {false, V}; }
  static ConstVal ofBool(bool B) { return {true, B ? 1 : 0}; }

  friend bool operator==(const ConstVal &A, const ConstVal &B) {
    return A.IsBool == B.IsBool && A.V == B.V;
  }
};

/// Must-constant environment: missing variables are unknown (top); Bottom
/// means the program point is unreachable.
class ConstEnv {
public:
  static ConstEnv bottomEnv() {
    ConstEnv E;
    E.Bottom = true;
    return E;
  }
  static ConstEnv topEnv() { return ConstEnv(); }

  bool isBottom() const { return Bottom; }

  std::optional<ConstVal> get(Symbol Var) const {
    auto It = Known.find(Var);
    return It == Known.end() ? std::nullopt : std::optional(It->second);
  }
  void set(Symbol Var, ConstVal V) {
    if (!Bottom)
      Known[Var] = V;
  }
  void forget(Symbol Var) { Known.erase(Var); }

  /// Join: keep only bindings both sides agree on. Returns true on change.
  bool joinWith(const ConstEnv &O);

  friend bool operator==(const ConstEnv &A, const ConstEnv &B) {
    if (A.Bottom || B.Bottom)
      return A.Bottom == B.Bottom;
    return A.Known == B.Known;
  }

  const std::unordered_map<Symbol, ConstVal> &values() const { return Known; }

private:
  bool Bottom = false;
  std::unordered_map<Symbol, ConstVal> Known;
};

/// Evaluates \p E to a constant under \p Env when possible. Only int- and
/// bool-typed expressions fold; division by a (possibly) zero constant and
/// anything overflowing int64 stay unknown. Boolean connectives fold
/// short-circuit style (false && unknown == false), which is exact because
/// expressions are total.
std::optional<ConstVal> evalConstExpr(const Expr *E, const ConstEnv &Env);

//===----------------------------------------------------------------------===//
// The verification prepass
//===----------------------------------------------------------------------===//

/// Pass toggles (all on by default) plus pipeline-level knobs. The toggles
/// select passes of the default pipeline order
///
///   constprop → gvn → assumeelim → slice → splice → deadproc [→ inv]
///
/// while a nonempty Passes string replaces the toggles with an explicit
/// pipeline (see PassManager.h).
struct PrepassOptions {
  /// Constant propagation, expression folding, assume-false branch pruning.
  bool ConstantFold = true;
  /// Value numbering + copy/expression propagation (Gvn.h).
  bool Gvn = true;
  /// Drop assumes entailed by value-numbered facts on all paths (Gvn.h).
  bool AssumeElim = true;
  /// Cone-of-influence slicing from the reachability query (Slicer.h).
  bool Slice = true;
  /// Splice out `assume true` skip labels.
  bool SpliceSkips = true;
  /// Drop procedures unreachable from the root in the call graph.
  bool DeadProcElim = true;
  /// Append interval-invariant injection (the paper's +Inv) last. Off by
  /// default; the verifier sets it from VerifierOptions::UseInvariants.
  bool Invariants = false;
  /// Explicit pipeline, e.g. "constprop,gvn,slice". Overrides every toggle
  /// above when nonempty.
  std::string Passes;
  /// Run the structural CFG verifier (VerifyCfg.h) on the input and after
  /// every pass; any violation aborts the pipeline. Also enabled by the
  /// RMT_VERIFY_EACH environment variable (CI runs Debug tests with it).
  bool VerifyEach = false;
  /// Dump the program to stderr after every pass that changed it.
  bool PrintAfterAll = false;
  /// Optional event recorder (support/Trace.h): the pipeline runs under a
  /// "prepass.pipeline" span with per-pass child spans.
  Trace *Telemetry = nullptr;
};

/// What the prepass did, for Stats and reporting.
struct PrepassReport {
  size_t LabelsBefore = 0, LabelsAfter = 0;
  size_t ProcsBefore = 0, ProcsAfter = 0;
  /// Labels deleted because constant propagation proved them unreachable.
  unsigned PrunedLabels = 0;
  /// Expressions rewritten to literals.
  unsigned FoldedExprs = 0;
  /// Statements the slicer reduced to skips (plus havoc lists shrunk).
  unsigned SlicedStmts = 0;
  /// Calls to effect-free procedures elided by the slicer.
  unsigned ElidedCalls = 0;
  /// Skip labels spliced out of the flow graph.
  unsigned SplicedLabels = 0;
  /// Procedures removed by call-graph reachability.
  unsigned DeadProcs = 0;
  /// Subexpressions replaced by a congruent leader (GVN copy propagation).
  unsigned PropagatedExprs = 0;
  /// `assume e` labels proven entailed and reduced to skips.
  unsigned RedundantAssumes = 0;
  /// `assume e` labels proven contradictory and sharpened to assume false.
  unsigned ContradictedAssumes = 0;
  /// Invariant conjuncts injected by the inv pass (0 without +Inv).
  unsigned InvariantConjuncts = 0;
  /// Lint-audit pass: assignments no later statement can observe — residual
  /// dead stores the transforming passes left behind (read-only diagnostic).
  unsigned AuditDeadStores = 0;
  /// Lint-audit pass: labels unreachable from their procedure's entry.
  unsigned AuditUnreachableLabels = 0;
  /// Structural-verifier diagnostics (--verify-each) or a pipeline
  /// configuration error; nonempty means the pipeline aborted early and the
  /// program must not be trusted.
  std::vector<std::string> PipelineErrors;

  bool ok() const { return PipelineErrors.empty(); }

  /// Records every counter into \p S under "prepass.*" keys.
  void record(Stats &S) const;
  /// One-line human-readable summary.
  std::string str() const;
};

/// Runs constant propagation over every procedure: folds expressions to
/// literals, cuts the successors of definitely-false assumes, and deletes
/// labels no execution reaches. Accumulates into R.PrunedLabels and
/// R.FoldedExprs.
void runConstPass(AstContext &Ctx, CfgProgram &Prog, PrepassReport &R);

/// Deletes labels with KeepLabel[L] == false, renumbering labels and
/// filtering target lists. Entry labels of every procedure must be kept.
/// Returns the number of labels removed.
unsigned compactLabels(CfgProgram &Prog, const std::vector<bool> &KeepLabel);

/// Removes procedures unreachable from \p Root in the call graph (and their
/// labels), renumbering ProcIds. Updates \p Root. Returns procedures removed.
unsigned dropDeadProcs(CfgProgram &Prog, ProcId &Root);

/// Splices `assume true` labels out of every flow graph (fast-forwarding
/// entries, short-circuiting skip chains, and collapsing skip-only returns),
/// then removes labels no longer reachable from their procedure entry.
/// Returns the number of labels removed.
unsigned spliceSkips(CfgProgram &Prog);

/// Runs the prepass pipeline on \p Prog rooted at \p Root. The pipeline is
/// assembled from \p Opts (see PrepassOptions; the default is
///
///   constant folding + branch pruning  →  GVN/copy propagation
///   →  assume-redundancy elimination  →  query slicing  →  skip splicing
///   →  dead-procedure elimination)
///
/// and executed through the pass manager (PassManager.h), which times each
/// pass into \p S (when given) and re-verifies the structural invariants
/// after each pass when Opts.VerifyEach is set.
///
/// \p ErrGlobal is the reachability query variable ($err); when nullopt the
/// query is plain termination reachability and only control-flow-relevant
/// variables are kept. \p Root is updated if procedures are renumbered.
/// Every transformation is verdict-preserving: the pruned program has a
/// terminating $err-execution iff the original does, and every surviving
/// counterexample is a counterexample of the original. Check
/// PrepassReport::ok() — a pipeline configuration error or verifier failure
/// leaves diagnostics in PipelineErrors.
PrepassReport runPrepass(AstContext &Ctx, CfgProgram &Prog, ProcId &Root,
                         std::optional<Symbol> ErrGlobal,
                         const PrepassOptions &Opts = {},
                         Stats *S = nullptr);

} // namespace rmt

#endif // RMT_ANALYSIS_DATAFLOW_H
