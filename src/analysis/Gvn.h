//===- Gvn.h - Value numbering, copy propagation, assume elim ---*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global value numbering with copy propagation, plus assume-redundancy
/// elimination, over the paper's label form.
///
/// The analysis is a forward MUST dataflow: the abstract state at a label
/// maps each in-scope variable to a value number, and carries the set of
/// value numbers known to be true on *every* path reaching the label. Value
/// numbers live in a per-procedure hash-consed value table keyed on
/// (operator, operand VNs), with commutative operands normalized, so two
/// expressions get the same number exactly when the analysis can prove they
/// always evaluate to the same value. The meet intersects variable bindings
/// and fact sets, which is what makes the propagation sound on merge-heavy
/// graphs.
///
/// On acyclic flow graphs (our programs are hierarchical, Section 3) the
/// meet-over-all-paths solution this computes dominates the classic
/// dominator-tree-scoped formulation: a fact valid on all paths to L is in
/// particular valid at L's dominators, and the intersection meet keeps
/// precisely the facts valid along every path — there are no back edges to
/// force widening. Unlike SSA-based DVNT, leaders are drawn from the
/// *current* variable binding map, so a redefinition of `y` automatically
/// retires `y` as a leader without any renaming machinery.
///
/// Two rewrites consume the solution:
///
///  * copy/expression propagation — every statement's expressions are
///    rewritten bottom-up, replacing any subexpression whose value number has
///    a cheaper leader (a literal, else the smallest in-scope variable bound
///    to that number), which collapses `y := x; z := y + 1` chains and
///    shrinks Gen_pVC term counts directly;
///  * assume-redundancy elimination — `assume e` where vn(e) is entailed
///    true on all incoming paths becomes a skip (to be spliced), and
///    `assume e` where vn(e) is entailed false is sharpened to
///    `assume false` with its successors cut, letting the slicer and splicer
///    reclaim the dead region.
///
/// Both rewrites are verdict-preserving: they replace expressions with
/// provably-equal values and drop assumes that are implied by (or contradict)
/// the path condition, so the set of feasible $err-executions is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_ANALYSIS_GVN_H
#define RMT_ANALYSIS_GVN_H

#include "ast/AstContext.h"
#include "cfg/Cfg.h"

#include <optional>

namespace rmt {

/// What the GVN pass did.
struct GvnReport {
  /// Subexpressions replaced by a congruent leader (literal or variable).
  unsigned PropagatedExprs = 0;
  /// `assume e` labels proven entailed and reduced to skips.
  unsigned RedundantAssumes = 0;
  /// `assume e` labels proven contradictory and sharpened to assume false.
  unsigned ContradictedAssumes = 0;

  unsigned total() const {
    return PropagatedExprs + RedundantAssumes + ContradictedAssumes;
  }
};

/// Runs value numbering + copy propagation over every procedure of \p Prog,
/// rewriting statements in place. Does not change the flow graph shape except
/// for cutting successors of assumes sharpened to false.
GvnReport runGvn(AstContext &Ctx, CfgProgram &Prog);

/// Runs only the assume-redundancy elimination (entailment via the same value
/// numbering, but without rewriting non-assume statements). Exposed as its
/// own pass so pipelines can order propagation and elimination independently.
GvnReport runAssumeElim(AstContext &Ctx, CfgProgram &Prog);

} // namespace rmt

#endif // RMT_ANALYSIS_GVN_H
