//===- Cfg.cpp ------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "ast/AstContext.h"
#include "ast/AstPrinter.h"

#include <algorithm>
#include <cassert>

using namespace rmt;

std::vector<ProcId> CfgProgram::calleesOf(ProcId P) const {
  std::vector<ProcId> Out;
  for (LabelId L : Procs[P].Labels)
    if (Labels[L].Stmt.Kind == CfgStmtKind::Call)
      Out.push_back(Labels[L].Stmt.Callee);
  return Out;
}

unsigned CfgProgram::numCallSites(ProcId P) const {
  unsigned Count = 0;
  for (LabelId L : Procs[P].Labels)
    if (Labels[L].Stmt.Kind == CfgStmtKind::Call)
      ++Count;
  return Count;
}

namespace {

/// Generic DFS cycle check over an adjacency function.
/// Nodes are dense 0..N-1 ids.
template <typename AdjFn>
bool isAcyclic(size_t NumNodes, AdjFn Adjacent) {
  enum : uint8_t { White, Grey, Black };
  std::vector<uint8_t> Color(NumNodes, White);
  std::vector<std::pair<uint32_t, size_t>> Stack;
  for (uint32_t Root = 0; Root < NumNodes; ++Root) {
    if (Color[Root] != White)
      continue;
    Color[Root] = Grey;
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      auto &[Node, NextChild] = Stack.back();
      const std::vector<uint32_t> &Children = Adjacent(Node);
      if (NextChild == Children.size()) {
        Color[Node] = Black;
        Stack.pop_back();
        continue;
      }
      uint32_t Child = Children[NextChild++];
      if (Color[Child] == Grey)
        return false;
      if (Color[Child] == White) {
        Color[Child] = Grey;
        Stack.push_back({Child, 0});
      }
    }
  }
  return true;
}

} // namespace

bool CfgProgram::hasAcyclicFlow() const {
  return isAcyclic(Labels.size(), [this](uint32_t L) -> const std::vector<LabelId> & {
    return Labels[L].Targets;
  });
}

bool CfgProgram::hasAcyclicCallGraph() const {
  // Materialize adjacency once; calleesOf returns by value.
  std::vector<std::vector<ProcId>> Adj(Procs.size());
  for (ProcId P = 0; P < Procs.size(); ++P)
    Adj[P] = calleesOf(P);
  return isAcyclic(Procs.size(), [&Adj](uint32_t P) -> const std::vector<ProcId> & {
    return Adj[P];
  });
}

std::vector<LabelId> CfgProgram::topoOrder(ProcId P) const {
  const CfgProc &Proc = Procs[P];
  // Kahn's algorithm restricted to the procedure's labels.
  std::unordered_map<LabelId, unsigned> InDegree;
  for (LabelId L : Proc.Labels)
    InDegree[L]; // ensure presence
  for (LabelId L : Proc.Labels)
    for (LabelId T : Labels[L].Targets)
      ++InDegree[T];

  std::vector<LabelId> Work;
  // Seed with in-degree-zero labels; iterate Proc.Labels in order for
  // deterministic output.
  for (LabelId L : Proc.Labels)
    if (InDegree[L] == 0)
      Work.push_back(L);

  std::vector<LabelId> Order;
  Order.reserve(Proc.Labels.size());
  for (size_t I = 0; I < Work.size(); ++I) {
    LabelId L = Work[I];
    Order.push_back(L);
    for (LabelId T : Labels[L].Targets)
      if (--InDegree[T] == 0)
        Work.push_back(T);
  }
  assert(Order.size() == Proc.Labels.size() &&
         "flow graph must be acyclic and closed within the procedure");
  return Order;
}

std::vector<ProcId> CfgProgram::bottomUpProcOrder() const {
  std::vector<std::vector<ProcId>> Callees(Procs.size());
  for (ProcId P = 0; P < Procs.size(); ++P)
    Callees[P] = calleesOf(P);

  std::vector<uint8_t> Done(Procs.size(), 0);
  std::vector<ProcId> Order;
  Order.reserve(Procs.size());
  // Iterative post-order over the call DAG.
  std::vector<std::pair<ProcId, size_t>> Stack;
  for (ProcId Root = 0; Root < Procs.size(); ++Root) {
    if (Done[Root])
      continue;
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      auto &[P, Next] = Stack.back();
      if (Done[P]) {
        Stack.pop_back();
        continue;
      }
      if (Next < Callees[P].size()) {
        ProcId C = Callees[P][Next++];
        if (!Done[C])
          Stack.push_back({C, 0});
        continue;
      }
      Done[P] = 1;
      Order.push_back(P);
      Stack.pop_back();
    }
  }
  return Order;
}

std::string CfgProgram::str(const AstContext &Ctx) const {
  std::string Out;
  for (ProcId P = 0; P < Procs.size(); ++P) {
    const CfgProc &Proc = Procs[P];
    Out += "proc " + Ctx.name(Proc.Name) + " entry=L" +
           std::to_string(Proc.Entry) + "\n";
    for (LabelId L : Proc.Labels) {
      const CfgLabel &Lbl = Labels[L];
      Out += "  L" + std::to_string(L) + ": ";
      switch (Lbl.Stmt.Kind) {
      case CfgStmtKind::Assume:
        Out += "assume " + printExpr(Ctx, Lbl.Stmt.E);
        break;
      case CfgStmtKind::Assign:
        Out += Ctx.name(Lbl.Stmt.Target) +
               " := " + printExpr(Ctx, Lbl.Stmt.E);
        break;
      case CfgStmtKind::Havoc: {
        Out += "havoc";
        for (size_t I = 0; I < Lbl.Stmt.Vars.size(); ++I)
          Out += (I ? ", " : " ") + Ctx.name(Lbl.Stmt.Vars[I]);
        break;
      }
      case CfgStmtKind::Call: {
        Out += "call ";
        for (size_t I = 0; I < Lbl.Stmt.Vars.size(); ++I)
          Out += (I ? ", " : "") + Ctx.name(Lbl.Stmt.Vars[I]);
        if (!Lbl.Stmt.Vars.empty())
          Out += " := ";
        Out += Ctx.name(Procs[Lbl.Stmt.Callee].Name) + "(";
        for (size_t I = 0; I < Lbl.Stmt.Args.size(); ++I)
          Out += (I ? ", " : "") + printExpr(Ctx, Lbl.Stmt.Args[I]);
        Out += ")";
        break;
      }
      }
      Out += " ->";
      for (LabelId T : Lbl.Targets)
        Out += " L" + std::to_string(T);
      if (Lbl.Targets.empty())
        Out += " <ret>";
      Out += "\n";
    }
  }
  return Out;
}
