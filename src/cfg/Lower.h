//===- Lower.h - AST to CFG lowering ----------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a structured, *bounded* program (no `while`, no `assert`; run the
/// transforms in src/transform first) to the paper's label form. `if`
/// branches become nondeterministic successor sets guarded by assumes, and
/// `return` becomes a label with an empty successor set.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CFG_LOWER_H
#define RMT_CFG_LOWER_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"
#include "cfg/Cfg.h"

namespace rmt {

/// Lowers \p Prog. Requires: type-checked, no While/Assert statements.
/// The resulting CfgProgram shares expression nodes with \p Ctx.
CfgProgram lowerToCfg(AstContext &Ctx, const Program &Prog);

} // namespace rmt

#endif // RMT_CFG_LOWER_H
