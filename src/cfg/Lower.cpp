//===- Lower.cpp ----------------------------------------------------------===//

#include "cfg/Lower.h"

#include <cassert>

using namespace rmt;

namespace {

class Lowering {
public:
  Lowering(AstContext &Ctx, const Program &Prog) : Ctx(Ctx), Prog(Prog) {}

  CfgProgram run() {
    Out.Globals = Prog.Globals;
    // Create all procedure shells first so calls can resolve to ProcIds.
    for (const Procedure &P : Prog.Procedures) {
      CfgProc Shell;
      Shell.Name = P.Name;
      Shell.Params = P.Params;
      Shell.Returns = P.Returns;
      Shell.Locals = P.Locals;
      for (const VarDecl &G : Prog.Globals)
        Shell.VarTypes[G.Name] = G.Ty;
      for (const auto *Decls : {&P.Params, &P.Returns, &P.Locals})
        for (const VarDecl &D : *Decls)
          Shell.VarTypes[D.Name] = D.Ty;
      Out.Procs.push_back(std::move(Shell));
    }
    for (ProcId P = 0; P < Prog.Procedures.size(); ++P)
      lowerProc(P, Prog.Procedures[P]);
    return std::move(Out);
  }

private:
  LabelId newLabel(CfgStmt Stmt, SrcLoc Loc) {
    LabelId L = static_cast<LabelId>(Out.Labels.size());
    CfgLabel Lbl;
    Lbl.Stmt = std::move(Stmt);
    Lbl.Proc = Current;
    Lbl.Loc = Loc;
    Out.Labels.push_back(std::move(Lbl));
    Out.Procs[Current].Labels.push_back(L);
    return L;
  }

  CfgStmt skipStmt() {
    CfgStmt S;
    S.Kind = CfgStmtKind::Assume;
    S.E = Ctx.tBool(true);
    return S;
  }

  /// Points every dangling label at \p Succs and clears the dangling set.
  void connect(const std::vector<LabelId> &Succs) {
    for (LabelId L : Dangling)
      for (LabelId S : Succs)
        Out.Labels[L].Targets.push_back(S);
    Dangling.clear();
  }

  void lowerProc(ProcId P, const Procedure &Proc) {
    Current = P;
    Dangling.clear();
    LabelId Entry = newLabel(skipStmt(), Proc.Loc);
    Out.Procs[P].Entry = Entry;
    Dangling.push_back(Entry);
    lowerBlock(Proc.Body);
    // Whatever is still dangling falls off the end: empty successor sets,
    // i.e. return to caller.
    Dangling.clear();
  }

  void lowerBlock(const std::vector<const Stmt *> &Block) {
    for (const Stmt *S : Block)
      lowerStmt(S);
  }

  void lowerStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      CfgStmt C;
      C.Kind = CfgStmtKind::Assign;
      C.Target = S->assignTarget();
      C.E = S->assignValue();
      LabelId L = newLabel(std::move(C), S->loc());
      connect({L});
      Dangling.push_back(L);
      return;
    }
    case StmtKind::Havoc: {
      CfgStmt C;
      C.Kind = CfgStmtKind::Havoc;
      C.Vars = S->havocVars();
      LabelId L = newLabel(std::move(C), S->loc());
      connect({L});
      Dangling.push_back(L);
      return;
    }
    case StmtKind::Assume: {
      CfgStmt C;
      C.Kind = CfgStmtKind::Assume;
      C.E = S->condition();
      LabelId L = newLabel(std::move(C), S->loc());
      connect({L});
      Dangling.push_back(L);
      return;
    }
    case StmtKind::Call: {
      ProcId Callee = Out.findProc(S->callee());
      assert(Callee != InvalidProc && "call to unknown procedure (checked)");
      CfgStmt C;
      C.Kind = CfgStmtKind::Call;
      C.Callee = Callee;
      C.Args = S->callArgs();
      C.Vars = S->callLhs();
      LabelId L = newLabel(std::move(C), S->loc());
      connect({L});
      Dangling.push_back(L);
      return;
    }
    case StmtKind::If: {
      // Guarded arms: `assume g` / `assume !g`; `*` guards use assume true.
      CfgStmt ThenStmt, ElseStmt;
      ThenStmt.Kind = ElseStmt.Kind = CfgStmtKind::Assume;
      if (const Expr *G = S->guard()) {
        ThenStmt.E = G;
        ElseStmt.E = Ctx.tUnary(UnOp::Not, G);
      } else {
        ThenStmt.E = Ctx.tBool(true);
        ElseStmt.E = Ctx.tBool(true);
      }
      LabelId ThenEntry = newLabel(std::move(ThenStmt), S->loc());
      LabelId ElseEntry = newLabel(std::move(ElseStmt), S->loc());
      connect({ThenEntry, ElseEntry});

      Dangling.push_back(ThenEntry);
      lowerBlock(S->thenBlock());
      std::vector<LabelId> ThenExits = std::move(Dangling);
      Dangling.clear();

      Dangling.push_back(ElseEntry);
      lowerBlock(S->elseBlock());
      for (LabelId L : ThenExits)
        Dangling.push_back(L);
      return;
    }
    case StmtKind::Return: {
      // A label with no successors; nothing after it connects to it.
      LabelId L = newLabel(skipStmt(), S->loc());
      connect({L});
      // Intentionally do not add L to Dangling: its successor set stays
      // empty, which is the paper's encoding of returning to the caller.
      return;
    }
    case StmtKind::While:
    case StmtKind::Assert:
      assert(false && "run the bounding/instrumentation transforms before "
                      "CFG lowering");
      return;
    }
  }

  AstContext &Ctx;
  const Program &Prog;
  CfgProgram Out;
  ProcId Current = InvalidProc;
  std::vector<LabelId> Dangling;
};

} // namespace

CfgProgram rmt::lowerToCfg(AstContext &Ctx, const Program &Prog) {
  return Lowering(Ctx, Prog).run();
}
