//===- Cfg.h - The paper's hierarchical program form ------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program representation of the paper's Fig. 7: a program is a tuple
/// (gs, ls, ps, init, bs, ts) — globals, locals, a partition of labels among
/// procedures, per-procedure initial labels, one statement per label, and a
/// nondeterministic successor-set map. Control returns to the caller when a
/// label's successor set is empty.
///
/// Statements are `assume e`, `v := e`, `havoc vs` and `call p`. (The paper
/// encodes havoc via calls; we keep it first-class — its pVC clause is
/// trivial.) Calls carry actual arguments and result bindings; the paper
/// omits parameters from the formalization but notes they are simulated via
/// locals/globals, and our VC layer carries them in the node interfaces.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_CFG_CFG_H
#define RMT_CFG_CFG_H

#include "ast/Expr.h"
#include "ast/Stmt.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace rmt {

class AstContext;

/// Index of a label in CfgProgram::Labels.
using LabelId = uint32_t;
/// Index of a procedure in CfgProgram::Procs.
using ProcId = uint32_t;

constexpr LabelId InvalidLabel = ~0u;
constexpr ProcId InvalidProc = ~0u;

/// Statement kinds at a label (paper Fig. 7 plus Havoc).
enum class CfgStmtKind { Assume, Assign, Havoc, Call };

/// The statement executed at a label.
struct CfgStmt {
  CfgStmtKind Kind = CfgStmtKind::Assume;
  /// Assume: the condition. Assign: the right-hand side.
  const Expr *E = nullptr;
  /// Assign: the assigned variable.
  Symbol Target;
  /// Havoc: the havocked variables. Call: the result bindings.
  std::vector<Symbol> Vars;
  /// Call: the callee.
  ProcId Callee = InvalidProc;
  /// Call: actual arguments.
  std::vector<const Expr *> Args;
};

/// One label: its statement, its successor set, and its owning procedure
/// (the ps map of Fig. 7 stored inline).
struct CfgLabel {
  CfgStmt Stmt;
  std::vector<LabelId> Targets;
  ProcId Proc = InvalidProc;
  SrcLoc Loc;
};

/// A procedure: its entry label (init), the labels it owns, and its variable
/// declarations.
struct CfgProc {
  Symbol Name;
  LabelId Entry = InvalidLabel;
  std::vector<LabelId> Labels;
  std::vector<VarDecl> Params;
  std::vector<VarDecl> Returns;
  std::vector<VarDecl> Locals;
  /// Scope map: every variable visible in this procedure (globals, params,
  /// returns, locals) with its type. Built by the lowering.
  std::unordered_map<Symbol, const Type *> VarTypes;

  const Type *typeOf(Symbol Var) const {
    auto It = VarTypes.find(Var);
    return It == VarTypes.end() ? nullptr : It->second;
  }
};

/// The whole lowered program.
struct CfgProgram {
  std::vector<VarDecl> Globals;
  std::vector<CfgProc> Procs;
  std::vector<CfgLabel> Labels;

  const CfgLabel &label(LabelId L) const { return Labels[L]; }
  const CfgProc &proc(ProcId P) const { return Procs[P]; }

  /// Procedure owning \p L.
  ProcId procOf(LabelId L) const { return Labels[L].Proc; }

  /// Finds a procedure by name; InvalidProc when absent.
  ProcId findProc(Symbol Name) const {
    for (ProcId P = 0; P < Procs.size(); ++P)
      if (Procs[P].Name == Name)
        return P;
    return InvalidProc;
  }

  /// Direct callees of \p P (with duplicates).
  std::vector<ProcId> calleesOf(ProcId P) const;

  /// True when every intraprocedural flow graph is acyclic.
  bool hasAcyclicFlow() const;
  /// True when the call graph is acyclic.
  bool hasAcyclicCallGraph() const;
  /// Hierarchical = both of the above (paper Section 3).
  bool isHierarchical() const {
    return hasAcyclicFlow() && hasAcyclicCallGraph();
  }

  /// Labels of \p P in a topological order of the flow graph (entry first).
  /// The flow graph must be acyclic.
  std::vector<LabelId> topoOrder(ProcId P) const;

  /// Procedures in reverse-topological (callees-first) call-graph order.
  /// The call graph must be acyclic.
  std::vector<ProcId> bottomUpProcOrder() const;

  /// Total number of call labels in procedure \p P.
  unsigned numCallSites(ProcId P) const;

  /// Debug rendering of the whole program, one label per line.
  std::string str(const AstContext &Ctx) const;
};

} // namespace rmt

#endif // RMT_CFG_CFG_H
