//===- Transforms.h - Bounding and instrumentation pipeline -----*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-to-AST transforms that turn an arbitrary checked program into a
/// *hierarchical* reachability instance (paper Section 1: "once loops have
/// been unrolled and recursion unfolded up to a bound, the resulting program
/// is hierarchical"):
///
///  1. unrollLoops(R)      — every `while` becomes R nested guarded copies;
///                           a deterministic guard still true after R
///                           iterations blocks (assume false), so bounding is
///                           an under-approximation, as in Corral/CBMC.
///  2. unfoldRecursion(R)  — procedures in call-graph SCCs are cloned to
///                           depth R; deeper recursive calls block.
///  3. instrumentAsserts   — compiles assertion checking to the paper's
///                           reachability problem (Def. 1) with an error-bit
///                           global: `assert e` sets `$err` and bails to the
///                           procedure exit; every call is followed by an
///                           `$err` bail-out check; the root procedure clears
///                           `$err` on entry. The query becomes "is there a
///                           terminating execution of the root with $err".
///
/// prepareBounded() composes all three.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_TRANSFORM_TRANSFORMS_H
#define RMT_TRANSFORM_TRANSFORMS_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"

namespace rmt {

/// Rewrites every `while` into \p Bound nested `if`s. Programs without loops
/// are returned unchanged (structurally shared).
Program unrollLoops(AstContext &Ctx, const Program &Prog, unsigned Bound);

/// Clones every procedure that participates in a call-graph cycle into
/// \p Bound depth-indexed copies (`p`, `p@2`, ..., `p@Bound`); recursive
/// calls past the bound become `assume false`. Acyclic programs are returned
/// unchanged. The bound counts frames of the same SCC on one call chain.
Program unfoldRecursion(AstContext &Ctx, const Program &Prog, unsigned Bound);

/// Result of assertion instrumentation.
struct InstrumentedProgram {
  Program Prog;
  /// The error-bit global ($err).
  Symbol ErrVar;
  /// Entry procedure (same name as requested).
  Symbol Entry;
  /// Number of assert statements instrumented.
  unsigned NumAsserts = 0;
};

/// Error-bit instrumentation (see file comment). \p Entry must name a
/// procedure of \p Prog; it must not be called from within the program.
InstrumentedProgram instrumentAsserts(AstContext &Ctx, const Program &Prog,
                                      Symbol Entry);

/// A ready-to-lower hierarchical reachability instance.
struct BoundedInstance {
  Program Prog;
  Symbol ErrVar;
  Symbol Entry;
  unsigned NumAsserts = 0;
};

/// unrollLoops(R) ∘ unfoldRecursion(R) ∘ instrumentAsserts.
BoundedInstance prepareBounded(AstContext &Ctx, const Program &Prog,
                               Symbol Entry, unsigned Bound);

} // namespace rmt

#endif // RMT_TRANSFORM_TRANSFORMS_H
