//===- Transforms.cpp -----------------------------------------------------===//

#include "transform/Transforms.h"

#include <cassert>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace rmt;

//===----------------------------------------------------------------------===//
// Loop unrolling
//===----------------------------------------------------------------------===//

namespace {

class LoopUnroller {
public:
  LoopUnroller(AstContext &Ctx, unsigned Bound) : Ctx(Ctx), Bound(Bound) {}

  std::vector<const Stmt *> block(const std::vector<const Stmt *> &Block) {
    std::vector<const Stmt *> Out;
    for (const Stmt *S : Block)
      stmt(S, Out);
    return Out;
  }

  bool changedAnything() const { return Changed; }

private:
  void stmt(const Stmt *S, std::vector<const Stmt *> &Out) {
    switch (S->kind()) {
    case StmtKind::If: {
      std::vector<const Stmt *> Then = block(S->thenBlock());
      std::vector<const Stmt *> Else = block(S->elseBlock());
      Out.push_back(
          Ctx.ifStmt(S->guard(), std::move(Then), std::move(Else), S->loc()));
      return;
    }
    case StmtKind::While: {
      Changed = true;
      std::vector<const Stmt *> Body = block(S->loopBody());
      // U(0): with a deterministic guard, executions that would iterate
      // again are blocked; with a nondeterministic guard, exiting now is a
      // legal choice, so nothing is emitted.
      std::vector<const Stmt *> Tail;
      if (const Expr *G = S->guard())
        Tail.push_back(Ctx.assume(Ctx.tUnary(UnOp::Not, G), S->loc()));
      // U(k) = if (g) { body; U(k-1) }.
      for (unsigned K = 0; K < Bound; ++K) {
        std::vector<const Stmt *> Arm = Body;
        for (const Stmt *T : Tail)
          Arm.push_back(T);
        Tail.clear();
        Tail.push_back(Ctx.ifStmt(S->guard(), std::move(Arm), {}, S->loc()));
      }
      for (const Stmt *T : Tail)
        Out.push_back(T);
      return;
    }
    default:
      Out.push_back(S);
      return;
    }
  }

  AstContext &Ctx;
  unsigned Bound;
  bool Changed = false;
};

} // namespace

Program rmt::unrollLoops(AstContext &Ctx, const Program &Prog,
                         unsigned Bound) {
  LoopUnroller U(Ctx, Bound);
  Program Out;
  Out.Globals = Prog.Globals;
  for (const Procedure &P : Prog.Procedures) {
    Procedure Copy = P;
    Copy.Body = U.block(P.Body);
    Out.Procedures.push_back(std::move(Copy));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Recursion unfolding
//===----------------------------------------------------------------------===//

namespace {

/// Rewrites call targets through \p Rename while deep-copying statements.
/// Rename returning nullopt means "this call is beyond the bound": it is
/// replaced by `assume false`.
class CallRewriter {
public:
  using RenameFn = std::function<std::optional<Symbol>(Symbol)>;

  CallRewriter(AstContext &Ctx, RenameFn Rename)
      : Ctx(Ctx), Rename(std::move(Rename)) {}

  std::vector<const Stmt *> block(const std::vector<const Stmt *> &Block) {
    std::vector<const Stmt *> Out;
    Out.reserve(Block.size());
    for (const Stmt *S : Block)
      Out.push_back(stmt(S));
    return Out;
  }

private:
  const Stmt *stmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Call: {
      std::optional<Symbol> Target = Rename(S->callee());
      if (!Target)
        return Ctx.assume(Ctx.tBool(false), S->loc());
      return Ctx.call(*Target, S->callArgs(), S->callLhs(), S->loc());
    }
    case StmtKind::If:
      return Ctx.ifStmt(S->guard(), block(S->thenBlock()),
                        block(S->elseBlock()), S->loc());
    case StmtKind::While:
      return Ctx.whileStmt(S->guard(), block(S->loopBody()), S->loc());
    default:
      return S;
    }
  }

  AstContext &Ctx;
  RenameFn Rename;
};

/// Iterative Tarjan SCC over the procedure call graph. Returns, per
/// procedure index, its SCC id, plus the set of SCC ids that are cycles
/// (size > 1 or a self-loop).
struct SccResult {
  std::vector<unsigned> SccOf;
  std::unordered_set<unsigned> CyclicSccs;
};

SccResult computeSccs(const Program &Prog) {
  size_t N = Prog.Procedures.size();
  std::unordered_map<Symbol, unsigned> IndexOf;
  for (unsigned I = 0; I < N; ++I)
    IndexOf[Prog.Procedures[I].Name] = I;

  // Collect callees per procedure, as indices.
  std::vector<std::vector<unsigned>> Callees(N);
  std::vector<bool> SelfLoop(N, false);
  std::function<void(unsigned, const std::vector<const Stmt *> &)> Scan =
      [&](unsigned P, const std::vector<const Stmt *> &Block) {
        for (const Stmt *S : Block) {
          switch (S->kind()) {
          case StmtKind::Call: {
            auto It = IndexOf.find(S->callee());
            assert(It != IndexOf.end() && "unresolved callee (checked)");
            Callees[P].push_back(It->second);
            if (It->second == P)
              SelfLoop[P] = true;
            break;
          }
          case StmtKind::If:
            Scan(P, S->thenBlock());
            Scan(P, S->elseBlock());
            break;
          case StmtKind::While:
            Scan(P, S->loopBody());
            break;
          default:
            break;
          }
        }
      };
  for (unsigned P = 0; P < N; ++P)
    Scan(P, Prog.Procedures[P].Body);

  SccResult Result;
  Result.SccOf.assign(N, ~0u);
  std::vector<unsigned> Index(N, ~0u), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0, NextScc = 0;

  struct Frame {
    unsigned Node;
    size_t Child;
  };
  std::vector<Frame> Dfs;
  std::vector<unsigned> SccSize;

  for (unsigned Root = 0; Root < N; ++Root) {
    if (Index[Root] != ~0u)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      unsigned V = F.Node;
      if (F.Child < Callees[V].size()) {
        unsigned W = Callees[V][F.Child++];
        if (Index[W] == ~0u) {
          Index[W] = Low[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          Dfs.push_back({W, 0});
        } else if (OnStack[W] && Index[W] < Low[V]) {
          Low[V] = Index[W];
        }
        continue;
      }
      if (Low[V] == Index[V]) {
        unsigned Members = 0;
        unsigned W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Result.SccOf[W] = NextScc;
          ++Members;
        } while (W != V);
        if (Members > 1 || SelfLoop[V])
          Result.CyclicSccs.insert(NextScc);
        ++NextScc;
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        unsigned Parent = Dfs.back().Node;
        if (Low[V] < Low[Parent])
          Low[Parent] = Low[V];
      }
    }
  }
  return Result;
}

} // namespace

Program rmt::unfoldRecursion(AstContext &Ctx, const Program &Prog,
                             unsigned Bound) {
  assert(Bound >= 1 && "recursion bound must allow at least one frame");
  SccResult Sccs = computeSccs(Prog);
  if (Sccs.CyclicSccs.empty()) {
    // Already acyclic; share everything.
    return Prog;
  }

  size_t N = Prog.Procedures.size();
  auto InCycle = [&](unsigned I) {
    return Sccs.CyclicSccs.count(Sccs.SccOf[I]) != 0;
  };
  std::unordered_map<Symbol, unsigned> IndexOf;
  for (unsigned I = 0; I < N; ++I)
    IndexOf[Prog.Procedures[I].Name] = I;

  // Depth-k name of a cyclic procedure; depth 1 keeps the original name so
  // external callers and the entry point are unaffected.
  auto DepthName = [&](Symbol Name, unsigned Depth) -> Symbol {
    if (Depth == 1)
      return Name;
    return Ctx.sym(Ctx.name(Name) + ".d" + std::to_string(Depth));
  };

  Program Out;
  Out.Globals = Prog.Globals;
  for (unsigned I = 0; I < N; ++I) {
    const Procedure &P = Prog.Procedures[I];
    if (!InCycle(I)) {
      // Calls from acyclic procedures enter cycles at depth 1 (the original
      // name), so the body is unchanged.
      Out.Procedures.push_back(P);
      continue;
    }
    unsigned MyScc = Sccs.SccOf[I];
    for (unsigned Depth = 1; Depth <= Bound; ++Depth) {
      Procedure Copy = P;
      Copy.Name = DepthName(P.Name, Depth);
      CallRewriter RW(Ctx, [&](Symbol Callee) -> std::optional<Symbol> {
        unsigned CalleeIdx = IndexOf.at(Callee);
        if (!InCycle(CalleeIdx) || Sccs.SccOf[CalleeIdx] != MyScc)
          return Callee; // leaves this SCC: depth restarts there
        if (Depth == Bound)
          return std::nullopt; // beyond the bound: block
        return DepthName(Callee, Depth + 1);
      });
      Copy.Body = RW.block(P.Body);
      Out.Procedures.push_back(std::move(Copy));
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Assertion instrumentation
//===----------------------------------------------------------------------===//

namespace {

class AssertInstrumenter {
public:
  AssertInstrumenter(AstContext &Ctx, Symbol ErrVar)
      : Ctx(Ctx), ErrVar(ErrVar) {}

  std::vector<const Stmt *> block(const std::vector<const Stmt *> &Block) {
    std::vector<const Stmt *> Out;
    for (const Stmt *S : Block)
      stmt(S, Out);
    return Out;
  }

  unsigned numAsserts() const { return NumAsserts; }

private:
  const Expr *errRef() { return Ctx.tVar(ErrVar, Ctx.boolType()); }

  void stmt(const Stmt *S, std::vector<const Stmt *> &Out) {
    switch (S->kind()) {
    case StmtKind::Assert: {
      ++NumAsserts;
      // assert e  ~~>  if (e) {} else { $err := true; return; }
      std::vector<const Stmt *> Fail = {
          Ctx.assign(ErrVar, Ctx.tBool(true), S->loc()),
          Ctx.returnStmt(S->loc())};
      Out.push_back(Ctx.ifStmt(S->condition(), {}, std::move(Fail), S->loc()));
      return;
    }
    case StmtKind::Call:
      // call p(..); if ($err) { return; }
      Out.push_back(S);
      Out.push_back(
          Ctx.ifStmt(errRef(), {Ctx.returnStmt(S->loc())}, {}, S->loc()));
      return;
    case StmtKind::If:
      Out.push_back(Ctx.ifStmt(S->guard(), block(S->thenBlock()),
                               block(S->elseBlock()), S->loc()));
      return;
    case StmtKind::While:
      Out.push_back(Ctx.whileStmt(S->guard(), block(S->loopBody()), S->loc()));
      return;
    default:
      Out.push_back(S);
      return;
    }
  }

  AstContext &Ctx;
  Symbol ErrVar;
  unsigned NumAsserts = 0;
};

} // namespace

InstrumentedProgram rmt::instrumentAsserts(AstContext &Ctx,
                                           const Program &Prog,
                                           Symbol Entry) {
  // Pick an error-bit name not clashing with any declared global.
  std::string ErrName = "$err";
  auto Taken = [&](const std::string &Name) {
    for (const VarDecl &G : Prog.Globals)
      if (Ctx.name(G.Name) == Name)
        return true;
    return false;
  };
  while (Taken(ErrName))
    ErrName += "_";
  Symbol ErrVar = Ctx.sym(ErrName);

  InstrumentedProgram Result;
  Result.ErrVar = ErrVar;
  Result.Entry = Entry;
  Result.Prog.Globals = Prog.Globals;
  Result.Prog.Globals.push_back({ErrVar, Ctx.boolType(), SrcLoc()});

  AssertInstrumenter Instr(Ctx, ErrVar);
  for (const Procedure &P : Prog.Procedures) {
    Procedure Copy = P;
    Copy.Body = Instr.block(P.Body);
    if (P.Name == Entry) {
      // Globals start unconstrained; the root must clear the error bit.
      std::vector<const Stmt *> Body = {Ctx.assign(ErrVar, Ctx.tBool(false))};
      for (const Stmt *S : Copy.Body)
        Body.push_back(S);
      Copy.Body = std::move(Body);
    }
    Result.Prog.Procedures.push_back(std::move(Copy));
  }
  Result.NumAsserts = Instr.numAsserts();
  assert(Result.Prog.findProc(Entry) && "entry procedure not found");
  return Result;
}

BoundedInstance rmt::prepareBounded(AstContext &Ctx, const Program &Prog,
                                    Symbol Entry, unsigned Bound) {
  Program Unrolled = unrollLoops(Ctx, Prog, Bound);
  Program Unfolded = unfoldRecursion(Ctx, Unrolled, Bound);
  InstrumentedProgram Instr = instrumentAsserts(Ctx, Unfolded, Entry);
  BoundedInstance Out;
  Out.Prog = std::move(Instr.Prog);
  Out.ErrVar = Instr.ErrVar;
  Out.Entry = Instr.Entry;
  Out.NumAsserts = Instr.NumAsserts;
  return Out;
}
