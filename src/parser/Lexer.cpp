//===- Lexer.cpp ----------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace rmt;

const char *rmt::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid token";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::BvLit:
    return "bitvector literal";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwProcedure:
    return "'procedure'";
  case TokKind::KwReturns:
    return "'returns'";
  case TokKind::KwCall:
    return "'call'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwHavoc:
    return "'havoc'";
  case TokKind::KwAssume:
    return "'assume'";
  case TokKind::KwAssert:
    return "'assert'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwDiv:
    return "'div'";
  case TokKind::KwMod:
    return "'mod'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "':='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Implies:
    return "'==>'";
  case TokKind::Iff:
    return "'<==>'";
  case TokKind::Bang:
    return "'!'";
  }
  return "<unknown token>";
}

namespace {

const std::unordered_map<std::string_view, TokKind> Keywords = {
    {"var", TokKind::KwVar},       {"procedure", TokKind::KwProcedure},
    {"returns", TokKind::KwReturns}, {"call", TokKind::KwCall},
    {"if", TokKind::KwIf},         {"then", TokKind::KwThen},
    {"else", TokKind::KwElse},     {"while", TokKind::KwWhile},
    {"havoc", TokKind::KwHavoc},   {"assume", TokKind::KwAssume},
    {"assert", TokKind::KwAssert}, {"return", TokKind::KwReturn},
    {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
    {"int", TokKind::KwInt},       {"bool", TokKind::KwBool},
    {"div", TokKind::KwDiv},       {"mod", TokKind::KwMod},
};

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagEngine &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    for (;;) {
      Token T = next();
      Out.push_back(T);
      if (T.is(TokKind::Eof))
        return Out;
    }
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SrcLoc Start = loc();
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') {
            Diags.error(Start, "unterminated block comment");
            return;
          }
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  SrcLoc loc() const { return {Line, Col}; }

  Token make(TokKind Kind, size_t Start, SrcLoc Loc) {
    return {Kind, Src.substr(Start, Pos - Start), Loc, 0};
  }

  Token next() {
    skipTrivia();
    SrcLoc Loc = loc();
    size_t Start = Pos;
    if (Pos >= Src.size())
      return {TokKind::Eof, {}, Loc, 0};

    char C = advance();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_' || peek() == '$' || peek() == '#' || peek() == '.')
        advance();
      std::string_view Text = Src.substr(Start, Pos - Start);
      auto It = Keywords.find(Text);
      if (It != Keywords.end())
        return {It->second, Text, Loc, 0};
      return {TokKind::Ident, Text, Loc, 0};
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
      size_t DigitsEnd = Pos;
      // Bitvector literal suffix: 255bv8.
      bool IsBv = false;
      if (peek() == 'b' && peek(1) == 'v' &&
          std::isdigit(static_cast<unsigned char>(peek(2)))) {
        IsBv = true;
        advance();
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
      Token T = make(IsBv ? TokKind::BvLit : TokKind::IntLit, Start, Loc);
      std::string_view Digits = Src.substr(Start, DigitsEnd - Start);
      // The grammar has no sign on literals; 19 digits always fit int64.
      if (Digits.size() > 18) {
        Diags.error(Loc, "integer literal too large");
        T.Kind = TokKind::Error;
        return T;
      }
      int64_t Value = 0;
      for (char D : Digits)
        Value = Value * 10 + (D - '0');
      T.IntValue = Value;
      if (IsBv) {
        unsigned Width = 0;
        for (size_t I = DigitsEnd + 2 - Start; I < T.Text.size(); ++I)
          Width = Width * 10 + static_cast<unsigned>(T.Text[I] - '0');
        if (Width < 1 || Width > 64) {
          Diags.error(Loc, "bitvector width must be between 1 and 64");
          T.Kind = TokKind::Error;
          return T;
        }
        T.BvWidth = Width;
      }
      return T;
    }

    switch (C) {
    case '(':
      return make(TokKind::LParen, Start, Loc);
    case ')':
      return make(TokKind::RParen, Start, Loc);
    case '{':
      return make(TokKind::LBrace, Start, Loc);
    case '}':
      return make(TokKind::RBrace, Start, Loc);
    case '[':
      return make(TokKind::LBracket, Start, Loc);
    case ']':
      return make(TokKind::RBracket, Start, Loc);
    case ';':
      return make(TokKind::Semi, Start, Loc);
    case ',':
      return make(TokKind::Comma, Start, Loc);
    case '+':
      return make(TokKind::Plus, Start, Loc);
    case '-':
      return make(TokKind::Minus, Start, Loc);
    case '*':
      return make(TokKind::Star, Start, Loc);
    case ':':
      if (peek() == '=') {
        advance();
        return make(TokKind::Assign, Start, Loc);
      }
      return make(TokKind::Colon, Start, Loc);
    case '=':
      if (peek() == '=' && peek(1) == '>') {
        advance();
        advance();
        return make(TokKind::Implies, Start, Loc);
      }
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Start, Loc);
      }
      break;
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::NotEq, Start, Loc);
      }
      return make(TokKind::Bang, Start, Loc);
    case '<':
      if (peek() == '=' && peek(1) == '=' && peek(2) == '>') {
        advance();
        advance();
        advance();
        return make(TokKind::Iff, Start, Loc);
      }
      if (peek() == '=') {
        advance();
        return make(TokKind::Le, Start, Loc);
      }
      return make(TokKind::Lt, Start, Loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ge, Start, Loc);
      }
      return make(TokKind::Gt, Start, Loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AmpAmp, Start, Loc);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::PipePipe, Start, Loc);
      }
      break;
    default:
      break;
    }
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return make(TokKind::Error, Start, Loc);
  }

  std::string_view Src;
  DiagEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace

std::vector<Token> rmt::lex(std::string_view Source, DiagEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
