//===- Parser.cpp ---------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"
#include "parser/TypeCheck.h"

#include <cctype>

using namespace rmt;

namespace {

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, AstContext &Ctx, DiagEngine &Diags)
      : Tokens(std::move(Tokens)), Ctx(Ctx), Diags(Diags) {}

  std::optional<Program> run() {
    Program Prog;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwVar)) {
        parseGlobal(Prog);
      } else if (at(TokKind::KwProcedure)) {
        parseProcedure(Prog);
      } else {
        error("expected 'var' or 'procedure'");
        return std::nullopt;
      }
      if (Failed)
        return std::nullopt;
    }
    return Prog;
  }

private:
  const Token &cur() const { return Tokens[Pos]; }
  bool at(TokKind K) const { return cur().is(K); }

  const Token &take() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    take();
    return true;
  }

  void error(const std::string &Message) {
    if (!Failed)
      Diags.error(cur().Loc, Message + ", found " + tokKindName(cur().Kind));
    Failed = true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    error(std::string("expected ") + tokKindName(K) + " " + Context);
    return false;
  }

  Symbol expectIdent(const char *Context) {
    if (!at(TokKind::Ident)) {
      error(std::string("expected identifier ") + Context);
      return Symbol();
    }
    return Ctx.sym(take().Text);
  }

  const Type *parseType() {
    if (accept(TokKind::KwInt))
      return Ctx.intType();
    if (accept(TokKind::KwBool))
      return Ctx.boolType();
    // Bitvector types are identifiers of the shape bv<width>.
    if (at(TokKind::Ident) && cur().Text.size() > 2 &&
        cur().Text.substr(0, 2) == "bv") {
      std::string_view Digits = cur().Text.substr(2);
      bool AllDigits = true;
      unsigned Width = 0;
      for (char D : Digits) {
        if (!std::isdigit(static_cast<unsigned char>(D))) {
          AllDigits = false;
          break;
        }
        Width = Width * 10 + static_cast<unsigned>(D - '0');
      }
      if (AllDigits) {
        if (Width < 1 || Width > 64) {
          error("bitvector width must be between 1 and 64");
          take();
          return Ctx.intType();
        }
        take();
        return Ctx.bvType(Width);
      }
    }
    if (accept(TokKind::LBracket)) {
      const Type *Index = parseType();
      if (!expect(TokKind::RBracket, "after array index type"))
        return Ctx.intType();
      const Type *Element = parseType();
      return Ctx.arrayType(Index, Element);
    }
    error("expected a type");
    return Ctx.intType();
  }

  void parseGlobal(Program &Prog) {
    expect(TokKind::KwVar, "to begin global declaration");
    SrcLoc Loc = cur().Loc;
    Symbol Name = expectIdent("in global declaration");
    expect(TokKind::Colon, "after global name");
    const Type *Ty = parseType();
    expect(TokKind::Semi, "after global declaration");
    Prog.Globals.push_back({Name, Ty, Loc});
  }

  std::vector<VarDecl> parseParamList(const char *Context) {
    std::vector<VarDecl> Decls;
    if (at(TokKind::RParen))
      return Decls;
    do {
      SrcLoc Loc = cur().Loc;
      Symbol Name = expectIdent(Context);
      expect(TokKind::Colon, "after parameter name");
      const Type *Ty = parseType();
      Decls.push_back({Name, Ty, Loc});
    } while (accept(TokKind::Comma) && !Failed);
    return Decls;
  }

  void parseProcedure(Program &Prog) {
    expect(TokKind::KwProcedure, "to begin procedure");
    Procedure P;
    P.Loc = cur().Loc;
    P.Name = expectIdent("after 'procedure'");
    expect(TokKind::LParen, "after procedure name");
    P.Params = parseParamList("in parameter list");
    expect(TokKind::RParen, "after parameter list");
    if (accept(TokKind::KwReturns)) {
      expect(TokKind::LParen, "after 'returns'");
      P.Returns = parseParamList("in returns list");
      expect(TokKind::RParen, "after returns list");
    }
    expect(TokKind::LBrace, "to begin procedure body");
    while (at(TokKind::KwVar) && !Failed) {
      take();
      SrcLoc Loc = cur().Loc;
      Symbol Name = expectIdent("in local declaration");
      expect(TokKind::Colon, "after local name");
      const Type *Ty = parseType();
      expect(TokKind::Semi, "after local declaration");
      P.Locals.push_back({Name, Ty, Loc});
    }
    P.Body = parseBlockBody();
    expect(TokKind::RBrace, "to end procedure body");
    Prog.Procedures.push_back(std::move(P));
  }

  std::vector<const Stmt *> parseBracedBlock() {
    expect(TokKind::LBrace, "to begin block");
    std::vector<const Stmt *> Body = parseBlockBody();
    expect(TokKind::RBrace, "to end block");
    return Body;
  }

  std::vector<const Stmt *> parseBlockBody() {
    std::vector<const Stmt *> Body;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof) && !Failed)
      if (const Stmt *S = parseStmt())
        Body.push_back(S);
    return Body;
  }

  const Stmt *parseStmt() {
    SrcLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokKind::KwHavoc: {
      take();
      std::vector<Symbol> Vars;
      do {
        Vars.push_back(expectIdent("in havoc"));
      } while (accept(TokKind::Comma) && !Failed);
      expect(TokKind::Semi, "after havoc");
      return Ctx.havoc(std::move(Vars), Loc);
    }
    case TokKind::KwAssume: {
      take();
      const Expr *Cond = parseExpr();
      expect(TokKind::Semi, "after assume");
      return Ctx.assume(Cond, Loc);
    }
    case TokKind::KwAssert: {
      take();
      const Expr *Cond = parseExpr();
      expect(TokKind::Semi, "after assert");
      return Ctx.assertStmt(Cond, Loc);
    }
    case TokKind::KwReturn:
      take();
      expect(TokKind::Semi, "after return");
      return Ctx.returnStmt(Loc);
    case TokKind::KwCall:
      return parseCall(Loc);
    case TokKind::KwIf:
      return parseIf(Loc);
    case TokKind::KwWhile: {
      take();
      expect(TokKind::LParen, "after 'while'");
      const Expr *Guard = parseGuard();
      expect(TokKind::RParen, "after loop guard");
      std::vector<const Stmt *> Body = parseBracedBlock();
      return Ctx.whileStmt(Guard, std::move(Body), Loc);
    }
    case TokKind::Ident:
      return parseAssign(Loc);
    default:
      error("expected a statement");
      take(); // make progress
      return nullptr;
    }
  }

  /// `(expr)` or `(*)`; null guard encodes nondeterministic choice.
  const Expr *parseGuard() {
    if (accept(TokKind::Star))
      return nullptr;
    return parseExpr();
  }

  const Stmt *parseIf(SrcLoc Loc) {
    expect(TokKind::KwIf, "to begin branch");
    expect(TokKind::LParen, "after 'if'");
    const Expr *Guard = parseGuard();
    expect(TokKind::RParen, "after branch guard");
    std::vector<const Stmt *> Then = parseBracedBlock();
    std::vector<const Stmt *> Else;
    if (accept(TokKind::KwElse)) {
      if (at(TokKind::KwIf)) {
        // `else if` chains: nest the trailing if as a one-statement block.
        if (const Stmt *Nested = parseIf(cur().Loc))
          Else.push_back(Nested);
      } else {
        Else = parseBracedBlock();
      }
    }
    return Ctx.ifStmt(Guard, std::move(Then), std::move(Else), Loc);
  }

  const Stmt *parseCall(SrcLoc Loc) {
    expect(TokKind::KwCall, "to begin call");
    std::vector<Symbol> Lhs;
    // Disambiguate `call p(..)` from `call a, b := p(..)` / `call a := p(..)`.
    size_t Save = Pos;
    if (at(TokKind::Ident)) {
      Lhs.push_back(Ctx.sym(take().Text));
      while (accept(TokKind::Comma))
        Lhs.push_back(expectIdent("in call lhs"));
      if (!accept(TokKind::Assign)) {
        Pos = Save; // it was the callee, not an lhs list
        Lhs.clear();
      }
    }
    Symbol Callee = expectIdent("as call target");
    expect(TokKind::LParen, "after callee");
    std::vector<const Expr *> Args;
    if (!at(TokKind::RParen)) {
      do {
        Args.push_back(parseExpr());
      } while (accept(TokKind::Comma) && !Failed);
    }
    expect(TokKind::RParen, "after call arguments");
    expect(TokKind::Semi, "after call");
    return Ctx.call(Callee, std::move(Args), std::move(Lhs), Loc);
  }

  const Stmt *parseAssign(SrcLoc Loc) {
    Symbol Target = expectIdent("as assignment target");
    if (accept(TokKind::LBracket)) {
      // Sugar: a[i] := v  desugars to  a := a[i := v].
      const Expr *Index = parseExpr();
      expect(TokKind::RBracket, "after array index");
      expect(TokKind::Assign, "in array assignment");
      const Expr *Value = parseExpr();
      expect(TokKind::Semi, "after assignment");
      const Expr *Arr = Ctx.varRef(Target, Loc);
      return Ctx.assign(Target, Ctx.store(Arr, Index, Value, Loc), Loc);
    }
    expect(TokKind::Assign, "in assignment");
    const Expr *Value = parseExpr();
    expect(TokKind::Semi, "after assignment");
    return Ctx.assign(Target, Value, Loc);
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  const Expr *parseExpr() { return parseIffExpr(); }

  const Expr *parseIffExpr() {
    const Expr *L = parseImpliesExpr();
    while (at(TokKind::Iff)) {
      SrcLoc Loc = take().Loc;
      L = Ctx.binary(BinOp::Iff, L, parseImpliesExpr(), Loc);
    }
    return L;
  }

  const Expr *parseImpliesExpr() {
    const Expr *L = parseOrExpr();
    if (at(TokKind::Implies)) {
      SrcLoc Loc = take().Loc;
      // Right associative.
      return Ctx.binary(BinOp::Implies, L, parseImpliesExpr(), Loc);
    }
    return L;
  }

  const Expr *parseOrExpr() {
    const Expr *L = parseAndExpr();
    while (at(TokKind::PipePipe)) {
      SrcLoc Loc = take().Loc;
      L = Ctx.binary(BinOp::Or, L, parseAndExpr(), Loc);
    }
    return L;
  }

  const Expr *parseAndExpr() {
    const Expr *L = parseCmpExpr();
    while (at(TokKind::AmpAmp)) {
      SrcLoc Loc = take().Loc;
      L = Ctx.binary(BinOp::And, L, parseCmpExpr(), Loc);
    }
    return L;
  }

  const Expr *parseCmpExpr() {
    const Expr *L = parseAddExpr();
    for (;;) {
      BinOp Op;
      switch (cur().Kind) {
      case TokKind::EqEq:
        Op = BinOp::Eq;
        break;
      case TokKind::NotEq:
        Op = BinOp::Ne;
        break;
      case TokKind::Lt:
        Op = BinOp::Lt;
        break;
      case TokKind::Le:
        Op = BinOp::Le;
        break;
      case TokKind::Gt:
        Op = BinOp::Gt;
        break;
      case TokKind::Ge:
        Op = BinOp::Ge;
        break;
      default:
        return L;
      }
      SrcLoc Loc = take().Loc;
      L = Ctx.binary(Op, L, parseAddExpr(), Loc);
    }
  }

  const Expr *parseAddExpr() {
    const Expr *L = parseMulExpr();
    for (;;) {
      if (at(TokKind::Plus)) {
        SrcLoc Loc = take().Loc;
        L = Ctx.binary(BinOp::Add, L, parseMulExpr(), Loc);
      } else if (at(TokKind::Minus)) {
        SrcLoc Loc = take().Loc;
        L = Ctx.binary(BinOp::Sub, L, parseMulExpr(), Loc);
      } else {
        return L;
      }
    }
  }

  const Expr *parseMulExpr() {
    const Expr *L = parseUnaryExpr();
    for (;;) {
      BinOp Op;
      if (at(TokKind::Star))
        Op = BinOp::Mul;
      else if (at(TokKind::KwDiv))
        Op = BinOp::Div;
      else if (at(TokKind::KwMod))
        Op = BinOp::Mod;
      else
        return L;
      SrcLoc Loc = take().Loc;
      L = Ctx.binary(Op, L, parseUnaryExpr(), Loc);
    }
  }

  const Expr *parseUnaryExpr() {
    if (at(TokKind::Bang)) {
      SrcLoc Loc = take().Loc;
      return Ctx.unary(UnOp::Not, parseUnaryExpr(), Loc);
    }
    if (at(TokKind::Minus)) {
      SrcLoc Loc = take().Loc;
      const Expr *Sub = parseUnaryExpr();
      // Fold negated literals so `(-1)` parses to the literal -1 and the
      // printer/parser round-trip is a fixpoint. Bitvector literals keep
      // their explicit negation (two's-complement semantics).
      if (Sub->kind() == ExprKind::IntLit &&
          (!Sub->type() || !Sub->type()->isBv()))
        return Ctx.intLit(-Sub->intValue(), Loc);
      return Ctx.unary(UnOp::Neg, Sub, Loc);
    }
    return parsePostfixExpr();
  }

  const Expr *parsePostfixExpr() {
    const Expr *E = parsePrimaryExpr();
    while (at(TokKind::LBracket) && !Failed) {
      SrcLoc Loc = take().Loc;
      const Expr *Index = parseExpr();
      if (accept(TokKind::Assign)) {
        const Expr *Value = parseExpr();
        expect(TokKind::RBracket, "after array store");
        E = Ctx.store(E, Index, Value, Loc);
      } else {
        expect(TokKind::RBracket, "after array index");
        E = Ctx.select(E, Index, Loc);
      }
    }
    return E;
  }

  const Expr *parsePrimaryExpr() {
    SrcLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokKind::IntLit: {
      int64_t V = take().IntValue;
      return Ctx.intLit(V, Loc);
    }
    case TokKind::BvLit: {
      const Token &T = take();
      // Bitvector literals are typed at parse time (the width is part of
      // the token).
      return Ctx.tBv(static_cast<uint64_t>(T.IntValue), T.BvWidth);
    }
    case TokKind::KwTrue:
      take();
      return Ctx.boolLit(true, Loc);
    case TokKind::KwFalse:
      take();
      return Ctx.boolLit(false, Loc);
    case TokKind::Ident:
      return Ctx.varRef(Ctx.sym(take().Text), Loc);
    case TokKind::LParen: {
      take();
      // Conditional expressions print as `(if c then a else b)`.
      if (at(TokKind::KwIf)) {
        take();
        const Expr *C = parseExpr();
        expect(TokKind::KwThen, "in conditional expression");
        const Expr *T = parseExpr();
        expect(TokKind::KwElse, "in conditional expression");
        const Expr *F = parseExpr();
        expect(TokKind::RParen, "after conditional expression");
        return Ctx.ite(C, T, F, Loc);
      }
      const Expr *E = parseExpr();
      expect(TokKind::RParen, "after parenthesized expression");
      return E;
    }
    default:
      error("expected an expression");
      take();
      return Ctx.intLit(0, Loc);
    }
  }

  std::vector<Token> Tokens;
  AstContext &Ctx;
  DiagEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::optional<Program> rmt::parseProgram(std::string_view Source,
                                         AstContext &Ctx, DiagEngine &Diags) {
  std::vector<Token> Tokens = lex(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return ParserImpl(std::move(Tokens), Ctx, Diags).run();
}

std::optional<Program> rmt::parseAndCheck(std::string_view Source,
                                          AstContext &Ctx, DiagEngine &Diags) {
  std::optional<Program> Prog = parseProgram(Source, Ctx, Diags);
  if (!Prog)
    return std::nullopt;
  if (!typecheck(Ctx, *Prog, Diags))
    return std::nullopt;
  return Prog;
}
