//===- Lexer.h - Tokenizer for .hbpl ----------------------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the mini-Boogie surface syntax. Line comments (`//`) and
/// block comments (`/* */`) are skipped. Unknown characters produce an Error
/// token and a diagnostic, and lexing continues.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_PARSER_LEXER_H
#define RMT_PARSER_LEXER_H

#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rmt {

/// Token kinds.
enum class TokKind {
  Eof,
  Error,
  Ident,
  IntLit,
  BvLit, ///< e.g. 255bv8: IntValue holds the bits, BvWidth the width
  // Keywords.
  KwVar,
  KwProcedure,
  KwReturns,
  KwCall,
  KwIf,
  KwThen,
  KwElse,
  KwWhile,
  KwHavoc,
  KwAssume,
  KwAssert,
  KwReturn,
  KwTrue,
  KwFalse,
  KwInt,
  KwBool,
  KwDiv,
  KwMod,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Colon,
  Semi,
  Comma,
  Assign,  // :=
  Plus,
  Minus,
  Star,
  EqEq,    // ==
  NotEq,   // !=
  Lt,
  Le,
  Gt,
  Ge,
  AmpAmp,  // &&
  PipePipe,// ||
  Implies, // ==>
  Iff,     // <==>
  Bang,    // !
};

/// One token. Text views into the source buffer handed to the Lexer; the
/// buffer must outlive the tokens.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string_view Text;
  SrcLoc Loc;
  int64_t IntValue = 0;
  unsigned BvWidth = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// Human-readable name of a token kind, for diagnostics.
const char *tokKindName(TokKind Kind);

/// Tokenizes \p Source completely; always ends with an Eof token.
std::vector<Token> lex(std::string_view Source, DiagEngine &Diags);

} // namespace rmt

#endif // RMT_PARSER_LEXER_H
