//===- TypeCheck.h - Name resolution and type checking ----------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves names and checks types over a parsed Program, annotating every
/// expression with its type. All later phases (transforms, CFG lowering, VC
/// generation, the evaluator) assume a checked program.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_PARSER_TYPECHECK_H
#define RMT_PARSER_TYPECHECK_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"
#include "support/Diag.h"

namespace rmt {

/// Checks \p Prog; reports problems into \p Diags. Returns true when the
/// program is well-formed. Expression nodes are annotated in place.
bool typecheck(AstContext &Ctx, Program &Prog, DiagEngine &Diags);

} // namespace rmt

#endif // RMT_PARSER_TYPECHECK_H
