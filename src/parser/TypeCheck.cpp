//===- TypeCheck.cpp ------------------------------------------------------===//

#include "parser/TypeCheck.h"

#include <unordered_map>

using namespace rmt;

namespace {

class Checker {
public:
  Checker(AstContext &Ctx, Program &Prog, DiagEngine &Diags)
      : Ctx(Ctx), Prog(Prog), Diags(Diags) {}

  bool run() {
    collectTopLevel();
    for (Procedure &P : Prog.Procedures)
      checkProcedure(P);
    return !Diags.hasErrors();
  }

private:
  void error(SrcLoc Loc, const std::string &Message) {
    Diags.error(Loc, Message);
  }

  void collectTopLevel() {
    for (const VarDecl &G : Prog.Globals) {
      if (!GlobalScope.emplace(G.Name, G.Ty).second)
        error(G.Loc, "duplicate global '" + Ctx.name(G.Name) + "'");
    }
    for (const Procedure &P : Prog.Procedures) {
      if (!Procs.emplace(P.Name, &P).second)
        error(P.Loc, "duplicate procedure '" + Ctx.name(P.Name) + "'");
    }
  }

  void declareLocal(const VarDecl &D, const char *What) {
    if (!LocalScope.emplace(D.Name, D.Ty).second)
      error(D.Loc, std::string("duplicate ") + What + " '" +
                       Ctx.name(D.Name) + "'");
  }

  const Type *lookupVar(Symbol Name) const {
    auto It = LocalScope.find(Name);
    if (It != LocalScope.end())
      return It->second;
    auto GIt = GlobalScope.find(Name);
    if (GIt != GlobalScope.end())
      return GIt->second;
    return nullptr;
  }

  void checkProcedure(const Procedure &P) {
    LocalScope.clear();
    for (const VarDecl &D : P.Params)
      declareLocal(D, "parameter");
    for (const VarDecl &D : P.Returns)
      declareLocal(D, "return variable");
    for (const VarDecl &D : P.Locals)
      declareLocal(D, "local");
    checkBlock(P.Body);
  }

  void checkBlock(const std::vector<const Stmt *> &Block) {
    for (const Stmt *S : Block)
      checkStmt(S);
  }

  void checkStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const Type *TargetTy = lookupVar(S->assignTarget());
      if (!TargetTy) {
        error(S->loc(), "assignment to undeclared variable '" +
                            Ctx.name(S->assignTarget()) + "'");
        return;
      }
      const Type *ValueTy = checkExpr(S->assignValue());
      if (ValueTy && ValueTy != TargetTy)
        error(S->loc(), "assignment type mismatch: variable has type " +
                            TargetTy->str() + ", value has type " +
                            ValueTy->str());
      return;
    }
    case StmtKind::Havoc:
      for (Symbol Var : S->havocVars())
        if (!lookupVar(Var))
          error(S->loc(), "havoc of undeclared variable '" + Ctx.name(Var) +
                              "'");
      return;
    case StmtKind::Assume:
    case StmtKind::Assert: {
      const Type *Ty = checkExpr(S->condition());
      if (Ty && !Ty->isBool())
        error(S->loc(), std::string(S->kind() == StmtKind::Assume
                                        ? "assume"
                                        : "assert") +
                            " condition must be bool, got " + Ty->str());
      return;
    }
    case StmtKind::Call:
      checkCall(S);
      return;
    case StmtKind::If: {
      if (S->guard()) {
        const Type *Ty = checkExpr(S->guard());
        if (Ty && !Ty->isBool())
          error(S->loc(), "branch guard must be bool, got " + Ty->str());
      }
      checkBlock(S->thenBlock());
      checkBlock(S->elseBlock());
      return;
    }
    case StmtKind::While: {
      if (S->guard()) {
        const Type *Ty = checkExpr(S->guard());
        if (Ty && !Ty->isBool())
          error(S->loc(), "loop guard must be bool, got " + Ty->str());
      }
      checkBlock(S->loopBody());
      return;
    }
    case StmtKind::Return:
      return;
    }
  }

  void checkCall(const Stmt *S) {
    auto It = Procs.find(S->callee());
    if (It == Procs.end()) {
      error(S->loc(), "call to undefined procedure '" +
                          Ctx.name(S->callee()) + "'");
      // Still check the arguments so their errors are reported.
      for (const Expr *A : S->callArgs())
        checkExpr(A);
      return;
    }
    const Procedure &Callee = *It->second;
    if (S->callArgs().size() != Callee.Params.size()) {
      error(S->loc(), "call to '" + Ctx.name(S->callee()) + "' passes " +
                          std::to_string(S->callArgs().size()) +
                          " arguments, procedure takes " +
                          std::to_string(Callee.Params.size()));
    }
    for (size_t I = 0; I < S->callArgs().size(); ++I) {
      const Type *ArgTy = checkExpr(S->callArgs()[I]);
      if (I < Callee.Params.size() && ArgTy &&
          ArgTy != Callee.Params[I].Ty)
        error(S->callArgs()[I]->loc(),
              "argument " + std::to_string(I + 1) + " has type " +
                  ArgTy->str() + ", parameter '" +
                  Ctx.name(Callee.Params[I].Name) + "' has type " +
                  Callee.Params[I].Ty->str());
    }
    if (S->callLhs().size() != Callee.Returns.size()) {
      error(S->loc(), "call to '" + Ctx.name(S->callee()) + "' binds " +
                          std::to_string(S->callLhs().size()) +
                          " results, procedure returns " +
                          std::to_string(Callee.Returns.size()));
      return;
    }
    for (size_t I = 0; I < S->callLhs().size(); ++I) {
      const Type *LhsTy = lookupVar(S->callLhs()[I]);
      if (!LhsTy) {
        error(S->loc(), "call result bound to undeclared variable '" +
                            Ctx.name(S->callLhs()[I]) + "'");
        continue;
      }
      if (LhsTy != Callee.Returns[I].Ty)
        error(S->loc(), "call result " + std::to_string(I + 1) +
                            " has type " + Callee.Returns[I].Ty->str() +
                            ", bound to variable of type " + LhsTy->str());
    }
    for (size_t I = 0; I < S->callLhs().size(); ++I)
      for (size_t J = I + 1; J < S->callLhs().size(); ++J)
        if (S->callLhs()[I] == S->callLhs()[J])
          error(S->loc(), "variable '" + Ctx.name(S->callLhs()[I]) +
                              "' bound twice in call results");
  }

  /// Checks \p CE and returns its type, or null after reporting an error.
  /// The parser produces untyped nodes owned by our AstContext; annotating
  /// them here is the one sanctioned mutation of const Expr nodes.
  const Type *checkExpr(const Expr *CE) {
    Expr *E = const_cast<Expr *>(CE);
    const Type *Ty = computeType(E);
    if (Ty)
      E->setType(Ty);
    return Ty;
  }

  const Type *computeType(Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      // Bitvector literals arrive pre-typed from the parser.
      if (E->type() && E->type()->isBv())
        return E->type();
      return Ctx.intType();
    case ExprKind::BoolLit:
      return Ctx.boolType();
    case ExprKind::Var: {
      const Type *Ty = lookupVar(E->var());
      if (!Ty)
        error(E->loc(), "use of undeclared variable '" + Ctx.name(E->var()) +
                            "'");
      return Ty;
    }
    case ExprKind::Unary: {
      const Type *Sub = checkExpr(E->op0());
      if (!Sub)
        return nullptr;
      if (E->unOp() == UnOp::Not) {
        if (!Sub->isBool()) {
          error(E->loc(), "'!' needs a bool operand, got " + Sub->str());
          return nullptr;
        }
        return Ctx.boolType();
      }
      if (!Sub->isInt() && !Sub->isBv()) {
        error(E->loc(), "unary '-' needs an int or bitvector operand, got " +
                            Sub->str());
        return nullptr;
      }
      return Sub;
    }
    case ExprKind::Binary: {
      const Type *L = checkExpr(E->op0());
      const Type *R = checkExpr(E->op1());
      if (!L || !R)
        return nullptr;
      BinOp Op = E->binOp();
      if (isArithOp(Op)) {
        bool BothInt = L->isInt() && R->isInt();
        bool BothSameBv = L->isBv() && L == R;
        if (!BothInt && !BothSameBv) {
          error(E->loc(), std::string("'") + spelling(Op) +
                              "' needs int or equal-width bitvector "
                              "operands, got " +
                              L->str() + " and " + R->str());
          return nullptr;
        }
        return isPredicateOp(Op) ? Ctx.boolType() : L;
      }
      if (isLogicalOp(Op)) {
        if (!L->isBool() || !R->isBool()) {
          error(E->loc(), std::string("'") + spelling(Op) +
                              "' needs bool operands, got " + L->str() +
                              " and " + R->str());
          return nullptr;
        }
        return Ctx.boolType();
      }
      // Eq / Ne apply at any type, but both sides must agree.
      if (L != R) {
        error(E->loc(), std::string("'") + spelling(Op) +
                            "' needs operands of the same type, got " +
                            L->str() + " and " + R->str());
        return nullptr;
      }
      return Ctx.boolType();
    }
    case ExprKind::Ite: {
      const Type *C = checkExpr(E->op0());
      const Type *T = checkExpr(E->op1());
      const Type *F = checkExpr(E->op2());
      if (!C || !T || !F)
        return nullptr;
      if (!C->isBool()) {
        error(E->loc(), "conditional guard must be bool, got " + C->str());
        return nullptr;
      }
      if (T != F) {
        error(E->loc(), "conditional arms must have the same type, got " +
                            T->str() + " and " + F->str());
        return nullptr;
      }
      return T;
    }
    case ExprKind::Select: {
      const Type *Arr = checkExpr(E->op0());
      const Type *Idx = checkExpr(E->op1());
      if (!Arr || !Idx)
        return nullptr;
      if (!Arr->isArray()) {
        error(E->loc(), "indexing a non-array of type " + Arr->str());
        return nullptr;
      }
      if (Idx != Arr->indexType()) {
        error(E->loc(), "index has type " + Idx->str() + ", expected " +
                            Arr->indexType()->str());
        return nullptr;
      }
      return Arr->elementType();
    }
    case ExprKind::Store: {
      const Type *Arr = checkExpr(E->op0());
      const Type *Idx = checkExpr(E->op1());
      const Type *Val = checkExpr(E->op2());
      if (!Arr || !Idx || !Val)
        return nullptr;
      if (!Arr->isArray()) {
        error(E->loc(), "storing into a non-array of type " + Arr->str());
        return nullptr;
      }
      if (Idx != Arr->indexType()) {
        error(E->loc(), "index has type " + Idx->str() + ", expected " +
                            Arr->indexType()->str());
        return nullptr;
      }
      if (Val != Arr->elementType()) {
        error(E->loc(), "stored value has type " + Val->str() +
                            ", expected " + Arr->elementType()->str());
        return nullptr;
      }
      return Arr;
    }
    }
    return nullptr;
  }

  AstContext &Ctx;
  Program &Prog;
  DiagEngine &Diags;
  std::unordered_map<Symbol, const Type *> GlobalScope;
  std::unordered_map<Symbol, const Type *> LocalScope;
  std::unordered_map<Symbol, const Procedure *> Procs;
};

} // namespace

bool rmt::typecheck(AstContext &Ctx, Program &Prog, DiagEngine &Diags) {
  return Checker(Ctx, Prog, Diags).run();
}
