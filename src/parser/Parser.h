//===- Parser.h - Recursive-descent parser for .hbpl ------------*- C++ -*-===//
//
// Part of the daginline project, a reproduction of "DAG Inlining" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses `.hbpl` source into an untyped AST. Pair with typecheck() from
/// TypeCheck.h before handing the program to the transforms or engines.
/// parseAndCheck() bundles both phases.
///
//===----------------------------------------------------------------------===//

#ifndef RMT_PARSER_PARSER_H
#define RMT_PARSER_PARSER_H

#include "ast/AstContext.h"
#include "ast/Stmt.h"
#include "support/Diag.h"

#include <optional>
#include <string_view>

namespace rmt {

/// Parses \p Source. On syntax errors returns std::nullopt, with the details
/// in \p Diags. The returned Program's nodes live in \p Ctx and are untyped.
std::optional<Program> parseProgram(std::string_view Source, AstContext &Ctx,
                                    DiagEngine &Diags);

/// Parses and type-checks \p Source; nullopt on any error.
std::optional<Program> parseAndCheck(std::string_view Source, AstContext &Ctx,
                                     DiagEngine &Diags);

} // namespace rmt

#endif // RMT_PARSER_PARSER_H
